"""Strongly connected components and DAG condensation.

Both baselines need this substrate:

* IGMJ (paper Section 5.2) "constructs a DAG G' by condensing a maximal
  strongly connected component to a node in G'" before assigning the
  multi-interval code, and every node in an SCC shares the code of its
  representative.
* TwigStackD only operates on DAGs, so the Figure 5 experiment condenses
  (or generates) acyclic data.

The SCC algorithm is an iterative Tarjan — recursion-free so that graphs
with long paths do not hit Python's recursion limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .digraph import DiGraph


def strongly_connected_components(graph: DiGraph) -> List[List[int]]:
    """All SCCs, each as a list of nodes, in reverse topological order.

    Iterative Tarjan: the classic algorithm with an explicit state stack.
    Reverse topological order means every SCC appears before any SCC that
    can reach it — the order Tarjan naturally emits.
    """
    n = graph.node_count
    index_of = [-1] * n          # discovery index, -1 = unvisited
    lowlink = [0] * n
    on_stack = bytearray(n)
    stack: List[int] = []
    components: List[List[int]] = []
    counter = 0

    for root in range(n):
        if index_of[root] != -1:
            continue
        # work holds (node, next successor position)
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            v, child_pos = work[-1]
            if child_pos == 0:
                index_of[v] = counter
                lowlink[v] = counter
                counter += 1
                stack.append(v)
                on_stack[v] = 1
            recurse = False
            successors = graph.successors(v)
            for pos in range(child_pos, len(successors)):
                w = successors[pos]
                if index_of[w] == -1:
                    work[-1] = (v, pos + 1)
                    work.append((w, 0))
                    recurse = True
                    break
                if on_stack[w]:
                    lowlink[v] = min(lowlink[v], index_of[w])
            if recurse:
                continue
            work.pop()
            if lowlink[v] == index_of[v]:
                component = []
                while True:
                    w = stack.pop()
                    on_stack[w] = 0
                    component.append(w)
                    if w == v:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[v])
    return components


@dataclass
class Condensation:
    """The condensed DAG of a digraph plus the node <-> SCC mappings.

    Attributes
    ----------
    dag:
        The condensation; node ``i`` of *dag* is the i-th SCC.  Its label is
        the label of the SCC's representative (lowest original node id) —
        data graphs where label matters should be condensed per label-aware
        use case; the baselines only use the DAG for *reachability codes*,
        for which labels are irrelevant.
    scc_of:
        ``scc_of[v]`` = index of the SCC containing original node ``v``.
    members:
        ``members[i]`` = original nodes of SCC ``i``.
    """

    dag: DiGraph
    scc_of: List[int]
    members: List[List[int]]

    def representative(self, scc: int) -> int:
        return min(self.members[scc])


def condense(graph: DiGraph) -> Condensation:
    """Condense every maximal SCC of *graph* to a single DAG node.

    SCC nodes are numbered in topological order of the condensation (so
    ``u -> v`` in the DAG implies ``scc(u) < scc(v)``), which downstream
    interval coders rely on for determinism.  Reachability is preserved:
    ``u ~> v`` in *graph* iff ``scc(u) ~> scc(v)`` in the DAG.
    """
    components = strongly_connected_components(graph)
    components.reverse()  # now in topological order
    scc_of = [0] * graph.node_count
    for scc_index, component in enumerate(components):
        for v in component:
            scc_of[v] = scc_index

    dag = DiGraph()
    members: List[List[int]] = []
    for component in components:
        representative = min(component)
        dag.add_node(graph.label(representative))
        members.append(sorted(component))

    seen_edges: Dict[Tuple[int, int], bool] = {}
    for u, v in graph.edges():
        cu, cv = scc_of[u], scc_of[v]
        if cu != cv and (cu, cv) not in seen_edges:
            seen_edges[(cu, cv)] = True
            dag.add_edge(cu, cv)
    return Condensation(dag=dag, scc_of=scc_of, members=members)
