"""Directed node-labeled graphs — the paper's data-graph model.

The paper (Section 2) defines a data graph as ``G_D = (V, E, Sigma, phi)``
where ``V`` is a node set, ``E`` a set of directed edges, ``Sigma`` a label
alphabet, and ``phi`` assigns each node exactly one label.  The *extent* of a
label ``X``, written ``ext(X)``, is the set of nodes labeled ``X``.

:class:`DiGraph` is the single graph type used across the whole library: the
XMark generator produces one, the 2-hop labeler and interval coders consume
one, and the graph database (:mod:`repro.db.database`) is built from one.

Nodes are dense integer identifiers ``0..n-1``; adjacency is stored as Python
lists of ints, which keeps the structure compact and makes traversal loops
cheap.  The class is deliberately small — algorithms live in
:mod:`repro.graph.traversal` and :mod:`repro.graph.condensation`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple


class GraphError(ValueError):
    """Raised for structurally invalid graph operations."""


class DiGraph:
    """A directed graph whose nodes carry exactly one label each.

    Parameters
    ----------
    n:
        Optional initial number of (unlabeled) nodes; they receive the
        default label ``"?"`` until relabeled.

    Examples
    --------
    >>> g = DiGraph()
    >>> a = g.add_node("A")
    >>> c = g.add_node("C")
    >>> g.add_edge(a, c)
    >>> g.label(a), g.successors(a)
    ('A', [1])
    """

    __slots__ = ("_labels", "_succ", "_pred", "_edge_count", "_extent_cache")

    DEFAULT_LABEL = "?"

    def __init__(self, n: int = 0) -> None:
        self._labels: List[str] = [self.DEFAULT_LABEL] * n
        self._succ: List[List[int]] = [[] for _ in range(n)]
        self._pred: List[List[int]] = [[] for _ in range(n)]
        self._edge_count = 0
        self._extent_cache: Dict[str, Tuple[int, ...]] | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, label: str = DEFAULT_LABEL) -> int:
        """Add a node with the given label and return its identifier."""
        self._labels.append(label)
        self._succ.append([])
        self._pred.append([])
        self._extent_cache = None
        return len(self._labels) - 1

    def add_nodes(self, labels: Iterable[str]) -> List[int]:
        """Add one node per label; return the new identifiers in order."""
        return [self.add_node(label) for label in labels]

    def add_edge(self, u: int, v: int) -> None:
        """Add the directed edge ``u -> v`` (parallel edges are kept)."""
        self._check_node(u)
        self._check_node(v)
        self._succ[u].append(v)
        self._pred[v].append(u)
        self._edge_count += 1

    def add_edges(self, edges: Iterable[Tuple[int, int]]) -> None:
        for u, v in edges:
            self.add_edge(u, v)

    def set_label(self, v: int, label: str) -> None:
        self._check_node(v)
        self._labels[v] = label
        self._extent_cache = None

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        return len(self._labels)

    @property
    def edge_count(self) -> int:
        return self._edge_count

    def nodes(self) -> range:
        return range(len(self._labels))

    def edges(self) -> Iterator[Tuple[int, int]]:
        for u, targets in enumerate(self._succ):
            for v in targets:
                yield (u, v)

    def label(self, v: int) -> str:
        self._check_node(v)
        return self._labels[v]

    def labels(self) -> Sequence[str]:
        """The label of every node, indexed by node id."""
        return self._labels

    def alphabet(self) -> List[str]:
        """All distinct labels, sorted."""
        return sorted(set(self._labels))

    def successors(self, v: int) -> List[int]:
        self._check_node(v)
        return self._succ[v]

    def predecessors(self, v: int) -> List[int]:
        self._check_node(v)
        return self._pred[v]

    def out_degree(self, v: int) -> int:
        return len(self.successors(v))

    def in_degree(self, v: int) -> int:
        return len(self.predecessors(v))

    def extent(self, label: str) -> Tuple[int, ...]:
        """``ext(label)``: all nodes carrying *label* (paper Section 2)."""
        return self.extents().get(label, ())

    def extents(self) -> Dict[str, Tuple[int, ...]]:
        """Mapping of every label to its extent; cached until mutation."""
        if self._extent_cache is None:
            grouped: Dict[str, List[int]] = defaultdict(list)
            for v, label in enumerate(self._labels):
                grouped[label].append(v)
            self._extent_cache = {
                label: tuple(nodes) for label, nodes in grouped.items()
            }
        return self._extent_cache

    def has_edge(self, u: int, v: int) -> bool:
        self._check_node(u)
        self._check_node(v)
        # scan the smaller adjacency side
        if len(self._succ[u]) <= len(self._pred[v]):
            return v in self._succ[u]
        return u in self._pred[v]

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def reversed(self) -> "DiGraph":
        """A new graph with every edge direction flipped (labels kept)."""
        rev = DiGraph()
        rev._labels = list(self._labels)
        rev._succ = [list(p) for p in self._pred]
        rev._pred = [list(s) for s in self._succ]
        rev._edge_count = self._edge_count
        return rev

    def subgraph(self, keep: Iterable[int]) -> Tuple["DiGraph", Dict[int, int]]:
        """Induced subgraph on *keep*; returns (graph, old->new id map)."""
        keep_list = sorted(set(keep))
        remap = {old: new for new, old in enumerate(keep_list)}
        sub = DiGraph()
        for old in keep_list:
            sub.add_node(self._labels[old])
        for old in keep_list:
            u = remap[old]
            for tgt in self._succ[old]:
                if tgt in remap:
                    sub.add_edge(u, remap[tgt])
        return sub, remap

    def copy(self) -> "DiGraph":
        dup = DiGraph()
        dup._labels = list(self._labels)
        dup._succ = [list(s) for s in self._succ]
        dup._pred = [list(p) for p in self._pred]
        dup._edge_count = self._edge_count
        return dup

    # ------------------------------------------------------------------
    def _check_node(self, v: int) -> None:
        if not 0 <= v < len(self._labels):
            raise GraphError(f"node {v} not in graph of size {len(self._labels)}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DiGraph(nodes={self.node_count}, edges={self.edge_count}, "
            f"labels={len(set(self._labels))})"
        )
