"""Random graph generators used by tests, benchmarks and examples.

All generators take an explicit :class:`random.Random` seed so that every
test and benchmark run is reproducible.  The XMark-like document generator
(the paper's actual evaluation data) lives in :mod:`repro.graph.xmark`;
the generators here cover the supporting cast: random digraphs and DAGs for
property tests, layered DAGs that stress TwigStackD's density sensitivity,
and small labeled supply-chain-style graphs for the examples.
"""

from __future__ import annotations

import random
import string
from typing import List, Optional, Sequence

from .digraph import DiGraph

DEFAULT_ALPHABET = tuple(string.ascii_uppercase[:5])  # A..E, like Figure 1


def _rng(seed: Optional[int]) -> random.Random:
    return random.Random(seed)


def random_labels(
    n: int, alphabet: Sequence[str] = DEFAULT_ALPHABET, seed: Optional[int] = None
) -> List[str]:
    rng = _rng(seed)
    return [rng.choice(alphabet) for _ in range(n)]


def random_digraph(
    n: int,
    edge_prob: float = 0.05,
    alphabet: Sequence[str] = DEFAULT_ALPHABET,
    seed: Optional[int] = None,
) -> DiGraph:
    """G(n, p) directed graph (no self loops) with uniform random labels."""
    rng = _rng(seed)
    graph = DiGraph()
    graph.add_nodes(rng.choice(alphabet) for _ in range(n))
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < edge_prob:
                graph.add_edge(u, v)
    return graph


def random_dag(
    n: int,
    edge_prob: float = 0.1,
    alphabet: Sequence[str] = DEFAULT_ALPHABET,
    seed: Optional[int] = None,
) -> DiGraph:
    """Random DAG: edges only go from lower to higher node id."""
    rng = _rng(seed)
    graph = DiGraph()
    graph.add_nodes(rng.choice(alphabet) for _ in range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < edge_prob:
                graph.add_edge(u, v)
    return graph


def random_tree(
    n: int,
    alphabet: Sequence[str] = DEFAULT_ALPHABET,
    max_children: int = 4,
    seed: Optional[int] = None,
) -> DiGraph:
    """Rooted tree with edges pointing from parent to child.

    Node 0 is the root; each later node attaches to a uniformly random
    earlier node that still has child capacity.
    """
    rng = _rng(seed)
    graph = DiGraph()
    if n <= 0:
        return graph
    graph.add_node(rng.choice(alphabet))
    open_parents = [0]
    child_count = {0: 0}
    for _ in range(1, n):
        parent = rng.choice(open_parents)
        node = graph.add_node(rng.choice(alphabet))
        graph.add_edge(parent, node)
        child_count[node] = 0
        open_parents.append(node)
        child_count[parent] += 1
        if child_count[parent] >= max_children:
            open_parents.remove(parent)
    return graph


def layered_dag(
    layers: int,
    width: int,
    edge_prob: float = 0.3,
    alphabet: Sequence[str] = DEFAULT_ALPHABET,
    seed: Optional[int] = None,
) -> DiGraph:
    """A layered DAG: edges go from layer i to layer i+1 with given density.

    Dense layered DAGs are the regime in which TwigStackD "degrades
    noticeably" (paper Section 5.1); Figure 5-style experiments use these
    alongside XMark data to exercise that behaviour.
    """
    rng = _rng(seed)
    graph = DiGraph()
    layer_nodes: List[List[int]] = []
    for _ in range(layers):
        nodes = [graph.add_node(rng.choice(alphabet)) for _ in range(width)]
        layer_nodes.append(nodes)
    for i in range(layers - 1):
        for u in layer_nodes[i]:
            for v in layer_nodes[i + 1]:
                if rng.random() < edge_prob:
                    graph.add_edge(u, v)
    return graph


def anti_correlated_star(
    n_hub: int = 2000,
    fanout: int = 15,
    overlap: float = 0.02,
    branch_labels: Sequence[str] = ("B", "C"),
    pool_per_branch: int = 400,
    hub_label: str = "A",
    seed: Optional[int] = None,
) -> DiGraph:
    """Hub nodes whose branch reachabilities are *anti-correlated*.

    Each hub (label ``hub_label``) connects, with ``fanout`` edges, into
    the pool of exactly **one** branch label — except an ``overlap``
    fraction of hubs that connect into *every* branch.  Consequently each
    single condition ``A -> X_i`` has survival ≈ 1/len(branches) +
    overlap (individually unselective), while the conjunction over all
    branches has survival ≈ ``overlap`` (tiny).

    This is the regime where interleaved R-semijoins (DPS) structurally
    dominate R-join-only plans (DP): DP's first move must materialize a
    full two-table R-join (≈ n_hub·fanout/len(branches) tuples), whereas
    DPS may seed with a scan of the hub table plus one shared Filter that
    cuts it to ≈ overlap·n_hub rows before any Fetch expands anything.
    Real graphs show the same shape whenever entity neighborhoods are
    segregated (suppliers serve one region, papers cite one field).
    """
    rng = _rng(seed)
    graph = DiGraph()
    hubs = [graph.add_node(hub_label) for _ in range(n_hub)]
    pools = {
        label: [graph.add_node(label) for _ in range(pool_per_branch)]
        for label in branch_labels
    }
    for hub in hubs:
        if rng.random() < overlap:
            chosen = list(branch_labels)
        else:
            chosen = [rng.choice(branch_labels)]
        for label in chosen:
            for target in rng.sample(pools[label], min(fanout, pool_per_branch)):
                graph.add_edge(hub, target)
    return graph


def diamond_blowup(
    n_anchor: int = 300,
    branch_fanout: int = 40,
    closers: int = 2,
    seed: Optional[int] = None,
) -> DiGraph:
    """Per-anchor diamond instances whose left-deep joins must blow up.

    For each anchor ``a`` (label ``A``) the generator emits one ``b``
    (``B``, via ``a -> b``), one sink ``d`` (``D``, via ``b -> d``) and a
    private pool of ``C`` nodes: ``branch_fanout`` reached from ``a``,
    ``branch_fanout`` reaching ``d``, with only ``closers`` nodes in both
    sets (these also get a ``b -> c`` edge so triangle patterns stay
    non-empty).  On the diamond query ``A->B, A->C, B->D, C->D`` every
    left-deep order must bind ``C`` by expanding one full branch —
    ``out(a) ∩ C`` or ``in(d) ∩ C``, both of size ``branch_fanout`` — and
    filter with the remaining condition, materializing
    ``n_anchor * branch_fanout`` intermediate rows; a multiway intersect
    binds ``C`` as the ``closers``-sized intersection of the two branches
    directly.  The ``branch_fanout / closers`` ratio is the knob for how
    badly binary plans lose.

    Note the triangle is *not* a useful stress shape under R-join
    semantics: ``A ~> B`` and ``B ~> C`` already imply the closing edge
    ``A ~> C`` by transitivity of reachability, so its cycle never
    filters.  The diamond is the smallest cycle whose closing condition
    is independent of the path conditions.
    """
    rng = _rng(seed)
    graph = DiGraph()
    for _ in range(n_anchor):
        a = graph.add_node("A")
        b = graph.add_node("B")
        d = graph.add_node("D")
        graph.add_edge(a, b)
        graph.add_edge(b, d)
        shared = [graph.add_node("C") for _ in range(closers)]
        for c in shared:
            graph.add_edge(a, c)
            graph.add_edge(b, c)
            graph.add_edge(c, d)
        for _ in range(branch_fanout - closers):
            c = graph.add_node("C")
            graph.add_edge(a, c)
        for _ in range(branch_fanout - closers):
            c = graph.add_node("C")
            graph.add_edge(c, d)
    # a dash of label noise so the catalog's extents are not all equal
    for _ in range(rng.randint(0, n_anchor // 10)):
        graph.add_node("E")
    return graph


def figure1_graph() -> DiGraph:
    """The running example of the paper — Figure 1(a).

    A 5-label graph (A, B, C, D, E) reconstructed from the facts stated in
    the text: the base tables of Figure 2(a), the 2-hop example
    ``S({b3, b4}, c2, {e2})``, and the match ``(a0, b0, c1, d2, e1)``.
    Exact edge placement between those constraints is not fully determined
    by the paper, so this graph is an instance *consistent with every fact
    the text states*; tests assert those facts, not an exact edge list.
    """
    graph = DiGraph()
    labels = {}
    for name in (
        "a0",
        "b0", "b1", "b2", "b3", "b4", "b5", "b6",
        "c0", "c1", "c2", "c3",
        "d0", "d1", "d2", "d3", "d4", "d5",
        "e0", "e1", "e2", "e3", "e4", "e5", "e6", "e7",
    ):
        labels[name] = graph.add_node(name[0].upper())

    def edge(a: str, b: str) -> None:
        graph.add_edge(labels[a], labels[b])

    # a0 reaches c0 and c3 (per out(a0) = {c0, c3}); through c0/c3 it reaches
    # the d and e nodes whose `in` sets contain a0 in Figure 2(a).
    edge("a0", "b2")       # a0 -> b2 (out(b2) includes c1; in(b2) = {a0})
    edge("a0", "b3")
    edge("a0", "b4")
    edge("a0", "b5")
    edge("a0", "b6")
    edge("a0", "c0")
    edge("b0", "c1")
    edge("b1", "c2")       # b1 in F-cluster of c2? (b1 out = {c2})
    edge("b2", "c1")
    edge("b3", "c2")
    edge("b4", "c2")
    edge("b5", "c3")
    edge("b6", "c3")
    edge("c0", "d0")
    edge("c0", "d1")
    edge("c0", "e0")
    edge("c1", "d2")
    edge("c1", "d3")
    edge("c1", "e7")
    edge("c2", "e2")
    edge("c3", "d4")
    edge("c3", "d5")
    edge("c3", "e3")
    edge("d2", "e1")
    edge("e4", "e5")
    edge("e5", "e6")
    return graph
