"""XMark-like data-graph generator.

The paper's evaluation (Section 6) generates five graphs from the XMark XML
benchmark at scaling factors 0.2, 0.4, 0.6, 0.8 and 1.0, "treating both
document-internal links (parent-child) and cross-document links (ID/IDREF)
as edges in the same manner".  XMark models an auction site: items grouped
into regions, categories (with a category *graph*), people, and open/closed
auctions that reference items and people.

This module rebuilds that data-generating process from scratch:

* a document *tree* whose element vocabulary follows XMark (``site``,
  ``region``, ``item``, ``category``, ``person``, ``open_auction``, ...),
  with parent-child edges;
* ID/IDREF *cross edges*: ``incategory -> category``, auction
  ``itemref -> item``, ``bidder``/``seller``/``buyer`` ``-> person``,
  person ``watch -> open_auction``, and the ``catgraph`` edges between
  categories (which may create directed cycles — so, exactly like the
  paper's graphs, the output is a general digraph, not a DAG).

Scale substitution (see DESIGN.md Section 4/5): the paper's factor-1.0
dataset has 1.67M nodes, which a pure-Python performance study cannot
sensibly rerun.  We keep XMark's *relative* entity populations (21750
items : 25500 persons : 12000 open auctions : 9750 closed auctions : 1000
categories at factor 1.0) but scale the absolute counts by
``nodes_per_factor``; the default yields roughly 2k-12k nodes across the
factor ladder used in the benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .digraph import DiGraph

# XMark entity populations at factor 1.0 (from the XMark specification),
# kept as ratios of each other.
_XMARK_RATIOS = {
    "item": 21750,
    "person": 25500,
    "open_auction": 12000,
    "closed_auction": 9750,
    "category": 1000,
}
_RATIO_TOTAL = sum(_XMARK_RATIOS.values())

REGIONS = ("africa", "asia", "australia", "europe", "namerica", "samerica")


@dataclass
class XMarkConfig:
    """Knobs for the generator.

    ``entity_budget`` is the number of *entities* (items + persons +
    auctions + categories) produced at factor 1.0; the document tree adds
    roughly 3-4 structural nodes per entity on top of that.
    """

    factor: float = 0.1
    entity_budget: int = 3000
    bidders_per_auction: int = 2
    watches_per_person: float = 0.5
    catgraph_edges_per_category: float = 2.0
    seed: Optional[int] = 7


@dataclass
class XMarkGraph:
    """The generated data graph plus the entity id lists (for inspection)."""

    graph: DiGraph
    items: List[int] = field(default_factory=list)
    persons: List[int] = field(default_factory=list)
    open_auctions: List[int] = field(default_factory=list)
    closed_auctions: List[int] = field(default_factory=list)
    categories: List[int] = field(default_factory=list)


def _entity_counts(config: XMarkConfig) -> Dict[str, int]:
    budget = config.entity_budget * config.factor
    counts = {}
    for entity, ratio in _XMARK_RATIOS.items():
        counts[entity] = max(1, round(budget * ratio / _RATIO_TOTAL))
    return counts


def generate(config: Optional[XMarkConfig] = None, **overrides) -> XMarkGraph:
    """Generate an XMark-like data graph.

    Keyword overrides are applied on top of *config*, e.g.
    ``generate(factor=0.4, seed=1)``.
    """
    base = config or XMarkConfig()
    if overrides:
        merged = {**base.__dict__, **overrides}
        base = XMarkConfig(**merged)
    rng = random.Random(base.seed)
    counts = _entity_counts(base)

    graph = DiGraph()
    out = XMarkGraph(graph=graph)

    site = graph.add_node("site")

    # --- categories ---------------------------------------------------
    categories_root = graph.add_node("categories")
    graph.add_edge(site, categories_root)
    for _ in range(counts["category"]):
        category = graph.add_node("category")
        graph.add_edge(categories_root, category)
        name = graph.add_node("name")
        graph.add_edge(category, name)
        out.categories.append(category)

    # catgraph: edges between categories; may create cycles, exactly like
    # XMark's <catgraph> section once IDREFs are treated as plain edges.
    catgraph = graph.add_node("catgraph")
    graph.add_edge(site, catgraph)
    n_catgraph_edges = round(base.catgraph_edges_per_category * len(out.categories))
    for _ in range(n_catgraph_edges):
        src = rng.choice(out.categories)
        dst = rng.choice(out.categories)
        if src != dst:
            graph.add_edge(src, dst)

    # --- regions and items ---------------------------------------------
    regions_root = graph.add_node("regions")
    graph.add_edge(site, regions_root)
    region_nodes = []
    for _ in REGIONS:
        region = graph.add_node("region")
        graph.add_edge(regions_root, region)
        region_nodes.append(region)
    for _ in range(counts["item"]):
        region = rng.choice(region_nodes)
        item = graph.add_node("item")
        graph.add_edge(region, item)
        graph.add_edge(item, graph.add_node("name"))
        description = graph.add_node("description")
        graph.add_edge(item, description)
        graph.add_edge(description, graph.add_node("text"))
        incategory = graph.add_node("incategory")
        graph.add_edge(item, incategory)
        graph.add_edge(incategory, rng.choice(out.categories))  # IDREF
        out.items.append(item)

    # --- people ---------------------------------------------------------
    people_root = graph.add_node("people")
    graph.add_edge(site, people_root)
    for _ in range(counts["person"]):
        person = graph.add_node("person")
        graph.add_edge(people_root, person)
        graph.add_edge(person, graph.add_node("name"))
        if rng.random() < 0.6:
            graph.add_edge(person, graph.add_node("emailaddress"))
        if rng.random() < 0.3:
            profile = graph.add_node("profile")
            graph.add_edge(person, profile)
            interest = graph.add_node("interest")
            graph.add_edge(profile, interest)
            graph.add_edge(interest, rng.choice(out.categories))  # IDREF
        out.persons.append(person)

    # --- open auctions ----------------------------------------------------
    open_root = graph.add_node("open_auctions")
    graph.add_edge(site, open_root)
    for _ in range(counts["open_auction"]):
        auction = graph.add_node("open_auction")
        graph.add_edge(open_root, auction)
        itemref = graph.add_node("itemref")
        graph.add_edge(auction, itemref)
        graph.add_edge(itemref, rng.choice(out.items))  # IDREF
        seller = graph.add_node("seller")
        graph.add_edge(auction, seller)
        graph.add_edge(seller, rng.choice(out.persons))  # IDREF
        for _ in range(rng.randint(0, base.bidders_per_auction)):
            bidder = graph.add_node("bidder")
            graph.add_edge(auction, bidder)
            graph.add_edge(bidder, rng.choice(out.persons))  # IDREF
        out.open_auctions.append(auction)

    # person "watches" — IDREFs back into open auctions; combined with the
    # seller/bidder IDREFs these close person -> auction -> person loops,
    # another source of directed cycles.
    for person in out.persons:
        if out.open_auctions and rng.random() < base.watches_per_person:
            watch = graph.add_node("watch")
            graph.add_edge(person, watch)
            graph.add_edge(watch, rng.choice(out.open_auctions))

    # --- closed auctions --------------------------------------------------
    closed_root = graph.add_node("closed_auctions")
    graph.add_edge(site, closed_root)
    for _ in range(counts["closed_auction"]):
        auction = graph.add_node("closed_auction")
        graph.add_edge(closed_root, auction)
        itemref = graph.add_node("itemref")
        graph.add_edge(auction, itemref)
        graph.add_edge(itemref, rng.choice(out.items))  # IDREF
        buyer = graph.add_node("buyer")
        graph.add_edge(auction, buyer)
        graph.add_edge(buyer, rng.choice(out.persons))  # IDREF
        seller = graph.add_node("seller")
        graph.add_edge(auction, seller)
        graph.add_edge(seller, rng.choice(out.persons))  # IDREF
        graph.add_edge(auction, graph.add_node("price"))
        out.closed_auctions.append(auction)

    return out


# The five-dataset ladder mirroring the paper's 20M..100M series (Table 2).
DATASET_FACTORS = {
    "XS": 0.2,
    "S": 0.4,
    "M": 0.6,
    "L": 0.8,
    "XL": 1.0,
}


def dataset(name: str, entity_budget: int = 3000, seed: int = 7) -> XMarkGraph:
    """One of the standard five benchmark datasets (``XS``..``XL``).

    These stand in for the paper's 20M/40M/60M/80M/100M XMark graphs at a
    Python-feasible scale; the factor ladder (0.2..1.0) is identical.
    """
    if name not in DATASET_FACTORS:
        raise KeyError(f"unknown dataset {name!r}; choose from {sorted(DATASET_FACTORS)}")
    return generate(
        XMarkConfig(factor=DATASET_FACTORS[name], entity_budget=entity_budget, seed=seed)
    )
