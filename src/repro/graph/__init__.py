"""Graph substrate: labeled digraphs, traversals, SCCs, and generators."""

from .digraph import DiGraph, GraphError
from .condensation import Condensation, condense, strongly_connected_components
from .io import (
    GraphFormatError,
    load_edge_list,
    load_json_graph,
    save_edge_list,
    save_json_graph,
)
from .traversal import (
    TransitiveClosure,
    bfs_order,
    dfs_postorder,
    is_dag,
    is_reachable,
    reachable_set,
    topological_sort,
)

__all__ = [
    "DiGraph",
    "GraphError",
    "Condensation",
    "GraphFormatError",
    "load_edge_list",
    "load_json_graph",
    "save_edge_list",
    "save_json_graph",
    "condense",
    "strongly_connected_components",
    "TransitiveClosure",
    "bfs_order",
    "dfs_postorder",
    "is_dag",
    "is_reachable",
    "reachable_set",
    "topological_sort",
]
