"""Graph I/O: load and save labeled digraphs in simple text formats.

Users of the library bring their own graphs, not just XMark.  Two
formats are supported:

**Edge-list + labels** (two files, or one with sections) — the format
every graph dataset dump can be massaged into::

    # nodes.tsv: one "node_id<TAB>label" per line
    0	person
    1	watch

    # edges.tsv: one "src<TAB>dst" per line
    0	1

Node ids must be non-negative integers; gaps are allowed (missing ids get
the default label ``"?"``, so sparse exports still load).

**Single JSON** — the same payload as :mod:`repro.db.persist` uses for
its ``graph`` section::

    {"labels": ["person", "watch"], "edges": [[0, 1]]}

Comment lines (``#``) and blank lines are ignored in the TSV formats.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Tuple

from .digraph import DiGraph


class GraphFormatError(ValueError):
    """Raised on malformed graph input files."""


def _parse_lines(lines: Iterable[str], path: str, arity: int) -> List[Tuple[str, ...]]:
    rows = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("\t") if "\t" in line else line.split()
        if len(parts) != arity:
            raise GraphFormatError(
                f"{path}:{lineno}: expected {arity} fields, got {len(parts)}: {line!r}"
            )
        rows.append(tuple(parts))
    return rows


def load_edge_list(nodes_path: str, edges_path: str) -> DiGraph:
    """Load a labeled digraph from a nodes TSV and an edges TSV."""
    with open(nodes_path) as f:
        node_rows = _parse_lines(f, nodes_path, arity=2)
    with open(edges_path) as f:
        edge_rows = _parse_lines(f, edges_path, arity=2)

    labels = {}
    max_id = -1
    for node_text, label in node_rows:
        try:
            node = int(node_text)
        except ValueError:
            raise GraphFormatError(
                f"{nodes_path}: node id {node_text!r} is not an integer"
            ) from None
        if node < 0:
            raise GraphFormatError(f"{nodes_path}: negative node id {node}")
        if node in labels:
            raise GraphFormatError(f"{nodes_path}: duplicate node id {node}")
        labels[node] = label
        max_id = max(max_id, node)

    edges = []
    for src_text, dst_text in edge_rows:
        try:
            src, dst = int(src_text), int(dst_text)
        except ValueError:
            raise GraphFormatError(
                f"{edges_path}: non-integer edge endpoint in "
                f"({src_text!r}, {dst_text!r})"
            ) from None
        if src < 0 or dst < 0:
            raise GraphFormatError(f"{edges_path}: negative endpoint ({src}, {dst})")
        max_id = max(max_id, src, dst)
        edges.append((src, dst))

    graph = DiGraph(max_id + 1)
    for node, label in labels.items():
        graph.set_label(node, label)
    graph.add_edges(edges)
    return graph


def save_edge_list(graph: DiGraph, nodes_path: str, edges_path: str) -> None:
    """Write a digraph back out in the nodes/edges TSV format."""
    with open(nodes_path, "w") as f:
        f.write("# node_id\tlabel\n")
        for node in graph.nodes():
            f.write(f"{node}\t{graph.label(node)}\n")
    with open(edges_path, "w") as f:
        f.write("# src\tdst\n")
        for src, dst in graph.edges():
            f.write(f"{src}\t{dst}\n")


def load_json_graph(path: str) -> DiGraph:
    """Load a digraph from the ``{"labels": [...], "edges": [...]}`` JSON."""
    with open(path) as f:
        payload = json.load(f)
    try:
        labels = payload["labels"]
        edges = payload["edges"]
    except (TypeError, KeyError):
        raise GraphFormatError(
            f"{path}: expected an object with 'labels' and 'edges'"
        ) from None
    graph = DiGraph()
    graph.add_nodes(labels)
    for edge in edges:
        if len(edge) != 2:
            raise GraphFormatError(f"{path}: malformed edge {edge!r}")
        graph.add_edge(int(edge[0]), int(edge[1]))
    return graph


def save_json_graph(graph: DiGraph, path: str) -> None:
    with open(path, "w") as f:
        json.dump(
            {
                "labels": list(graph.labels()),
                "edges": [[u, v] for u, v in graph.edges()],
            },
            f,
        )
