"""Traversals and a naive reachability oracle.

These are the reference algorithms the rest of the library is validated
against: the 2-hop labeling (:mod:`repro.labeling.twohop`), the interval
codes (:mod:`repro.labeling.interval`) and the full query engine are all
property-tested for agreement with plain BFS reachability computed here.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, List, Optional, Set

from .digraph import DiGraph, GraphError


def bfs_order(graph: DiGraph, source: int) -> List[int]:
    """Nodes reachable from *source* (inclusive), in BFS discovery order."""
    seen = bytearray(graph.node_count)
    seen[source] = 1
    order = [source]
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.successors(u):
            if not seen[v]:
                seen[v] = 1
                order.append(v)
                queue.append(v)
    return order


def reachable_set(graph: DiGraph, source: int) -> Set[int]:
    """The set of nodes reachable from *source*, including itself.

    The paper's reachability relation ``u ~> v`` is reflexive in its graph
    codes (``in``/``out`` both contain the node itself after the compaction
    of Example 3.1), so every helper here treats a node as reaching itself.
    """
    return set(bfs_order(graph, source))


def is_reachable(graph: DiGraph, u: int, v: int) -> bool:
    """``u ~> v`` by plain BFS — the ground-truth reachability test."""
    if u == v:
        return True
    seen = bytearray(graph.node_count)
    seen[u] = 1
    queue = deque([u])
    while queue:
        x = queue.popleft()
        for y in graph.successors(x):
            if y == v:
                return True
            if not seen[y]:
                seen[y] = 1
                queue.append(y)
    return False


def dfs_postorder(graph: DiGraph, roots: Optional[Iterable[int]] = None) -> List[int]:
    """Iterative DFS postorder over the whole graph (or from *roots*).

    Children are visited in adjacency order, so the result is deterministic
    for a given graph; used by the interval coders.
    """
    n = graph.node_count
    visited = bytearray(n)
    order: List[int] = []
    root_iter = roots if roots is not None else range(n)
    for root in root_iter:
        if visited[root]:
            continue
        visited[root] = 1
        # stack holds (node, iterator over successors)
        stack = [(root, iter(graph.successors(root)))]
        while stack:
            node, it = stack[-1]
            advanced = False
            for child in it:
                if not visited[child]:
                    visited[child] = 1
                    stack.append((child, iter(graph.successors(child))))
                    advanced = True
                    break
            if not advanced:
                order.append(node)
                stack.pop()
    return order


def topological_sort(graph: DiGraph) -> List[int]:
    """Kahn topological sort; raises :class:`GraphError` on a cycle."""
    n = graph.node_count
    indeg = [graph.in_degree(v) for v in range(n)]
    queue = deque(v for v in range(n) if indeg[v] == 0)
    order: List[int] = []
    while queue:
        u = queue.popleft()
        order.append(u)
        for v in graph.successors(u):
            indeg[v] -= 1
            if indeg[v] == 0:
                queue.append(v)
    if len(order) != n:
        raise GraphError("graph has a cycle; no topological order exists")
    return order


def is_dag(graph: DiGraph) -> bool:
    """True iff the graph has no directed cycle."""
    try:
        topological_sort(graph)
    except GraphError:
        return False
    return True


class TransitiveClosure:
    """Dense transitive closure — the brute-force reachability oracle.

    Builds one BFS per node; O(n * (n + m)) time, O(n^2 / 8) bits of space.
    Only intended for tests and for small ground-truth comparisons; the
    library's production reachability test is the 2-hop labeling.
    """

    def __init__(self, graph: DiGraph) -> None:
        self._n = graph.node_count
        self._rows: List[Set[int]] = [reachable_set(graph, v) for v in graph.nodes()]

    def reaches(self, u: int, v: int) -> bool:
        return v in self._rows[u]

    def successors_closure(self, u: int) -> Set[int]:
        """All nodes reachable from *u* (including *u*)."""
        return self._rows[u]

    def pairs(self) -> Iterator[tuple]:
        """Every reachable ordered pair ``(u, v)`` with ``u != v``."""
        for u in range(self._n):
            for v in self._rows[u]:
                if u != v:
                    yield (u, v)
