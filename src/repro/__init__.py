"""repro — Fast Graph Pattern Matching (Cheng, Yu, Ding, Yu, Wang; ICDE 2008).

A from-scratch reproduction of the paper's R-join/R-semijoin graph pattern
matching system:

* 2-hop reachability *graph codes* over arbitrary directed node-labeled
  graphs (:mod:`repro.labeling`);
* a relational graph database with per-label base tables, a cluster-based
  R-join index and a W-table on a simulated paged storage engine
  (:mod:`repro.db`, :mod:`repro.storage`);
* the HPSJ and HPSJ+ (Filter/Fetch) R-join algorithms, R-semijoins with
  shared scans, and the DP / DPS cost-based optimizers
  (:mod:`repro.query`);
* the paper's baselines — TwigStackD (TSD) and IGMJ (INT-DP) — plus a
  naive ground-truth matcher (:mod:`repro.baselines`);
* XMark-like data generation and the Figure 4 query workloads
  (:mod:`repro.graph.xmark`, :mod:`repro.workloads`).

Quick start::

    from repro import GraphEngine, xmark

    data = xmark.generate(factor=0.2, seed=7)
    engine = GraphEngine(data.graph)
    result = engine.match("person -> watch, watch -> open_auction")
    print(len(result), "matches")
"""

from .graph import DiGraph, condense, is_reachable
from .graph import generators, xmark
from .labeling import DynamicReachability, TwoHopLabeling, build_two_hop
from .db import GraphDatabase, load_database, save_database
from .query import (
    GraphEngine,
    GraphPattern,
    QueryResult,
    parse_pattern,
)
from .baselines import IGMJEngine, NaiveMatcher, TwigStackD
from .workloads import PatternFactory

__version__ = "1.0.0"

__all__ = [
    "DiGraph",
    "condense",
    "is_reachable",
    "generators",
    "xmark",
    "DynamicReachability",
    "TwoHopLabeling",
    "build_two_hop",
    "GraphDatabase",
    "load_database",
    "save_database",
    "GraphEngine",
    "GraphPattern",
    "QueryResult",
    "parse_pattern",
    "IGMJEngine",
    "NaiveMatcher",
    "TwigStackD",
    "PatternFactory",
    "__version__",
]
