"""Persistence: save and load a graph database's offline structures.

The paper's offline phase (2-hop cover + base tables + join index) is the
expensive part of the system, so a production deployment computes it once
and reloads it across sessions.  Two formats coexist:

* **JSON (v1)** — serializes the two inputs that determine everything
  else (the data graph and its 2-hop labeling); :func:`load_database`
  rebuilds the :class:`~repro.db.database.GraphDatabase` (tables, cluster
  index, W-table, catalog) from them deterministically.  Portable,
  diffable, cannot execute code on load — and O(rebuild) to open.
* **Binary snapshot** (:mod:`repro.storage.snapshot`) — a single
  CRC-checked file holding *every* offline structure as delta-encoded
  ``array('q')`` columns, loaded via mmap with zero rebuild; codes,
  subclusters and base tables materialize lazily on first touch.

:func:`load_database` dispatches on the file's magic bytes, so callers
(and the CLI) never name the format; :func:`save_database` picks binary
for a ``.snap`` extension or an explicit ``format="snapshot"``.

Both writers use the full crash-atomic sequence: write to a temp file,
``flush`` + ``fsync`` it, :func:`os.replace` into place, then fsync the
directory entry — a power cut can neither promote a truncated temp file
nor lose the rename.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from ..graph.digraph import DiGraph
from ..labeling.twohop import TwoHopLabeling
from ..storage.buffer import DEFAULT_BUFFER_BYTES
from ..storage.snapshot import Snapshot, is_snapshot, write_snapshot
from .database import GraphDatabase

FORMAT_VERSION = 1

SNAPSHOT_EXTENSION = ".snap"


def _labeling_payload(labeling: TwoHopLabeling) -> dict:
    return {
        "in_codes": [sorted(code) for code in labeling.in_codes],
        "out_codes": [sorted(code) for code in labeling.out_codes],
    }


def _write_atomic(path: str, payload: bytes) -> None:
    """Temp file + flush + fsync + rename + directory fsync."""
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "wb") as f:
        f.write(payload)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp_path, path)
    directory = os.path.dirname(os.path.abspath(path))
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platforms without directory fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - filesystem refuses directory fsync
        pass
    finally:
        os.close(fd)


def save_database(db: GraphDatabase, path: str, format: Optional[str] = None) -> None:
    """Serialize *db* to *path*.

    ``format`` is ``"json"`` (graph + labeling, v1), ``"snapshot"``
    (binary, full offline state), or ``None`` to infer from the
    extension: ``.snap`` means snapshot, anything else stays JSON — so
    existing callers are unaffected.
    """
    if format is None:
        format = "snapshot" if path.endswith(SNAPSHOT_EXTENSION) else "json"
    if format == "snapshot":
        write_snapshot(db, path)
        return
    if format != "json":
        raise ValueError(f"unknown save format {format!r}; use 'json' or 'snapshot'")
    graph = db.graph
    payload = {
        "format_version": FORMAT_VERSION,
        "graph": {
            "labels": list(graph.labels()),
            "edges": [[u, v] for u, v in graph.edges()],
        },
        "labeling": _labeling_payload(db.labeling),
    }
    _write_atomic(path, json.dumps(payload).encode("utf-8"))


def load_database(
    path: str,
    buffer_bytes: int = DEFAULT_BUFFER_BYTES,
    code_cache_enabled: bool = True,
    use_views: Optional[bool] = None,
) -> GraphDatabase:
    """Load a database file of either format, detected by magic bytes.

    A binary snapshot maps the file and constructs the database around
    it (:meth:`GraphDatabase.from_snapshot` — no rebuild, lazy decode);
    a JSON file takes the v1 path: reuse the stored labeling verbatim
    and rebuild the (cheap, deterministic) tables and indexes.

    ``use_views`` (snapshot files only) selects the mmap-native read
    path; see :meth:`GraphDatabase.from_snapshot`.  It is ignored for
    JSON files, which have no mapping to view.
    """
    if is_snapshot(path):
        return GraphDatabase.from_snapshot(
            Snapshot.open(path),
            buffer_bytes=buffer_bytes,
            code_cache_enabled=code_cache_enabled,
            use_views=use_views,
        )
    with open(path) as f:
        payload = json.load(f)
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported database file version {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    graph = DiGraph()
    graph.add_nodes(payload["graph"]["labels"])
    graph.add_edges((u, v) for u, v in payload["graph"]["edges"])
    labeling = TwoHopLabeling(
        in_codes=[frozenset(code) for code in payload["labeling"]["in_codes"]],
        out_codes=[frozenset(code) for code in payload["labeling"]["out_codes"]],
    )
    return GraphDatabase(
        graph,
        labeling=labeling,
        buffer_bytes=buffer_bytes,
        code_cache_enabled=code_cache_enabled,
    )
