"""Persistence: save and load a graph database's offline structures.

The paper's offline phase (2-hop cover + base tables + join index) is the
expensive part of the system, so a production deployment computes it once
and reloads it across sessions.  This module serializes the two inputs
that determine everything else — the data graph and its 2-hop labeling —
to a single JSON file; :func:`load_database` rebuilds the
:class:`~repro.db.database.GraphDatabase` (tables, cluster index, W-table,
catalog) from them deterministically.

JSON was chosen over pickle deliberately: the file is portable across
Python versions, diffable, and cannot execute code on load.
"""

from __future__ import annotations

import json
import os

from ..graph.digraph import DiGraph
from ..labeling.twohop import TwoHopLabeling
from ..storage.buffer import DEFAULT_BUFFER_BYTES
from .database import GraphDatabase

FORMAT_VERSION = 1


def _labeling_payload(labeling: TwoHopLabeling) -> dict:
    return {
        "in_codes": [sorted(code) for code in labeling.in_codes],
        "out_codes": [sorted(code) for code in labeling.out_codes],
    }


def save_database(db: GraphDatabase, path: str) -> None:
    """Serialize *db*'s graph and 2-hop labeling to *path* (JSON)."""
    graph = db.graph
    payload = {
        "format_version": FORMAT_VERSION,
        "graph": {
            "labels": list(graph.labels()),
            "edges": [[u, v] for u, v in graph.edges()],
        },
        "labeling": _labeling_payload(db.labeling),
    }
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w") as f:
        json.dump(payload, f)
    os.replace(tmp_path, path)  # atomic on POSIX: no torn files on crash


def load_database(
    path: str,
    buffer_bytes: int = DEFAULT_BUFFER_BYTES,
    code_cache_enabled: bool = True,
) -> GraphDatabase:
    """Rebuild a :class:`GraphDatabase` from a file written by
    :func:`save_database`.

    The stored labeling is reused verbatim — the expensive 2-hop
    construction is *not* rerun; only the (cheap, deterministic) table and
    index loading happens.
    """
    with open(path) as f:
        payload = json.load(f)
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported database file version {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    graph = DiGraph()
    graph.add_nodes(payload["graph"]["labels"])
    graph.add_edges((u, v) for u, v in payload["graph"]["edges"])
    labeling = TwoHopLabeling(
        in_codes=[frozenset(code) for code in payload["labeling"]["in_codes"]],
        out_codes=[frozenset(code) for code in payload["labeling"]["out_codes"]],
    )
    return GraphDatabase(
        graph,
        labeling=labeling,
        buffer_bytes=buffer_bytes,
        code_cache_enabled=code_cache_enabled,
    )
