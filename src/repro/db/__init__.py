"""The graph database: base tables, cluster-based R-join index, catalog."""

from .catalog import Catalog, PairStats
from .database import CodeCache, GraphDatabase
from .join_index import ClusterRJoinIndex, SnapshotRJoinIndex
from .persist import load_database, save_database

__all__ = [
    "Catalog",
    "PairStats",
    "CodeCache",
    "GraphDatabase",
    "ClusterRJoinIndex",
    "SnapshotRJoinIndex",
    "load_database",
    "save_database",
]
