"""The cluster-based R-join index and the W-table (paper Section 3.2).

The index is "a B+-tree in which its non-leaf blocks are used for finding
a given center w.  In the leaf nodes, for each center w, its U_w and V_w,
denoted F-cluster and T-cluster, are maintained.  We further divide w's
F-cluster and T-cluster into labeled F-subclusters/T-subclusters where
every node x in an X-labeled F-subcluster can reach every node y in a
Y-labeled T-subcluster via w."  Crucially it stores *node identifiers*,
not tuple pointers, so many R-joins never touch the base tables at all.

The W-table maps a label pair ``(X, Y)`` to the centers that have both a
non-empty X-labeled F-subcluster and a non-empty Y-labeled T-subcluster;
it is "stored on disk with a B+-tree, and accessed by a pair of labels
(X, Y) as a key".  Both structures here live on the simulated storage
engine, so every probe is charged buffer-pool I/O.
"""

from __future__ import annotations

import threading
from array import array
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..graph.digraph import DiGraph
from ..labeling.twohop import TwoHopLabeling
from ..storage.bptree import BPlusTree
from ..storage.buffer import BufferPool

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..storage.snapshot import Snapshot

_EMPTY: Tuple[int, ...] = ()
_EMPTY_SUBCLUSTERS: Tuple[Dict[str, Tuple[int, ...]], Dict[str, Tuple[int, ...]]] = ({}, {})
_EMPTY_ARRAY: "array[int]" = array("q")


class ClusterRJoinIndex:
    """B+-tree of per-center labeled F/T-subclusters, plus the W-table."""

    def __init__(
        self,
        pool: BufferPool,
        graph: DiGraph,
        labeling: TwoHopLabeling,
        fanout: int = 64,
    ) -> None:
        self.pool = pool
        self._tree = BPlusTree(pool, name="rjoin-index", fanout=fanout, unique=True)
        self._wtable = BPlusTree(pool, name="w-table", fanout=fanout, unique=True)
        self._center_count = 0
        # memo of W(X, Y) as sorted array('q') — the batch kernels'
        # representation; the W-table is immutable once built.  The memo
        # lock makes first-probe fills safe when concurrent queries share
        # a live engine (the service's fine-grained tier).
        self._centers_arrays: Dict[Tuple[str, str], "array[int]"] = {}
        self._memo_lock = threading.Lock()
        self._build(graph, labeling)

    # a live database is shipped whole to process-pool workers; locks do
    # not pickle, so the worker re-creates its own on arrival
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_memo_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._memo_lock = threading.Lock()

    # ------------------------------------------------------------------
    def _build(self, graph: DiGraph, labeling: TwoHopLabeling) -> None:
        clusters = labeling.clusters()
        self._center_count = len(clusters)
        wtable_accumulator: Dict[Tuple[str, str], List[int]] = {}
        for center in sorted(clusters):
            f_cluster, t_cluster = clusters[center]
            f_sub: Dict[str, List[int]] = {}
            for node in f_cluster:
                f_sub.setdefault(graph.label(node), []).append(node)
            t_sub: Dict[str, List[int]] = {}
            for node in t_cluster:
                t_sub.setdefault(graph.label(node), []).append(node)
            # subclusters are stored as *sorted* tuples — a kernel
            # precondition (sorted-array intersections/unions), made
            # explicit here rather than inherited from clusters()'s order
            leaf_value = (
                {label: tuple(sorted(nodes)) for label, nodes in f_sub.items()},
                {label: tuple(sorted(nodes)) for label, nodes in t_sub.items()},
            )
            self._tree.insert(center, leaf_value)
            for x_label in f_sub:
                for y_label in t_sub:
                    wtable_accumulator.setdefault((x_label, y_label), []).append(center)
        for pair, centers in sorted(wtable_accumulator.items()):
            self._wtable.insert(pair, tuple(sorted(centers)))

    # ------------------------------------------------------------------
    # paper API
    # ------------------------------------------------------------------
    def centers(self, x_label: str, y_label: str) -> Tuple[int, ...]:
        """``W(X, Y)``: centers joining X-labeled to Y-labeled nodes."""
        return self._wtable.search((x_label, y_label), _EMPTY)

    def centers_array(self, x_label: str, y_label: str) -> "array[int]":
        """``W(X, Y)`` as a sorted ``array('q')``, memoized per pair.

        The batch kernels intersect graph codes against this array; the
        B+-tree is probed once per pair per process, not once per row.
        """
        pair = (x_label, y_label)
        cached = self._centers_arrays.get(pair)
        if cached is None:
            with self._memo_lock:
                cached = self._centers_arrays.get(pair)
                if cached is None:
                    centers = self.centers(x_label, y_label)
                    cached = self._centers_arrays[pair] = (
                        array("q", centers) if centers else _EMPTY_ARRAY
                    )
        return cached

    def get_f(self, center: int, label: str) -> Tuple[int, ...]:
        """``getF(w, X)``: the X-labeled F-subcluster of *center*."""
        leaf = self._tree.search(center)
        if leaf is None:
            return _EMPTY
        return leaf[0].get(label, _EMPTY)

    def get_t(self, center: int, label: str) -> Tuple[int, ...]:
        """``getT(w, Y)``: the Y-labeled T-subcluster of *center*."""
        leaf = self._tree.search(center)
        if leaf is None:
            return _EMPTY
        return leaf[1].get(label, _EMPTY)

    def get_ft(
        self, center: int
    ) -> Tuple[Dict[str, Tuple[int, ...]], Dict[str, Tuple[int, ...]]]:
        """Both labeled subcluster maps of *center* from ONE tree probe.

        HPSJ reads an F- and a T-subcluster for every center of
        ``W(X, Y)``; calling :meth:`get_f` then :meth:`get_t` descends
        the B+-tree twice for the same leaf.  This combined accessor
        returns the ``({X: F-subcluster}, {Y: T-subcluster})`` pair of
        maps with a single descent, halving the per-center probe cost.
        """
        leaf = self._tree.search(center)
        if leaf is None:
            return _EMPTY_SUBCLUSTERS
        return leaf

    # ------------------------------------------------------------------
    # inspection API (used by repro.analysis.indexaudit and the tests)
    # ------------------------------------------------------------------
    @property
    def index_tree(self) -> BPlusTree:
        """The cluster B+-tree itself, for structural audits."""
        return self._tree

    @property
    def wtable_tree(self) -> BPlusTree:
        """The W-table B+-tree itself, for structural audits."""
        return self._wtable

    def cluster_items(self):
        """Yield ``(center, f_subclusters, t_subclusters)`` leaf entries.

        Subclusters are ``{label: (node, ...)}`` dicts exactly as stored;
        iteration is in center order (a leaf-chain scan, charged I/O).
        """
        for center, (f_sub, t_sub) in self._tree.items():
            yield center, f_sub, t_sub

    def wtable_items(self):
        """Yield ``((X, Y), centers)`` W-table entries in key order."""
        return self._wtable.items()

    # ------------------------------------------------------------------
    @property
    def center_count(self) -> int:
        return self._center_count

    def wtable_pairs(self) -> List[Tuple[str, str]]:
        """All (X, Y) label pairs with at least one center."""
        return [pair for pair, _ in self._wtable.items()]

    def wtable_sizes(self) -> Dict[Tuple[str, str], int]:
        """Number of centers per W-table entry (used by the catalog)."""
        return {pair: len(centers) for pair, centers in self._wtable.items()}


class SnapshotRJoinIndex:
    """The R-join index read API served from an mmap-backed snapshot.

    Duck-types the read surface of :class:`ClusterRJoinIndex`
    (``centers``/``centers_array``/``get_f``/``get_t``/``get_ft``/
    ``cluster_items``/``wtable_items``/...), but nothing is rebuilt on
    construction: the W-table directory is a handful of label pairs
    (decoded eagerly — it is tiny and probed on every plan), while
    per-center subcluster leaves are delta-decoded from the mapping
    *lazily on first probe* and memoized here; the engine's cross-query
    ``CenterCache`` then memoizes the per-(center, label, side) tuples
    the batch kernels actually intersect, exactly as it does for the
    tree-backed index.

    There are no B+-trees behind this object, so ``index_tree``/
    ``wtable_tree`` are ``None`` — structural tree audits don't apply to
    a snapshot (the file-level CRC + geometry checks in
    :mod:`repro.storage.snapshot` play that role).
    """

    def __init__(self, snapshot: "Snapshot") -> None:
        self.pool: Optional[BufferPool] = None
        self._snapshot = snapshot
        # W-table directory: (X, Y) -> position of its center run
        self._pair_positions: Dict[Tuple[str, str], int] = {
            pair: position
            for position, pair in enumerate(snapshot.wtable_pairs())
        }
        self._label_ids: Dict[str, int] = {
            name: i for i, name in enumerate(snapshot.label_names)
        }
        self._centers_arrays: Dict[Tuple[str, str], "array[int]"] = {}
        self._centers_tuples: Dict[Tuple[str, str], Tuple[int, ...]] = {}
        # per-center decoded leaves, filled on first get_ft probe; the
        # memo lock serializes first-probe decodes when the service's
        # snapshot tier runs queries over this index concurrently
        self._leaves: Dict[
            int, Tuple[Dict[str, Tuple[int, ...]], Dict[str, Tuple[int, ...]]]
        ] = {}
        self._memo_lock = threading.Lock()

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_memo_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._memo_lock = threading.Lock()

    # ------------------------------------------------------------------
    # paper API (mirrors ClusterRJoinIndex)
    # ------------------------------------------------------------------
    def centers(self, x_label: str, y_label: str) -> Tuple[int, ...]:
        """``W(X, Y)``: centers joining X-labeled to Y-labeled nodes."""
        pair = (x_label, y_label)
        cached = self._centers_tuples.get(pair)
        if cached is None:
            decoded = tuple(self.centers_array(x_label, y_label))
            with self._memo_lock:
                cached = self._centers_tuples.setdefault(pair, decoded)
        return cached

    def centers_array(self, x_label: str, y_label: str) -> "array[int]":
        """``W(X, Y)`` as a sorted ``array('q')``, memoized per pair."""
        pair = (x_label, y_label)
        cached = self._centers_arrays.get(pair)
        if cached is None:
            position = self._pair_positions.get(pair)
            if position is None:
                decoded = _EMPTY_ARRAY
            else:
                decoded = self._snapshot.wtable_centers(position)
            with self._memo_lock:
                cached = self._centers_arrays.setdefault(pair, decoded)
        return cached

    def get_f(self, center: int, label: str) -> Tuple[int, ...]:
        """``getF(w, X)``: the X-labeled F-subcluster of *center*."""
        return self.get_ft(center)[0].get(label, _EMPTY)

    def get_t(self, center: int, label: str) -> Tuple[int, ...]:
        """``getT(w, Y)``: the Y-labeled T-subcluster of *center*."""
        return self.get_ft(center)[1].get(label, _EMPTY)

    def get_ft(
        self, center: int
    ) -> Tuple[Dict[str, Tuple[int, ...]], Dict[str, Tuple[int, ...]]]:
        """Both labeled subcluster maps of *center*, decoded on first use."""
        leaf = self._leaves.get(center)
        if leaf is None:
            position = self._snapshot.center_position(center)
            if position < 0:
                return _EMPTY_SUBCLUSTERS
            decoded = self._snapshot.subclusters_at(position)
            with self._memo_lock:
                leaf = self._leaves.setdefault(center, decoded)
        return leaf

    # ------------------------------------------------------------------
    # blessed view API (raw-runs snapshots): zero-copy twins of the
    # accessors above.  Deliberately NOT memoized — each call re-addresses
    # the mapping in O(1), and holding slices on the index would pin the
    # mapping past ``Snapshot.close()``.
    # ------------------------------------------------------------------
    @property
    def supports_views(self) -> bool:
        """True when the backing snapshot allows the zero-copy view API."""
        return self._snapshot.supports_views

    def centers_view(self, x_label: str, y_label: str):
        """``W(X, Y)`` as a zero-copy sorted slice of the mapping."""
        position = self._pair_positions.get((x_label, y_label))
        if position is None:
            return _EMPTY_ARRAY
        return self._snapshot.wtable_view(position)

    def get_ft_views(self, center: int):
        """View twin of :meth:`get_ft`: both labeled maps with every
        subcluster a zero-copy slice; fresh dicts per call, never cached."""
        position = self._snapshot.center_position(center)
        if position < 0:
            return _EMPTY_SUBCLUSTERS
        return self._snapshot.subcluster_views_at(position)

    def subcluster_view(self, center: int, label: str, side: int):
        """One ``(center, label, side)`` run as a zero-copy slice, or
        ``None`` when absent (*side* is ``snapshot.SIDE_F``/``SIDE_T``)."""
        position = self._snapshot.center_position(center)
        if position < 0:
            return None
        label_id = self._label_ids.get(label)
        if label_id is None:
            return None
        return self._snapshot.subcluster_run_view(position, side, label_id)

    # ------------------------------------------------------------------
    # inspection API
    # ------------------------------------------------------------------
    @property
    def snapshot(self) -> "Snapshot":
        return self._snapshot

    @property
    def index_tree(self) -> None:
        return None

    @property
    def wtable_tree(self) -> None:
        return None

    def cluster_items(self):
        """Yield ``(center, f_subclusters, t_subclusters)`` in center order.

        Decodes every leaf (it's a full scan by definition) but does not
        populate the probe memo — a save or audit pass must not pin the
        whole index in memory.
        """
        snapshot = self._snapshot
        for position, center in enumerate(snapshot.centers()):
            f_sub, t_sub = snapshot.subclusters_at(position)
            yield center, f_sub, t_sub

    def wtable_items(self):
        """Yield ``((X, Y), centers)`` W-table entries in key order."""
        for pair in sorted(self._pair_positions):
            yield pair, self.centers(*pair)

    # ------------------------------------------------------------------
    @property
    def center_count(self) -> int:
        return self._snapshot.center_count

    def wtable_pairs(self) -> List[Tuple[str, str]]:
        """All (X, Y) label pairs with at least one center."""
        return sorted(self._pair_positions)

    def wtable_sizes(self) -> Dict[Tuple[str, str], int]:
        """Number of centers per W-table entry (no run decode needed)."""
        return self._snapshot.wtable_sizes()
