"""Statistics catalog for cost-based R-join ordering.

Paper Section 4: "We maintain the join sizes and the processing costs for
all R-joins between two base tables in a graph database."  The catalog
precomputes, per label pair (X, Y):

* the estimated R-join output size ``|T_X ⋈_{X->Y} T_Y|`` — the sum over
  centers in W(X, Y) of |F_X(w)| * |T_Y(w)|, capped by |ext(X)|*|ext(Y)|
  (the sum double-counts pairs covered by several centers, so it is an
  upper bound; capping keeps selectivities sane);
* the number of centers |W(X, Y)| and the total fetched-node volume,
  which feed the IO_rji terms of the cost model.

These are *estimates* by design — the optimizer needs relative ordering,
not exact counts; the paper adopts "similar techniques to estimate
joins/semijoins used in relational database systems".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..graph.digraph import DiGraph
from ..labeling.twohop import TwoHopLabeling


@dataclass(frozen=True)
class PairStats:
    """Per-(X, Y) statistics for the R-join between two base tables."""

    pair_estimate: int     # estimated |T_X ⋈ T_Y|
    center_count: int      # |W(X, Y)|
    fetch_volume: int      # Σ_w |T_Y(w)| — nodes touched by Fetch from X side


class Catalog:
    """Extent sizes and pairwise R-join statistics for one data graph."""

    def __init__(self, graph: DiGraph, labeling: TwoHopLabeling) -> None:
        self.extent_sizes: Dict[str, int] = {
            label: len(nodes) for label, nodes in graph.extents().items()
        }
        self._pairs: Dict[Tuple[str, str], PairStats] = {}
        self._build(graph, labeling)

    @classmethod
    def from_stats(
        cls,
        extent_sizes: Dict[str, int],
        pairs: Dict[Tuple[str, str], PairStats],
    ) -> "Catalog":
        """Rehydrate a catalog from precomputed statistics.

        The eager constructor walks every cluster of the labeling; a
        snapshot already carries the finished per-pair statistics, so
        loading must not pay (or trigger) that scan.
        """
        catalog = cls.__new__(cls)
        catalog.extent_sizes = dict(extent_sizes)
        catalog._pairs = dict(pairs)
        return catalog

    def _build(self, graph: DiGraph, labeling: TwoHopLabeling) -> None:
        sums: Dict[Tuple[str, str], int] = {}
        centers: Dict[Tuple[str, str], int] = {}
        volumes: Dict[Tuple[str, str], int] = {}
        for _, (f_cluster, t_cluster) in labeling.clusters().items():
            f_by_label: Dict[str, int] = {}
            for node in f_cluster:
                label = graph.label(node)
                f_by_label[label] = f_by_label.get(label, 0) + 1
            t_by_label: Dict[str, int] = {}
            for node in t_cluster:
                label = graph.label(node)
                t_by_label[label] = t_by_label.get(label, 0) + 1
            for x_label, fx in f_by_label.items():
                for y_label, ty in t_by_label.items():
                    pair = (x_label, y_label)
                    sums[pair] = sums.get(pair, 0) + fx * ty
                    centers[pair] = centers.get(pair, 0) + 1
                    volumes[pair] = volumes.get(pair, 0) + ty
        for pair, total in sums.items():
            x_label, y_label = pair
            cap = self.extent_sizes.get(x_label, 0) * self.extent_sizes.get(y_label, 0)
            self._pairs[pair] = PairStats(
                pair_estimate=min(total, cap),
                center_count=centers[pair],
                fetch_volume=volumes[pair],
            )

    # ------------------------------------------------------------------
    def extent_size(self, label: str) -> int:
        return self.extent_sizes.get(label, 0)

    def pair_stats(self, x_label: str, y_label: str) -> PairStats:
        return self._pairs.get((x_label, y_label), PairStats(0, 0, 0))

    def join_size(self, x_label: str, y_label: str) -> int:
        """Estimated ``|T_X ⋈_{X->Y} T_Y|`` between two base tables."""
        return self.pair_stats(x_label, y_label).pair_estimate

    def join_selectivity(self, x_label: str, y_label: str) -> float:
        """``|T_X ⋈ T_Y| / (|T_X| * |T_Y|)`` — the Eq. (10) ratio."""
        denom = self.extent_size(x_label) * self.extent_size(y_label)
        if denom == 0:
            return 0.0
        return self.join_size(x_label, y_label) / denom

    def reduction_factor(self, x_label: str, y_label: str) -> float:
        """``|T_X ⋈ T_Y| / |T_X|`` — the Eq. (11) per-X-tuple fan-out.

        Used to estimate how a temporal table holding an X column grows
        when it R-joins a new base table T_Y.
        """
        size = self.extent_size(x_label)
        if size == 0:
            return 0.0
        return self.join_size(x_label, y_label) / size

    def semijoin_survival(self, x_label: str, y_label: str) -> float:
        """Fraction of X tuples that survive the semijoin ``⋉_{X->Y}``.

        Estimated as min(1, join_size / |T_X|) — every surviving tuple
        contributes at least one join pair.
        """
        return min(1.0, self.reduction_factor(x_label, y_label))

    def all_pairs(self) -> Dict[Tuple[str, str], PairStats]:
        return dict(self._pairs)
