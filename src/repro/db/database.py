"""The graph database GDB: base tables + R-join index + catalog.

Paper Section 3: "Based on the 2-hop reachability labeling, we store graph
G_D into a database, G_DB, by taking a node-oriented representation.
There are |Σ| tables for G_D.  A table T_X, for a label X ∈ Σ, has three
columns named X, X_in and X_out. ... We assume that the X column is the
primary key of the table."  The in/out columns store the *compact* codes
(the node itself removed, per Example 3.1); :meth:`out_code`/
:meth:`in_code` re-add it.

``getCenters(x, X, Y) = out(x) ∩ W(X, Y)`` (Eq. 6) "needs to access the
base table T_X using the primary index.  We use a working cache to cache
those pairs of (x_i, out(x_i)) ... to reduce the access cost for later
reuse" — implemented by :class:`CodeCache`, which can be disabled for the
ablation benchmarks.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from ..graph.digraph import DiGraph
from ..labeling.twohop import TwoHopLabeling, build_two_hop
from ..storage.buffer import DEFAULT_BUFFER_BYTES, BufferPool
from ..storage.pages import DEFAULT_PAGE_SIZE, DiskManager
from ..storage.stats import IOStats
from ..storage.table import Table
from .catalog import Catalog, PairStats
from .join_index import ClusterRJoinIndex, SnapshotRJoinIndex


@dataclass
class CodeCache:
    """Working cache for (node, in/out graph code) pairs.

    Unbounded by default (the paper does not bound it either); ``enabled``
    and the hit/miss counters exist for the working-cache ablation.
    """

    enabled: bool = True
    hits: int = 0
    misses: int = 0
    _store: Dict[Tuple[int, str], FrozenSet[int]] = field(default_factory=dict)

    def get(self, node: int, side: str) -> Optional[FrozenSet[int]]:
        if not self.enabled:
            self.misses += 1
            return None
        code = self._store.get((node, side))
        if code is None:
            self.misses += 1
        else:
            self.hits += 1
        return code

    def put(self, node: int, side: str, code: FrozenSet[int]) -> None:
        if self.enabled:
            self._store[(node, side)] = code

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0


class GraphDatabase:
    """A data graph stored as per-label base tables with graph codes.

    Parameters
    ----------
    graph:
        The data graph (it is retained only for labels/extents; queries
        never traverse it).
    labeling:
        An optional precomputed 2-hop labeling (otherwise built here).
    buffer_bytes / page_size:
        Storage-engine configuration; the paper's setup is a 1 MiB buffer.
    code_cache_enabled:
        Toggle the getCenters working cache (ablation hook).
    """

    def __init__(
        self,
        graph: DiGraph,
        labeling: Optional[TwoHopLabeling] = None,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
        page_size: int = DEFAULT_PAGE_SIZE,
        code_cache_enabled: bool = True,
    ) -> None:
        self.graph = graph
        self.pool = BufferPool(
            DiskManager(page_size=page_size),
            capacity_bytes=buffer_bytes,
        )
        self.labeling = labeling if labeling is not None else build_two_hop(graph)
        if self.labeling.node_count != graph.node_count:
            raise ValueError(
                "labeling covers "
                f"{self.labeling.node_count} nodes but graph has {graph.node_count}"
            )
        self.base_tables: Dict[str, Table] = {}
        self._table_labels: Tuple[str, ...] = tuple(sorted(graph.extents()))
        self._load_base_tables()
        self.join_index = ClusterRJoinIndex(self.pool, graph, self.labeling)
        self.catalog = Catalog(graph, self.labeling)
        self.code_cache = CodeCache(enabled=code_cache_enabled)
        self._node_labels = list(graph.labels())
        #: bumped whenever the join index is (re)built; cross-query
        #: caches (the engine's CenterCache) key their validity on it
        self.index_generation = 0
        #: True when the read path may address zero-copy snapshot views
        self.mmap_views = False
        self._snapshot = None
        self._snapshot_config: Optional[Tuple[int, int, bool, bool]] = None
        self._table_lock = threading.Lock()
        self.pool.flush_all()

    @property
    def stats(self) -> IOStats:
        """The I/O recorder charges resolve to — the buffer pool's, which
        honours the per-thread :func:`~repro.storage.stats.use_stats`
        override so concurrent queries get exact attribution."""
        return self.pool.stats

    # a live database is shipped whole to process-pool workers; locks do
    # not pickle, so the worker re-creates its own on arrival
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_table_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._table_lock = threading.Lock()

    # ------------------------------------------------------------------
    @classmethod
    def from_snapshot(
        cls,
        snapshot,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
        page_size: int = DEFAULT_PAGE_SIZE,
        code_cache_enabled: bool = True,
        use_views: Optional[bool] = None,
    ) -> "GraphDatabase":
        """Construct a database that serves from a binary snapshot.

        Nothing expensive is rebuilt: codes come from the labeling's
        array source (lazy delta decodes of the mapping), the R-join
        index and W-table are a :class:`SnapshotRJoinIndex` over the
        same mapping, the catalog is rehydrated from the stored
        statistics, and base tables materialize per label on first
        access.  Only the graph itself (O(V+E), needed for labels and
        extents everywhere) is reconstructed eagerly.

        ``use_views`` controls the mmap-native read path (zero-copy
        slices straight out of the mapping): ``None`` enables it exactly
        when the file layout supports it (raw-runs snapshots), ``True``
        demands it (raises :class:`ValueError` on a legacy delta file),
        ``False`` forces the tuple-materializing path — the differential
        oracle the mmap-native tests compare against.
        """
        if use_views is None:
            use_views = bool(snapshot.supports_views)
        elif use_views and not snapshot.supports_views:
            raise ValueError(
                f"snapshot {snapshot.path!r} is delta-encoded (legacy "
                "layout) and cannot serve zero-copy views; rewrite it or "
                "pass use_views=False"
            )
        db = cls.__new__(cls)
        db.graph = snapshot.build_graph()
        db.pool = BufferPool(
            DiskManager(page_size=page_size),
            capacity_bytes=buffer_bytes,
        )
        db.labeling = TwoHopLabeling.from_array_source(
            snapshot.node_count,
            snapshot.in_code_array,
            snapshot.out_code_array,
            in_view_fetch=snapshot.in_code_view if use_views else None,
            out_view_fetch=snapshot.out_code_view if use_views else None,
        )
        db.base_tables = {}
        db._table_labels = tuple(snapshot.label_names)
        db.join_index = SnapshotRJoinIndex(snapshot)
        db.catalog = Catalog.from_stats(
            snapshot.extent_sizes(),
            {
                pair: PairStats(*stats)
                for pair, stats in snapshot.catalog_pairs().items()
            },
        )
        db.code_cache = CodeCache(enabled=code_cache_enabled)
        db._node_labels = list(db.graph.labels())
        db.index_generation = 0
        db.mmap_views = use_views
        db._snapshot = snapshot
        db._snapshot_config = (
            buffer_bytes, page_size, code_cache_enabled, use_views
        )
        db._table_lock = threading.Lock()
        return db

    # ------------------------------------------------------------------
    def _load_base_tables(self) -> None:
        for label in self._table_labels:
            self._materialize_table(label)

    def _materialize_table(self, label: str) -> Table:
        nodes = self.graph.extent(label)
        table = Table(
            self.pool,
            name=f"T_{label}",
            columns=(label, f"{label}_in", f"{label}_out"),
            primary_key=label,
        )
        for node in sorted(nodes):
            in_code = self.labeling.in_codes[node]
            out_code = self.labeling.out_codes[node]
            table.insert(
                (
                    node,
                    tuple(sorted(in_code - {node})),
                    tuple(sorted(out_code - {node})),
                )
            )
        self.base_tables[label] = table
        return table

    # ------------------------------------------------------------------
    # public access paths
    # ------------------------------------------------------------------
    def labels(self) -> Tuple[str, ...]:
        return self._table_labels

    def base_table(self, label: str) -> Table:
        """The base table ``T_label``, materializing it on first access.

        Snapshot-loaded databases defer table construction per label —
        most workloads touch a handful of the |Σ| tables, and the seed
        scan is the only operator that needs row storage at all.
        """
        table = self.base_tables.get(label)
        if table is not None:
            return table
        if label not in self._table_labels:
            raise KeyError(
                f"no base table for label {label!r}; labels are {self.labels()}"
            )
        # double-checked: concurrent first touches of the same label must
        # not materialize (and insert pages for) the table twice
        with self._table_lock:
            table = self.base_tables.get(label)
            if table is not None:
                return table
            return self._materialize_table(label)

    def node_label(self, node: int) -> str:
        return self._node_labels[node]

    def out_code(self, node: int) -> FrozenSet[int]:
        """``out(x)`` — fetched via the primary index, with working cache."""
        return self._code(node, "out")

    def in_code(self, node: int) -> FrozenSet[int]:
        """``in(x)`` — fetched via the primary index, with working cache."""
        return self._code(node, "in")

    def _code(self, node: int, side: str) -> FrozenSet[int]:
        cached = self.code_cache.get(node, side)
        if cached is not None:
            return cached
        label = self._node_labels[node]
        row = self.base_table(label).fetch_by_key(node)
        if row is None:
            raise KeyError(f"node {node} not found in base table T_{label}")
        stored = row[2] if side == "out" else row[1]
        code = frozenset(stored) | {node}
        self.code_cache.put(node, side, code)
        return code

    def out_code_array(self, node: int):
        """``out(x)`` as a sorted ``array('q')`` (the batch kernels' view).

        Served from the labeling's lazily-built array cache; the stored
        base-table codes were loaded from the same labeling, so both
        representations are definitionally equal.
        """
        return self.labeling.out_code_array(node)

    def in_code_array(self, node: int):
        """``in(x)`` as a sorted ``array('q')`` (the batch kernels' view)."""
        return self.labeling.in_code_array(node)

    def out_code_view(self, node: int):
        """``out(x)`` as a zero-copy snapshot slice when ``mmap_views``
        (else the memoized array — identical values either way)."""
        return self.labeling.out_code_view(node)

    def in_code_view(self, node: int):
        """``in(x)`` view twin of :meth:`out_code_view`."""
        return self.labeling.in_code_view(node)

    def extent_view(self, label: str):
        """All *label*-labeled node ids, sorted, as a zero-copy snapshot
        slice — the mmap-native seed scan's column (skips base tables).

        Only valid when ``mmap_views`` is True; the label-id space is the
        snapshot's sorted label dictionary, which ``_table_labels``
        mirrors on a snapshot-loaded database.
        """
        if self._snapshot is None:
            raise RuntimeError(
                "extent_view needs a snapshot-backed database"
            )
        return self._snapshot.extent_view(self._table_labels.index(label))

    # ------------------------------------------------------------------
    @property
    def snapshot_handle(self):
        """The backing :class:`~repro.storage.snapshot.Snapshot`, or
        ``None`` for an eagerly-built database."""
        return self._snapshot

    def snapshot_descriptor(self) -> Optional[Tuple]:
        """What a process worker needs to re-open this database by path:
        ``(path, index_generation, buffer_bytes, page_size,
        code_cache_enabled, use_views)`` — or ``None`` when the database
        is not snapshot-backed (or its snapshot has been closed), in
        which case workers must fall back to fork inheritance.
        """
        if self._snapshot is None or self._snapshot.closed:
            return None
        if self._snapshot_config is None:
            return None
        if not isinstance(self.join_index, SnapshotRJoinIndex):
            # rebuild_join_index swapped in a live tree: the file on disk
            # no longer describes this database
            return None
        buffer_bytes, page_size, code_cache_enabled, use_views = (
            self._snapshot_config
        )
        return (
            self._snapshot.path,
            self.index_generation,
            buffer_bytes,
            page_size,
            code_cache_enabled,
            use_views,
        )

    def get_centers(self, node: int, x_label: str, y_label: str) -> FrozenSet[int]:
        """``getCenters(x, X, Y) = out(x) ∩ W(X, Y)`` (Eq. 6)."""
        wxy = self.join_index.centers(x_label, y_label)
        return self.out_code(node) & frozenset(wxy)

    def get_centers_reverse(self, node: int, x_label: str, y_label: str) -> FrozenSet[int]:
        """Mirror of Eq. 6 for the Y side: ``in(y) ∩ W(X, Y)``."""
        wxy = self.join_index.centers(x_label, y_label)
        return self.in_code(node) & frozenset(wxy)

    def reaches(self, u: int, v: int) -> bool:
        """Reachability through stored codes: ``out(u) ∩ in(v) ≠ ∅``."""
        return not self.out_code(u).isdisjoint(self.in_code(v))

    def storage_report(self) -> Dict[str, Dict[str, int]]:
        """Page/row footprint of every stored structure.

        Returns ``{structure: {"rows": ..., "pages": ...}}`` for each base
        table (heap + primary index height folded into "pages" is not
        attempted — index pages are shared in the pool), plus totals for
        the whole simulated disk.  Useful for sizing buffer budgets and
        for the Table 2-style reporting the CLI's ``stats`` command does.
        """
        for label in self._table_labels:  # a report covers *every* table
            self.base_table(label)
        report: Dict[str, Dict[str, int]] = {}
        for label, table in sorted(self.base_tables.items()):
            report[f"T_{label}"] = {
                "rows": len(table),
                "pages": table.page_count,
            }
        report["__disk__"] = {
            "rows": sum(len(t) for t in self.base_tables.values()),
            "pages": self.pool.disk.page_count,
        }
        return report

    # ------------------------------------------------------------------
    def rebuild_join_index(self) -> None:
        """Rebuild the cluster index, W-table and catalog from the current
        graph + labeling, bumping ``index_generation``.

        The generation bump is the invalidation signal for cross-query
        caches: anything keyed on centers or subclusters (the engine's
        CenterCache) must drop its entries when this runs.

        On a snapshot-loaded database this converts the lazy
        :class:`SnapshotRJoinIndex` into a live tree-backed index (the
        snapshot file cannot reflect label mutations), which is exactly
        what the dynamic-maintenance layer needs after edits.
        """
        self.join_index = ClusterRJoinIndex(self.pool, self.graph, self.labeling)
        self.catalog = Catalog(self.graph, self.labeling)
        self.index_generation += 1
        # the tree-backed index has no views; the snapshot file no longer
        # describes the live index either, so workers must stop re-opening
        # it by path (snapshot_descriptor's generation check catches this)
        self.mmap_views = False
        self.pool.flush_all()

    # ------------------------------------------------------------------
    def reset_counters(self) -> None:
        """Clear I/O stats and the working cache (cold-start a query)."""
        self.stats.reset()
        self.code_cache.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GraphDatabase(labels={len(self._table_labels)}, "
            f"nodes={self.graph.node_count}, "
            f"centers={self.join_index.center_count})"
        )
