"""sanitizer — runtime tripwires for the deep static checker's invariants.

The rule packs in :mod:`repro.analysis.racecheck` and
:mod:`repro.analysis.contracts` are necessarily approximate: taint does
not flow through call results, dynamic dispatch is name-matched, and an
untyped receiver is a silent false negative.  Sanitizer mode is the
dynamic oracle that backs them up — every statically checked contract
has a runtime tripwire that fires on the actual execution:

* **worker shared-state freezing** — before a morsel runs inside a pool
  worker, :class:`SharedStateGuard` fingerprints the coordinator-shared
  structures the worker may only *read* (the database's index identity
  and generation, the submitted plan); after the morsel it verifies
  nothing drifted, so a worker mutation the race rules missed still
  fails the run (``race/*`` oracle);
* **cache-generation freshness** — a sanitizing
  :class:`~repro.query.physical.cache.CenterCache` is bound to its
  database and asserts ``index_generation`` freshness on *every* read,
  not just at the sync choke point (``contract/cache-unsynced-read``
  oracle);
* **snapshot view poisoning** — closing a
  :class:`~repro.storage.snapshot.Snapshot` while zero-copy views are
  still exported raises :class:`SanitizerError` naming the hazard
  instead of the cryptic ``BufferError`` (``mmap/view-held`` oracle);
* **cache shard isolation** — a sharded
  :class:`~repro.query.physical.cache.CenterCache` keeps every entry in
  the shard its key hashes to, with per-shard byte ledgers that match
  the entries actually resident; :func:`verify_shard_isolation` audits
  both after worker morsels run, so a cross-shard write (a locking bug
  in the striped tier) trips at runtime (``conc/*`` oracle).

Everything is opt-in: ``ExecutionContext(sanitize=True)`` or
``REPRO_SANITIZE=1`` in the environment (read per execution, so the
differential suite can flip it without re-importing anything).  The
hooks live in the query/storage modules themselves and import this
module lazily — this module must stay stdlib-only so the analysis layer
never depends on the query layer.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

#: environment switch; any value other than these enables sanitize mode
_FALSEY = frozenset({"", "0", "false", "off", "no"})

#: the coordinator-shared GraphDatabase attributes a worker must not swap
_GUARDED_ATTRS = ("join_index", "catalog", "labeling")


class SanitizerError(RuntimeError):
    """A runtime tripwire fired: a checked invariant was violated."""


def sanitize_enabled() -> bool:
    """Is sanitize mode requested via ``REPRO_SANITIZE``?

    Read on every call (never cached at import time) so tests and CI
    legs can toggle the environment per execution.
    """
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() not in _FALSEY


def fingerprint(value: Any) -> int:
    """A cheap structural fingerprint used as a mutation tripwire.

    ``repr``-based: any change to contents *or* ordering of the guarded
    structure changes the fingerprint.  Good enough for tripwires (a
    collision hides a mutation with hash-collision probability), useless
    for persistence — never store these.
    """
    return hash(repr(value))


class SharedStateGuard:
    """Freeze-check for the structures a worker morsel may only read.

    Capture before the morsel, verify after::

        guard = SharedStateGuard.capture(db, plan)
        ...   # run the morsel
        guard.verify(db, plan, where="stage 2 morsel")

    The guard records the database's ``index_generation``, the object
    identity of its index/catalog/labeling structures (a swap is exactly
    what ``contract/generation-not-bumped`` polices) and a structural
    fingerprint of the plan (workers must treat plans as immutable).
    """

    __slots__ = ("_facts",)

    def __init__(self, facts: Dict[str, Any]) -> None:
        self._facts = facts

    @classmethod
    def capture(cls, db: Any, plan: Any = None) -> "SharedStateGuard":
        facts: Dict[str, Any] = {
            "index_generation": getattr(db, "index_generation", None)
        }
        for attr in _GUARDED_ATTRS:
            facts[attr] = id(getattr(db, attr, None))
        if plan is not None:
            facts["plan"] = fingerprint(plan)
        return cls(facts)

    def verify(
        self, db: Any, plan: Any = None, where: str = "", cache: Any = None
    ) -> None:
        """Raise :class:`SanitizerError` naming every drifted fact.

        ``cache`` additionally audits a (possibly sharded) CenterCache
        via :func:`verify_shard_isolation` — the striped tier's runtime
        oracle rides the same capture/verify bracket as the freeze
        checks.
        """
        current = type(self).capture(db, plan)._facts
        drifted = sorted(
            name for name, value in self._facts.items()
            if current.get(name) != value
        )
        if drifted:
            location = f" in {where}" if where else ""
            raise SanitizerError(
                f"coordinator-shared state changed under a worker morsel"
                f"{location}: {', '.join(drifted)} drifted — worker code "
                f"must not mutate shared structures (see race/* rules)"
            )
        if cache is not None:
            verify_shard_isolation(cache, where=where)


def verify_shard_isolation(cache: Any, where: str = "") -> None:
    """Audit a sharded cache's shard homes and byte ledgers.

    Duck-typed: any object exposing ``check_shard_isolation() ->
    list[str]`` qualifies (the striped
    :class:`~repro.query.physical.cache.CenterCache` does).  Objects
    without the hook — unsharded caches, ``None`` — pass trivially, so
    call sites need no tier checks.  Raises :class:`SanitizerError`
    listing every violation.
    """
    checker = getattr(cache, "check_shard_isolation", None)
    if checker is None:
        return
    violations = checker()
    if violations:
        location = f" in {where}" if where else ""
        raise SanitizerError(
            f"cache shard isolation violated{location}: "
            + "; ".join(violations)
            + " — a write landed outside its key's shard or a shard "
            "ledger drifted (see conc/* rules)"
        )


def assert_generation_fresh(
    bound_generation: Optional[int], db: Any, what: str = "CenterCache"
) -> None:
    """Per-read freshness tripwire for generation-keyed caches."""
    current = getattr(db, "index_generation", None)
    if bound_generation != current:
        raise SanitizerError(
            f"{what} read at generation {bound_generation} but the "
            f"database is at generation {current} — a sync choke point "
            f"was bypassed (see contract/cache-unsynced-read)"
        )


__all__ = [
    "SanitizerError",
    "SharedStateGuard",
    "assert_generation_fresh",
    "fingerprint",
    "sanitize_enabled",
    "verify_shard_isolation",
]
