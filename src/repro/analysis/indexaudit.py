"""indexaudit — invariant auditing for a built :class:`GraphDatabase`.

The whole query layer is only correct if the offline structures are: the
2-hop labeling must be a true reachability cover (``u ~> v`` iff
``out(u) ∩ in(v) ≠ ∅``), the W-table must agree with the cluster index's
labeled F/T-subclusters, and every B+-tree must actually be a B+-tree.
None of those are enforced at query time — the operators trust them — so
this auditor is the fsck that storage and labeling refactors run before
claiming correctness.

Three families of checks:

* **cover** — exact transitive-closure comparison on small graphs (every
  ordered pair), seeded row sampling above ``exact_threshold`` nodes
  (full reachability rows for a random sample of sources, plus every
  graph edge, which must trivially be covered);
* **W-table ↔ subclusters** — every center listed under ``W(X, Y)`` has a
  non-empty X-labeled F-subcluster *and* Y-labeled T-subcluster; every
  non-empty subcluster pair appears in the W-table; the cluster leaves
  match the clusters recomputed from the stored codes;
* **B+-tree structure** — for the cluster index, the W-table and every
  base-table primary index: sorted unique keys in every node, correct
  child counts and separator bounds, uniform leaf depth, an intact
  left-to-right leaf chain, and a size counter that matches the leaves.

Findings are :class:`~repro.analysis.diagnostics.Diagnostic` records; per
rule, at most ``max_examples`` individual findings are emitted before a
summary line with the total count (a corrupted closure would otherwise
produce one diagnostic per node pair).
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Tuple

from ..db.database import GraphDatabase
from ..graph.traversal import reachable_set
from ..storage.bptree import BPlusTree
from ..storage.snapshot import Snapshot, SnapshotError
from .diagnostics import Diagnostic, Severity

# B+-tree node tags (storage/bptree.py stores nodes as ["L"|"I", ...]);
# the auditor is deliberately white-box, like any fsck.
_LEAF = "L"
_INTERNAL = "I"


class _Reporter:
    """Collects diagnostics, capping per-rule examples with a summary."""

    def __init__(self, max_examples: int) -> None:
        self.max_examples = max_examples
        self.diagnostics: List[Diagnostic] = []
        self._counts: Dict[Tuple[str, str], int] = {}

    def report(
        self,
        rule: str,
        source: str,
        message: str,
        severity: Severity = Severity.ERROR,
    ) -> None:
        key = (rule, source)
        count = self._counts.get(key, 0) + 1
        self._counts[key] = count
        if count <= self.max_examples:
            self.diagnostics.append(
                Diagnostic(rule=rule, severity=severity, message=message,
                           source=source)
            )

    def finish(self) -> List[Diagnostic]:
        for (rule, source), count in sorted(self._counts.items()):
            if count > self.max_examples:
                self.diagnostics.append(
                    Diagnostic(
                        rule=rule,
                        severity=Severity.ERROR,
                        message=(
                            f"... {count - self.max_examples} further "
                            f"{rule} finding(s) suppressed "
                            f"({count} total)"
                        ),
                        source=source,
                    )
                )
        return self.diagnostics


# ----------------------------------------------------------------------
# 2-hop cover
# ----------------------------------------------------------------------
def _audit_cover(
    db: GraphDatabase,
    out: _Reporter,
    exact_threshold: int,
    sample_rows: int,
    seed: int,
) -> None:
    graph = db.graph
    labeling = db.labeling
    n = graph.node_count
    coded = min(len(labeling.out_codes), len(labeling.in_codes))
    if coded < n:
        # e.g. the graph was mutated after the offline phase; every check
        # below would hit uncoded nodes, so report once and stop here
        out.report(
            "index/labeling-size-mismatch",
            "labeling",
            f"graph has {n} node(s) but the 2-hop labeling only codes "
            f"{coded}; rebuild the labeling before trusting reachability",
        )
        return
    if n <= exact_threshold:
        sources = list(graph.nodes())
    else:
        rng = random.Random(seed)
        sources = rng.sample(list(graph.nodes()), min(sample_rows, n))
        # every edge must be covered regardless of which rows we sample
        for u, v in graph.edges():
            if not labeling.reaches(u, v):
                out.report(
                    "index/cover-missing",
                    "labeling",
                    f"edge {u} -> {v} exists but out({u}) ∩ in({v}) = ∅",
                )
    for u in sources:
        truth = reachable_set(graph, u)
        for v in graph.nodes():
            claimed = labeling.reaches(u, v)
            actual = v in truth
            if actual and not claimed:
                out.report(
                    "index/cover-missing",
                    "labeling",
                    f"{u} reaches {v} in the graph but the 2-hop codes "
                    "miss it (not a reachability cover)",
                )
            elif claimed and not actual:
                out.report(
                    "index/cover-spurious",
                    "labeling",
                    f"2-hop codes claim {u} ~> {v} but no such path exists",
                )


# ----------------------------------------------------------------------
# W-table ↔ subcluster agreement
# ----------------------------------------------------------------------
def _audit_wtable(db: GraphDatabase, out: _Reporter) -> None:
    index = db.join_index
    clusters: Dict[int, Tuple[Dict[str, tuple], Dict[str, tuple]]] = {
        center: (f_sub, t_sub) for center, f_sub, t_sub in index.cluster_items()
    }

    for (x_label, y_label), centers in index.wtable_items():
        for center in centers:
            entry = clusters.get(center)
            f_sub = entry[0] if entry else {}
            t_sub = entry[1] if entry else {}
            if entry is None:
                out.report(
                    "index/wtable-stale-center",
                    "w-table",
                    f"W({x_label}, {y_label}) lists center {center} which "
                    "has no cluster leaf at all",
                )
            elif not f_sub.get(x_label) or not t_sub.get(y_label):
                out.report(
                    "index/wtable-stale-center",
                    "w-table",
                    f"W({x_label}, {y_label}) lists center {center} whose "
                    f"{x_label}-F-subcluster or {y_label}-T-subcluster is empty",
                )

    wtable: Dict[Tuple[str, str], frozenset] = {
        pair: frozenset(centers) for pair, centers in index.wtable_items()
    }
    for center, (f_sub, t_sub) in clusters.items():
        for x_label, f_nodes in f_sub.items():
            if not f_nodes:
                continue
            for y_label, t_nodes in t_sub.items():
                if not t_nodes:
                    continue
                if center not in wtable.get((x_label, y_label), frozenset()):
                    out.report(
                        "index/wtable-missing-center",
                        "w-table",
                        f"center {center} joins {x_label} -> {y_label} via "
                        "non-empty subclusters but W"
                        f"({x_label}, {y_label}) does not list it",
                    )

    # cluster leaves must match the clusters recomputed from the codes
    truth = db.labeling.clusters()
    for center, (f_nodes, t_nodes) in truth.items():
        entry = clusters.get(center)
        if entry is None:
            out.report(
                "index/cluster-missing",
                "rjoin-index",
                f"center {center} has clusters in the labeling but no leaf "
                "in the cluster index",
            )
            continue
        stored_f = sorted(n for nodes in entry[0].values() for n in nodes)
        stored_t = sorted(n for nodes in entry[1].values() for n in nodes)
        if stored_f != sorted(f_nodes) or stored_t != sorted(t_nodes):
            out.report(
                "index/cluster-mismatch",
                "rjoin-index",
                f"center {center}: stored F/T-subclusters disagree with the "
                "clusters implied by the stored graph codes",
            )
    for center in set(clusters) - set(truth):
        out.report(
            "index/cluster-spurious",
            "rjoin-index",
            f"cluster index has a leaf for center {center} which appears in "
            "no node's graph code",
        )

    # mislabeled members: every subcluster node must carry its label
    for center, (f_sub, t_sub) in clusters.items():
        for label, nodes in list(f_sub.items()) + list(t_sub.items()):
            for node in nodes:
                if not (0 <= node < db.graph.node_count):
                    out.report(
                        "index/cluster-unknown-node",
                        "rjoin-index",
                        f"center {center}: subcluster node {node} is not a "
                        "graph node",
                    )
                elif db.graph.label(node) != label:
                    out.report(
                        "index/cluster-mislabeled",
                        "rjoin-index",
                        f"center {center}: node {node} sits in the {label} "
                        f"subcluster but is labeled {db.graph.label(node)!r}",
                    )


# ----------------------------------------------------------------------
# B+-tree structure
# ----------------------------------------------------------------------
def check_bptree(
    tree: BPlusTree,
    out: Optional[_Reporter] = None,
    max_examples: int = 10,
) -> List[Diagnostic]:
    """Structural invariants of one B+-tree: ordering, bounds, leaf chain.

    Returns the findings (also accumulated into *out* when supplied so
    :func:`audit_database` can share a reporter).
    """
    reporter = out if out is not None else _Reporter(max_examples)
    source = tree.name
    before = len(reporter.diagnostics)

    leaves_in_order: List[int] = []
    leaf_entries = 0
    leaf_keys: List[Any] = []

    def walk(page_id: int, depth: int, lo: Any, hi: Any) -> None:
        nonlocal leaf_entries
        _, node = tree._load(page_id)  # white-box: auditors read raw nodes
        tag, keys = node[0], node[1]
        if sorted_violation := _keys_unsorted(keys):
            reporter.report(
                "index/bptree-key-order",
                source,
                f"node {page_id}: keys not strictly increasing near "
                f"position {sorted_violation - 1}",
            )
        for key in keys:
            if lo is not None and key < lo:
                reporter.report(
                    "index/bptree-separator-bounds",
                    source,
                    f"node {page_id}: key {key!r} below its subtree's lower "
                    f"bound {lo!r}",
                )
            if hi is not None and key >= hi:
                reporter.report(
                    "index/bptree-separator-bounds",
                    source,
                    f"node {page_id}: key {key!r} at or above its subtree's "
                    f"upper bound {hi!r}",
                )
        if tag == _LEAF:
            if depth != tree.height:
                reporter.report(
                    "index/bptree-leaf-depth",
                    source,
                    f"leaf {page_id} at depth {depth}, expected uniform "
                    f"depth {tree.height}",
                )
            leaves_in_order.append(page_id)
            values = node[2]
            if len(values) != len(keys):
                reporter.report(
                    "index/bptree-arity",
                    source,
                    f"leaf {page_id}: {len(keys)} keys but "
                    f"{len(values)} values",
                )
            leaf_keys.extend(keys)
            if tree.unique:
                leaf_entries += len(keys)
            else:
                leaf_entries += sum(len(v) for v in values)
        elif tag == _INTERNAL:
            children = node[2]
            if len(children) != len(keys) + 1:
                reporter.report(
                    "index/bptree-arity",
                    source,
                    f"internal node {page_id}: {len(keys)} keys but "
                    f"{len(children)} children (expected keys + 1)",
                )
            for pos, child in enumerate(children):
                child_lo = lo if pos == 0 else keys[pos - 1]
                child_hi = hi if pos >= len(keys) else keys[pos]
                walk(child, depth + 1, child_lo, child_hi)
        else:
            reporter.report(
                "index/bptree-corrupt-node",
                source,
                f"node {page_id}: unknown node tag {tag!r}",
            )

    walk(tree._root_id, 1, None, None)

    if _keys_unsorted(leaf_keys):
        reporter.report(
            "index/bptree-key-order",
            source,
            "keys across the leaf level are not globally increasing",
        )
    if leaf_entries != len(tree):
        reporter.report(
            "index/bptree-size-mismatch",
            source,
            f"tree reports {len(tree)} entries but its leaves hold "
            f"{leaf_entries}",
        )

    # leaf chain must visit exactly the leaves, left to right, ending at -1
    chained: List[int] = []
    leaf_id = tree._leftmost_leaf()
    seen = set()
    while leaf_id != -1:
        if leaf_id in seen:
            reporter.report(
                "index/bptree-leaf-chain",
                source,
                f"leaf chain loops back to node {leaf_id}",
            )
            break
        seen.add(leaf_id)
        chained.append(leaf_id)
        _, node = tree._load(leaf_id)
        if node[0] != _LEAF:
            reporter.report(
                "index/bptree-leaf-chain",
                source,
                f"leaf chain reaches non-leaf node {leaf_id}",
            )
            break
        leaf_id = node[3]
    if chained != leaves_in_order and not _keys_unsorted(leaf_keys):
        reporter.report(
            "index/bptree-leaf-chain",
            source,
            f"leaf chain visits {chained} but the tree's left-to-right "
            f"leaves are {leaves_in_order}",
        )

    if out is not None:
        return reporter.diagnostics[before:]
    return reporter.finish()


def _keys_unsorted(keys: List[Any]) -> int:
    """0 when strictly increasing, else 1-based index of the violation."""
    for pos in range(1, len(keys)):
        if not keys[pos - 1] < keys[pos]:
            return pos
    return 0


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def audit_database(
    db: GraphDatabase,
    exact_threshold: int = 300,
    sample_rows: int = 32,
    seed: int = 0,
    max_examples: int = 10,
) -> List[Diagnostic]:
    """Run every invariant audit against *db*; returns all findings.

    ``exact_threshold`` bounds the exact transitive-closure cover check
    (above it, ``sample_rows`` full reachability rows are sampled with
    ``seed`` instead, plus an every-edge check).  An empty return means
    cover, W-table and B+-tree invariants all hold.
    """
    out = _Reporter(max_examples)
    _audit_cover(db, out, exact_threshold, sample_rows, seed)
    _audit_wtable(db, out)
    # snapshot-backed indexes have no trees; the file-level CRC/geometry
    # checks (audit_snapshot) replace the structural tree audit there
    if db.join_index.index_tree is not None:
        check_bptree(db.join_index.index_tree, out)
    if db.join_index.wtable_tree is not None:
        check_bptree(db.join_index.wtable_tree, out)
    for label in db.labels():
        table = db.base_table(label)
        if table.pk_index is not None:
            check_bptree(table.pk_index, out)
            if len(table.pk_index) != len(table):
                out.report(
                    "index/pk-size-mismatch",
                    f"{table.name}.pk",
                    f"primary index holds {len(table.pk_index)} keys but "
                    f"the table has {len(table)} rows",
                )
    return out.finish()


# ----------------------------------------------------------------------
# offline snapshot-file audit
# ----------------------------------------------------------------------
def audit_snapshot(path: str, max_examples: int = 10) -> List[Diagnostic]:
    """Audit a binary snapshot *file* without loading a database.

    :meth:`Snapshot.open` already enforces magic, version, section-table
    geometry and every section's CRC — a failure there becomes a single
    ``snapshot/unreadable`` finding.  On a readable file this decodes
    every column and checks the semantic invariants the lazy read path
    assumes but never re-verifies: code rows and subcluster runs strictly
    increasing, self-membership of every node's codes, the center
    directory sorted, and every W-table or subcluster reference pointing
    at a known center / label id.
    """
    out = _Reporter(max_examples)
    try:
        snapshot = Snapshot.open(path)
    except SnapshotError as exc:
        out.report("snapshot/unreadable", path, str(exc))
        return out.finish()
    try:
        _audit_snapshot_columns(snapshot, out)
    finally:
        snapshot.close()
    return out.finish()


def _audit_snapshot_columns(snapshot: Snapshot, out: _Reporter) -> None:
    source = snapshot.path
    centers = list(snapshot.centers())
    if _keys_unsorted(centers):
        out.report(
            "snapshot/center-order", source,
            "the center directory is not strictly increasing",
        )
    center_set = set(centers)

    for node in range(snapshot.node_count):
        for side, code in (
            ("in", snapshot.in_code_array(node)),
            ("out", snapshot.out_code_array(node)),
        ):
            if _keys_unsorted(list(code)):
                out.report(
                    "snapshot/code-order", source,
                    f"{side}({node}) decodes to a non-increasing run",
                )
            elif node not in set(code):
                out.report(
                    "snapshot/code-missing-self", source,
                    f"{side}({node}) does not contain the node itself",
                )

    label_count = snapshot.label_count
    for position, pair in enumerate(snapshot.wtable_pairs()):
        run = list(snapshot.wtable_centers(position))
        if _keys_unsorted(run):
            out.report(
                "snapshot/wtable-order", source,
                f"W{pair} center run is not strictly increasing",
            )
        for center in run:
            if center not in center_set:
                out.report(
                    "snapshot/wtable-unknown-center", source,
                    f"W{pair} lists center {center} which has no cluster entry",
                )

    for position, center in enumerate(centers):
        f_sub, t_sub = snapshot.subclusters_at(position)
        for side_name, subclusters in (("F", f_sub), ("T", t_sub)):
            for label, nodes in subclusters.items():
                if label not in snapshot.label_names or label_count == 0:
                    out.report(
                        "snapshot/subcluster-unknown-label", source,
                        f"center {center}: {side_name}-subcluster uses "
                        f"unknown label {label!r}",
                    )
                if _keys_unsorted(list(nodes)):
                    out.report(
                        "snapshot/subcluster-order", source,
                        f"center {center}: {side_name}-subcluster for "
                        f"{label!r} is not strictly increasing",
                    )
                for node in nodes:
                    if not 0 <= node < snapshot.node_count:
                        out.report(
                            "snapshot/subcluster-unknown-node", source,
                            f"center {center}: subcluster node {node} is "
                            "outside the snapshot's node range",
                        )
