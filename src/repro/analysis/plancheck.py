"""plancheck — deep static verification of query plans (no execution).

:class:`~repro.query.algebra.Plan` already has a ``validate()`` that raises
on the first malformed step; this pass is the thorough counterpart the
optimizer refactors lean on: it simulates the binding state of the whole
left-deep pipeline, reports *every* violation as a structured
:class:`~repro.analysis.diagnostics.Diagnostic`, and — when given the
database the plan will run against — cross-checks the catalog: every
referenced label must have a base table and every R-join's ``W(X, Y)``
entry is probed (an empty entry is a warning: the plan is sound but its
result is provably empty).

Checked invariants (paper Alg. 2 / Section 4):

* left-deep shape — exactly one seed step, at position 0;
* variables bound before use (filter scans, selection endpoints);
* every pattern condition covered exactly once, by a SeedJoin, a
  Filter+Fetch pair, or a Selection — nothing double-evaluated, nothing
  dropped;
* ``Side`` consistency — each FetchStep consumes a pending filter with the
  *same* (condition, side) key; a filter on the mirror side is reported as
  a side mismatch, not a missing filter;
* no variable re-binding — a Fetch whose target column already exists
  would collide in the temporal table's schema;
* catalog existence of every referenced label table and W-table entry
  (only when a database is supplied).

Multiway (WCOJ) plans are first-class: a plan seeded by a
:class:`~repro.query.algebra.MultiwaySeed` is simulated as a variable
elimination order — every later step must be a ``MultiwayStep`` (mixing
the two plan families is ``plan/mixed-paradigm``), every constraint must
be keyed to bind exactly the step's variable (``plan/multiway-key``),
scan an already-bound endpoint and cover its condition exactly once; the
W-table and coverage checks are shared with the left-deep path.
"""

from __future__ import annotations

from typing import List, Optional, Set, TYPE_CHECKING

from ..query.algebra import (
    FetchStep,
    FilterKey,
    FilterStep,
    MultiwaySeed,
    MultiwayStep,
    Plan,
    SeedJoin,
    SeedScan,
    SelectionStep,
    Side,
)
from ..query.pattern import Condition
from .diagnostics import Diagnostic, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..db.database import GraphDatabase


class PlanVerificationError(RuntimeError):
    """Raised by ``verify=True`` execution when plancheck finds errors.

    Carries the full diagnostic list so callers can render or log every
    violation, not just the first.
    """

    def __init__(self, diagnostics: List[Diagnostic]) -> None:
        from .diagnostics import format_report

        self.diagnostics = diagnostics
        super().__init__(
            "plan failed static verification:\n" + format_report(diagnostics)
        )


def _other(side: Side) -> Side:
    return Side.IN if side is Side.OUT else Side.OUT


class _PlanChecker:
    """Single-pass binding simulation that accumulates diagnostics."""

    def __init__(self, plan: Plan, db: Optional["GraphDatabase"], source: str):
        self.plan = plan
        self.pattern = plan.pattern
        self.db = db
        self.source = source
        self.diagnostics: List[Diagnostic] = []
        self.bound: Set[str] = set()
        self.pending: Set[FilterKey] = set()
        self.done: Set[Condition] = set()
        # conditions the plan references (for the coverage-count report)
        self.known_conditions = set(self.pattern.conditions)

    # ------------------------------------------------------------------
    def report(
        self,
        rule: str,
        message: str,
        step: Optional[int] = None,
        severity: Severity = Severity.ERROR,
    ) -> None:
        self.diagnostics.append(
            Diagnostic(
                rule=rule,
                severity=severity,
                message=message,
                source=self.source,
                step=step,
            )
        )

    # ------------------------------------------------------------------
    def _check_condition_known(self, condition: Condition, step: int) -> None:
        if condition not in self.known_conditions:
            self.report(
                "plan/foreign-condition",
                f"condition {condition} is not part of the pattern "
                f"({', '.join(map(str, self.pattern.conditions))})",
                step,
            )

    def _mark_done(self, condition: Condition, step: int) -> None:
        if condition in self.done:
            self.report(
                "plan/double-covered",
                f"condition {condition} is evaluated more than once",
                step,
            )
        self.done.add(condition)

    def _check_wtable(self, condition: Condition, step: int) -> None:
        """With a database: warn when the R-join's W(X, Y) entry is empty."""
        if self.db is None:
            return
        x_label, y_label = self.pattern.condition_labels(condition)
        known = self.db.labels()
        if x_label not in known or y_label not in known:
            return  # unknown-label error already reported in the preamble
        if not self.db.join_index.centers(x_label, y_label):
            self.report(
                "plan/empty-wtable-entry",
                f"W({x_label}, {y_label}) has no centers: the R-join for "
                f"{condition} is provably empty",
                step,
                severity=Severity.WARNING,
            )

    # ------------------------------------------------------------------
    # per-step handlers
    # ------------------------------------------------------------------
    def _seed(self, step_obj, step: int) -> None:
        if isinstance(step_obj, SeedScan):
            self.bound.add(step_obj.var)
            if step_obj.var not in self.pattern.variables:
                self.report(
                    "plan/foreign-condition",
                    f"seed scans unknown variable {step_obj.var!r}",
                    step,
                )
        else:  # SeedJoin
            condition = step_obj.condition
            self._check_condition_known(condition, step)
            self.bound.update(condition)
            self._mark_done(condition, step)
            self._check_wtable(condition, step)

    def _filter(self, step_obj: FilterStep, step: int) -> None:
        scanned = {side.scanned_var(cond) for cond, side in step_obj.keys}
        if len(scanned) != 1:
            # unreachable through the public constructor (its __post_init__
            # rejects mixed scans) but checkable on hand-forged plans
            self.report(
                "plan/mixed-filter",
                f"shared filter scans several variables {sorted(scanned)}; "
                "Remark 3.1 allows one scanned column per shared Filter",
                step,
            )
        for var in scanned:
            if var not in self.bound:
                self.report(
                    "plan/unbound-variable",
                    f"filter scans variable {var!r} before any step binds it",
                    step,
                )
        for key in step_obj.keys:
            condition, side = key
            self._check_condition_known(condition, step)
            if key in self.pending or (condition, _other(side)) in self.pending:
                self.report(
                    "plan/double-covered",
                    f"condition {condition} is filtered twice",
                    step,
                )
            elif condition in self.done:
                self.report(
                    "plan/double-covered",
                    f"condition {condition} is filtered after being evaluated",
                    step,
                )
            if side.fetched_var(condition) in self.bound:
                self.report(
                    "plan/rebind",
                    f"filter for {condition} [{side.value}] targets variable "
                    f"{side.fetched_var(condition)!r} which is already bound; "
                    "use a SelectionStep for conditions between bound variables",
                    step,
                )
            self.pending.add(key)
            self._check_wtable(condition, step)

    def _fetch(self, step_obj: FetchStep, step: int) -> None:
        key: FilterKey = (step_obj.condition, step_obj.side)
        mirror: FilterKey = (step_obj.condition, _other(step_obj.side))
        self._check_condition_known(step_obj.condition, step)
        if key in self.pending:
            self.pending.discard(key)
        elif mirror in self.pending:
            self.report(
                "plan/side-mismatch",
                f"fetch for {step_obj.condition} uses side "
                f"{step_obj.side.value!r} but its filter ran with side "
                f"{_other(step_obj.side).value!r}",
                step,
            )
            self.pending.discard(mirror)
        else:
            self.report(
                "plan/fetch-without-filter",
                f"fetch for {step_obj.condition} [{step_obj.side.value}] has "
                "no pending filter (HPSJ+ requires Filter before Fetch)",
                step,
            )
        new_var = step_obj.side.fetched_var(step_obj.condition)
        if new_var in self.bound:
            self.report(
                "plan/rebind",
                f"fetch for {step_obj.condition} re-binds variable "
                f"{new_var!r}; the temporal table would get a duplicate column",
                step,
            )
        self.bound.add(new_var)
        self._mark_done(step_obj.condition, step)

    def _multiway_seed(self, step_obj: MultiwaySeed, step: int) -> None:
        if step_obj.var not in self.pattern.variables:
            self.report(
                "plan/foreign-condition",
                f"multiway seed binds unknown variable {step_obj.var!r}",
                step,
            )
        self.bound.add(step_obj.var)
        for condition, side in step_obj.constraints:
            self._check_condition_known(condition, step)
            if side.fetched_var(condition) != step_obj.var:
                self.report(
                    "plan/multiway-key",
                    f"seed constraint {condition} [{side.value}] projects "
                    f"onto {side.fetched_var(condition)!r}, not the seed "
                    f"variable {step_obj.var!r}",
                    step,
                )
            # seed constraints are sound projection pruning, not coverage:
            # the condition is enforced at its later endpoint's step
            self._check_wtable(condition, step)

    def _multiway_step(self, step_obj: MultiwayStep, step: int) -> None:
        if step_obj.var in self.bound:
            self.report(
                "plan/rebind",
                f"multiway step re-binds variable {step_obj.var!r}; each "
                "elimination order binds every variable exactly once",
                step,
            )
        for condition, side in step_obj.constraints:
            self._check_condition_known(condition, step)
            if side.fetched_var(condition) != step_obj.var:
                self.report(
                    "plan/multiway-key",
                    f"constraint {condition} [{side.value}] extends "
                    f"{side.fetched_var(condition)!r}, not the step's "
                    f"variable {step_obj.var!r}",
                    step,
                )
            scanned = side.scanned_var(condition)
            if scanned not in self.bound:
                self.report(
                    "plan/unbound-variable",
                    f"multiway constraint {condition} scans variable "
                    f"{scanned!r} before any step binds it",
                    step,
                )
            self._mark_done(condition, step)
            self._check_wtable(condition, step)
        self.bound.add(step_obj.var)

    def _selection(self, step_obj: SelectionStep, step: int) -> None:
        condition = step_obj.condition
        self._check_condition_known(condition, step)
        for var in condition:
            if var not in self.bound:
                self.report(
                    "plan/unbound-variable",
                    f"selection on {condition} reads variable {var!r} "
                    "before any step binds it",
                    step,
                )
        if condition in {cond for cond, _ in self.pending}:
            self.report(
                "plan/double-covered",
                f"selection on {condition} duplicates its pending filter "
                "(the matching fetch will evaluate it)",
                step,
            )
        self._mark_done(condition, step)

    # ------------------------------------------------------------------
    def run(self) -> List[Diagnostic]:
        if self.db is not None:
            known = set(self.db.labels())
            for var in self.pattern.variables:
                label = self.pattern.label(var)
                if label not in known:
                    self.report(
                        "plan/unknown-label",
                        f"variable {var!r} uses label {label!r} which has no "
                        f"base table (known: {sorted(known)})",
                    )
        steps = self.plan.steps
        if not steps:
            self.report("plan/empty", "plan has no steps")
            return self.diagnostics
        if isinstance(steps[0], MultiwaySeed):
            self._run_multiway(steps)
            self._final_checks()
            return self.diagnostics
        for index, step_obj in enumerate(steps):
            if isinstance(step_obj, (MultiwaySeed, MultiwayStep)):
                self.report(
                    "plan/mixed-paradigm",
                    f"{type(step_obj).__name__} at position {index} inside a "
                    "left-deep plan; multiway steps are only legal in a plan "
                    "seeded by MultiwaySeed",
                    index,
                )
            elif isinstance(step_obj, (SeedScan, SeedJoin)):
                if index == 0:
                    self._seed(step_obj, index)
                else:
                    self.report(
                        "plan/not-left-deep",
                        f"seed step {step_obj} at position {index}; a "
                        "left-deep plan has exactly one seed, at position 0",
                        index,
                    )
            elif index == 0:
                self.report(
                    "plan/no-seed",
                    f"plan starts with {type(step_obj).__name__}; the first "
                    "step must seed the temporal table (SeedScan or SeedJoin)",
                    index,
                )
                # keep simulating so later steps still get precise checks
                self._dispatch(step_obj, index)
            else:
                self._dispatch(step_obj, index)
        self._final_checks()
        return self.diagnostics

    def _run_multiway(self, steps) -> None:
        """Simulate a variable elimination order (MultiwaySeed plan)."""
        self._multiway_seed(steps[0], 0)
        for index, step_obj in enumerate(steps[1:], start=1):
            if isinstance(step_obj, MultiwayStep):
                self._multiway_step(step_obj, index)
            else:
                self.report(
                    "plan/mixed-paradigm",
                    f"{type(step_obj).__name__} at position {index} inside a "
                    "multiway plan; after a MultiwaySeed every step must be "
                    "a MultiwayStep",
                    index,
                )

    def _final_checks(self) -> None:
        for condition in self.pattern.conditions:
            if condition not in self.done:
                self.report(
                    "plan/uncovered-condition",
                    f"condition {condition} is never evaluated",
                )
        for var in self.pattern.variables:
            if var not in self.bound:
                self.report(
                    "plan/never-bound",
                    f"variable {var!r} is never bound by any step",
                )
        for key in sorted(self.pending, key=str):
            condition, side = key
            self.report(
                "plan/unfetched-filter",
                f"filter for {condition} [{side.value}] is never fetched; "
                "its centers column would survive to the final table",
            )

    def _dispatch(self, step_obj, index: int) -> None:
        if isinstance(step_obj, FilterStep):
            self._filter(step_obj, index)
        elif isinstance(step_obj, FetchStep):
            self._fetch(step_obj, index)
        elif isinstance(step_obj, SelectionStep):
            self._selection(step_obj, index)
        else:
            self.report(
                "plan/unknown-step",
                f"unrecognized plan step {step_obj!r}",
                index,
            )


def check_plan(
    plan: Plan,
    db: Optional["GraphDatabase"] = None,
    source: str = "plan",
) -> List[Diagnostic]:
    """Statically verify *plan*; returns every violation found.

    With ``db`` supplied the catalog checks run too (label tables exist,
    W-table entries are non-empty).  An empty return means the plan passes
    every structural invariant this pass knows about.
    """
    return _PlanChecker(plan, db, source).run()
