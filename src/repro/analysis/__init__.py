"""Static verification layer: plan checker, index auditor, project lint.

Three passes over three layers, one diagnostic format:

* :func:`check_plan` — verify a :class:`~repro.query.algebra.Plan`
  statically (left-deep shape, binding order, exactly-once condition
  coverage, Filter/Fetch ``Side`` consistency, catalog existence);
* :func:`audit_database` — verify a built
  :class:`~repro.db.database.GraphDatabase` (2-hop cover correctness,
  W-table ↔ F/T-subcluster agreement, B+-tree structure);
* :func:`run_lint` — project-specific AST rules over source files
  (storage-layer bypasses from ``query/``, mutable defaults, enum
  identity comparisons, bare excepts, unused imports);
* :func:`deep_check` — the whole-project analyzer (``repro check
  --deep``): a call graph with worker-boundary detection
  (:mod:`~repro.analysis.callgraph`), per-function dataflow summaries
  (:mod:`~repro.analysis.dataflow`), and four rule packs — worker
  shared-state races (:mod:`~repro.analysis.racecheck`),
  cache-generation discipline and mmap view lifetime
  (:mod:`~repro.analysis.contracts`), and lock discipline for the
  internally synchronized concurrent structures
  (:mod:`~repro.analysis.concurrency`).  Its runtime twin is sanitize
  mode (:mod:`~repro.analysis.sanitizer`), armed by
  ``ExecutionContext(sanitize=True)`` or ``REPRO_SANITIZE=1``.

All passes return lists of :class:`Diagnostic`; :func:`has_errors` is the
gate condition used by ``repro check`` and CI.
"""

from .callgraph import Project, build_project
from .concurrency import check_concurrency
from .contracts import check_contracts, check_mmap, deep_check
from .diagnostics import (
    Diagnostic,
    Severity,
    errors,
    format_report,
    has_errors,
    warnings,
)
from .indexaudit import audit_database, audit_snapshot, check_bptree
from .lint import lint_paths, lint_project, lint_source
from .plancheck import PlanVerificationError, check_plan
from .racecheck import check_races
from .sanitizer import SanitizerError, sanitize_enabled

#: the conventional entry point for linting arbitrary paths
run_lint = lint_paths

__all__ = [
    "Diagnostic",
    "PlanVerificationError",
    "Project",
    "SanitizerError",
    "Severity",
    "audit_database",
    "audit_snapshot",
    "build_project",
    "check_bptree",
    "check_concurrency",
    "check_contracts",
    "check_mmap",
    "check_plan",
    "check_races",
    "deep_check",
    "errors",
    "format_report",
    "has_errors",
    "lint_paths",
    "lint_project",
    "lint_source",
    "run_lint",
    "sanitize_enabled",
    "warnings",
]
