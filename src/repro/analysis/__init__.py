"""Static verification layer: plan checker, index auditor, project lint.

Three passes over three layers, one diagnostic format:

* :func:`check_plan` — verify a :class:`~repro.query.algebra.Plan`
  statically (left-deep shape, binding order, exactly-once condition
  coverage, Filter/Fetch ``Side`` consistency, catalog existence);
* :func:`audit_database` — verify a built
  :class:`~repro.db.database.GraphDatabase` (2-hop cover correctness,
  W-table ↔ F/T-subcluster agreement, B+-tree structure);
* :func:`run_lint` — project-specific AST rules over source files
  (storage-layer bypasses from ``query/``, mutable defaults, enum
  identity comparisons, bare excepts, unused imports).

All passes return lists of :class:`Diagnostic`; :func:`has_errors` is the
gate condition used by ``repro check`` and CI.
"""

from .diagnostics import (
    Diagnostic,
    Severity,
    errors,
    format_report,
    has_errors,
    warnings,
)
from .indexaudit import audit_database, audit_snapshot, check_bptree
from .lint import lint_paths, lint_project, lint_source
from .plancheck import PlanVerificationError, check_plan

#: the conventional entry point for linting arbitrary paths
run_lint = lint_paths

__all__ = [
    "Diagnostic",
    "PlanVerificationError",
    "Severity",
    "audit_database",
    "audit_snapshot",
    "check_bptree",
    "check_plan",
    "errors",
    "format_report",
    "has_errors",
    "lint_paths",
    "lint_project",
    "lint_source",
    "run_lint",
    "warnings",
]
