"""dataflow — per-function summaries for the deep static checker.

For every function found by :mod:`repro.analysis.callgraph` this module
computes a :class:`FunctionSummary`: the facts the rule packs need,
expressed over *origins* rather than raw AST nodes.

An :class:`Origin` names where a value came from, as a root kind plus an
attribute chain::

    self.ctx.center_cache   ->  Origin("self",   chain=("ctx", "center_cache"))
    db.join_index           ->  Origin("param",  "db", ("join_index",))
    _PAIR_IDS               ->  Origin("global", "_PAIR_IDS")
    CenterCache()           ->  Origin("new",    "repro...CenterCache")
    snap._raw(off, n)       ->  Origin("view")          # raw mmap slice
    snap.wtable_view(pos)   ->  Origin("blessed-view")  # blessed API slice
    anything_else()         ->  Origin("call")          # untracked

The two view kinds are confined differently by ``mmap/*``: raw slices
(``VIEW_PRODUCERS``) must stay inside the storage layer, while blessed
slices (``BLESSED_VIEW_PRODUCERS`` — the read-only view API the
mmap-native execution path consumes) may additionally be returned or
yielded by the allowlisted consumer layers.  Storing either kind on a
heap object is always an escape: the slice dies with the mapping.

Only ``param``/``self``/``global`` roots are *tracked*: they may alias
state owned by a caller, which is what the race rules care about.  A
``new``/``call`` origin is by construction local to the function (the
documented false negative: a callee that returns shared state launders
it — accepted, because the alternative floods worker code with false
positives on every constructor).

The summary records:

* **attribute writes** and **mutating method calls** with the receiver's
  origin (``race/*`` and ``contract/generation-*`` rules);
* **call facts** — resolved callees with edge kinds, argument origins,
  and the receiver origin/type for method calls (``callgraph`` builds
  its edges from these; ``contract/cache-*`` scans them for ``sync`` and
  cache reads);
* **escapes** — returns/yields/stores of tracked or view-kind values
  (``mmap/*`` rules);
* **worker submissions** — ``pool.submit(fn, ...)`` and
  ``Executor(initializer=fn)`` references that mark *fn* as a worker
  entry point.

The walk is a two-pass abstract interpretation over the function body:
pass one only populates the local environment (so uses before a loop's
rebinding still see the binding), pass two records facts.  Nested
``def``/``lambda`` bodies are skipped (documented imprecision), and
calls on receivers of unknown type fall back to name-matched *dynamic*
edges unless the method name is a ubiquitous builtin-collection name.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .callgraph import (
    EDGE_DIRECT,
    EDGE_DYNAMIC,
    EDGE_METHOD,
    FunctionInfo,
    Project,
    _annotation_class_name,
    _attr_chain,
)

#: method names treated as in-place mutation of the receiver
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "discard",
        "clear",
        "pop",
        "popitem",
        "setdefault",
        "update",
        "add",
        "sort",
        "reverse",
        "__setitem__",
    }
)

#: ``Snapshot`` methods whose result is a raw mmap-backed view
VIEW_PRODUCERS = frozenset({"_raw", "_ints", "node_label_ids", "centers"})

#: the blessed zero-copy view API: ``Snapshot``'s read-only accessors
#: plus the delegating accessors on the database/labeling/join-index
#: layers that forward to them (the mmap-native read path)
BLESSED_VIEW_PRODUCERS = frozenset(
    {
        # Snapshot (and the GraphDatabase / TwoHopLabeling delegates)
        "in_code_view",
        "out_code_view",
        "wtable_view",
        "subcluster_run_view",
        "subcluster_views_at",
        "extent_view",
        # SnapshotRJoinIndex delegates
        "centers_view",
        "get_ft_views",
        "subcluster_view",
    }
)

#: classes whose blessed view methods hand out snapshot slices
BLESSED_VIEW_CLASSES = frozenset(
    {"Snapshot", "GraphDatabase", "TwoHopLabeling", "SnapshotRJoinIndex"}
)

#: builtin-collection method names excluded from the dynamic name-match
#: fallback — linking every ``d.get(...)`` to every project ``get`` method
#: would drown reachability in noise without adding real edges
DYNAMIC_SKIP = frozenset(
    {
        "get",
        "items",
        "keys",
        "values",
        "copy",
        "index",
        "count",
        "join",
        "split",
        "strip",
        "format",
        "encode",
        "decode",
        "read",
        "readinto",
        "write",
        "seek",
        "tell",
        "submit",
        "result",
        "done",
        "shutdown",
        "release",
        "acquire",
    }
    | MUTATING_METHODS
)

#: origin root kinds that may alias caller-owned state
TRACKED_KINDS = frozenset({"param", "self", "global"})

#: origin root kinds an attribute chain may extend
_EXTENDABLE_KINDS = frozenset({"param", "self", "global", "new"})


@dataclass(frozen=True)
class Origin:
    """Where a value came from: a root kind plus an attribute chain."""

    kind: str
    name: str = ""
    chain: Tuple[str, ...] = ()

    def extend(self, attr: str) -> "Origin":
        return Origin(self.kind, self.name, self.chain + (attr,))

    @property
    def tracked(self) -> bool:
        return self.kind in TRACKED_KINDS

    def describe(self) -> str:
        root = {"self": "self", "global": self.name, "param": self.name}.get(
            self.kind, self.kind
        )
        return ".".join([root] + list(self.chain))


UNKNOWN = Origin("unknown")
VIEW = Origin("view")
BLESSED_VIEW = Origin("blessed-view")

#: origin kinds naming an mmap-backed slice (either confinement regime)
VIEW_KINDS = frozenset({"view", "blessed-view"})

#: (origin, resolved class qualname or None)
Value = Tuple[Origin, Optional[str]]

_UNKNOWN_VALUE: Value = (UNKNOWN, None)


@dataclass(frozen=True)
class AttrWrite:
    """``receiver.attr = ...`` (or ``+=``/``del``) inside the function."""

    origin: Origin
    attr: str
    lineno: int
    receiver_type: Optional[str] = None


@dataclass(frozen=True)
class MutCall:
    """An in-place mutation: ``receiver.append(...)`` / ``receiver[k] = v``."""

    origin: Origin
    method: str
    lineno: int
    receiver_type: Optional[str] = None


@dataclass(frozen=True)
class Escape:
    """A tracked or view value leaving the function's frame."""

    how: str  # "return" | "yield" | "store" | "global-store"
    origin: Origin
    lineno: int
    detail: str = ""  # target attribute for stores


@dataclass(frozen=True)
class GlobalWrite:
    """Rebinding of a module global (requires a ``global`` declaration)."""

    name: str
    lineno: int


@dataclass(frozen=True)
class CallFact:
    """One call site with resolved callees and argument origins."""

    lineno: int
    col: int
    method: Optional[str]  # attribute name for obj.m(), else None
    receiver: Optional[Origin]
    receiver_type: Optional[str]
    callees: Tuple[Tuple[str, str], ...]  # (qualname, edge kind)
    args: Tuple[Origin, ...]
    kwargs: Tuple[Tuple[str, Origin], ...]


@dataclass
class FunctionSummary:
    """Everything the rule packs need to know about one function."""

    function: str
    calls: List[CallFact] = field(default_factory=list)
    attr_writes: List[AttrWrite] = field(default_factory=list)
    mut_calls: List[MutCall] = field(default_factory=list)
    escapes: List[Escape] = field(default_factory=list)
    global_writes: List[GlobalWrite] = field(default_factory=list)
    #: (submitted function qualname, "submit" | "initializer", lineno)
    submissions: List[Tuple[str, str, int]] = field(default_factory=list)


class _Summarizer:
    """Two-pass abstract interpreter over one function body."""

    def __init__(self, project: Project, function: FunctionInfo) -> None:
        self.project = project
        self.function = function
        self.module = project.modules.get(function.module)
        self.summary = FunctionSummary(function=function.qualname)
        self.env: Dict[str, Value] = {}
        self.declared_globals: Set[str] = set()
        self.recording = False
        # keyed by node identity: chained calls (`pool.submit(f).result()`)
        # share a start position, so (lineno, col) would drop the inner one
        self._seen_calls: Set[int] = set()
        self._bind_params()

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def _bind_params(self) -> None:
        args = self.function.node.args
        nodes = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        for index, arg in enumerate(nodes):
            if index == 0 and self.function.is_method and arg.arg == "self":
                self.env[arg.arg] = (
                    Origin("self", "self"),
                    self.function.class_qualname,
                )
                continue
            self.env[arg.arg] = (
                Origin("param", arg.arg),
                self._class_from_annotation(arg.annotation),
            )
        for star in (args.vararg, args.kwarg):
            if star is not None:
                self.env[star.arg] = (Origin("param", star.arg), None)

    def _class_from_annotation(self, node: Optional[ast.expr]) -> Optional[str]:
        name = _annotation_class_name(node)
        if name is None or self.module is None:
            return None
        info = self.project.resolve_class(self.module.name, name)
        return info.qualname if info is not None else None

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def run(self) -> FunctionSummary:
        self._exec_block(self.function.node.body)
        self.recording = True
        self._seen_calls.clear()
        self._exec_block(self.function.node.body)
        return self.summary

    def _exec_block(self, statements: List[ast.stmt]) -> None:
        for statement in statements:
            self._exec_stmt(statement)

    def _exec_stmt(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            self.env[node.name] = _UNKNOWN_VALUE  # nested bodies skipped
        elif isinstance(node, ast.Assign):
            value = self._value_of(node.value)
            for target in node.targets:
                self._assign(target, value, node.value)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                value = self._value_of(node.value)
            else:
                value = (UNKNOWN, self._class_from_annotation(node.annotation))
            self._assign(node.target, value, node.value)
        elif isinstance(node, ast.AugAssign):
            self._walk_calls(node.value)
            self._assign(node.target, _UNKNOWN_VALUE, None, augmented=True)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                value = self._value_of(node.value)
                self._record_escape("return", value[0], node.lineno)
        elif isinstance(node, ast.Expr):
            inner = node.value
            if isinstance(inner, (ast.Yield, ast.YieldFrom)) and inner.value is not None:
                value = self._value_of(inner.value)
                self._record_escape("yield", value[0], node.lineno)
            else:
                self._walk_calls(inner)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self._walk_calls(node.iter)
            self._bind_unknown(node.target)
            self._exec_block(node.body)
            self._exec_block(node.orelse)
        elif isinstance(node, ast.While):
            self._walk_calls(node.test)
            self._exec_block(node.body)
            self._exec_block(node.orelse)
        elif isinstance(node, ast.If):
            self._walk_calls(node.test)
            self._exec_block(node.body)
            self._exec_block(node.orelse)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                value = self._value_of(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, value, item.context_expr)
            self._exec_block(node.body)
        elif isinstance(node, ast.Try):
            self._exec_block(node.body)
            for handler in node.handlers:
                if handler.name:
                    self.env[handler.name] = _UNKNOWN_VALUE
                self._exec_block(handler.body)
            self._exec_block(node.orelse)
            self._exec_block(node.finalbody)
        elif isinstance(node, ast.Global):
            self.declared_globals.update(node.names)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Attribute):
                    base = self._value_of(target.value)
                    if self.recording:
                        self.summary.attr_writes.append(
                            AttrWrite(base[0], target.attr, node.lineno, base[1])
                        )
                elif isinstance(target, ast.Subscript):
                    base = self._value_of(target.value)
                    if self.recording and base[0].tracked:
                        self.summary.mut_calls.append(
                            MutCall(base[0], "__delitem__", node.lineno, base[1])
                        )
        else:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._walk_calls(child)

    # ------------------------------------------------------------------
    # assignment targets
    # ------------------------------------------------------------------
    def _assign(
        self,
        target: ast.expr,
        value: Value,
        value_node: Optional[ast.expr],
        augmented: bool = False,
    ) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.declared_globals:
                if self.recording:
                    self.summary.global_writes.append(
                        GlobalWrite(target.id, target.lineno)
                    )
                    if value[0].kind in VIEW_KINDS:
                        self._record_escape(
                            "global-store", value[0], target.lineno, target.id
                        )
                self.env[target.id] = (Origin("global", target.id), value[1])
            elif not augmented:
                self.env[target.id] = value
        elif isinstance(target, ast.Attribute):
            base = self._value_of(target.value)
            if self.recording:
                self.summary.attr_writes.append(
                    AttrWrite(base[0], target.attr, target.lineno, base[1])
                )
                if value[0].kind in VIEW_KINDS and base[0].tracked:
                    self._record_escape(
                        "store", value[0], target.lineno, target.attr
                    )
        elif isinstance(target, ast.Subscript):
            base = self._value_of(target.value)
            self._walk_calls(target.slice)
            if self.recording:
                if base[0].tracked:
                    self.summary.mut_calls.append(
                        MutCall(base[0], "__setitem__", target.lineno, base[1])
                    )
                if value[0].kind in VIEW_KINDS and base[0].tracked:
                    self._record_escape(
                        "store", value[0], target.lineno, "[]"
                    )
        elif isinstance(target, (ast.Tuple, ast.List)):
            elements: List[Optional[ast.expr]]
            if isinstance(value_node, (ast.Tuple, ast.List)) and len(
                value_node.elts
            ) == len(target.elts):
                elements = list(value_node.elts)
            else:
                elements = [None] * len(target.elts)
            for element_target, element_node in zip(target.elts, elements):
                if element_node is not None:
                    self._assign(
                        element_target, self._value_of(element_node), element_node
                    )
                else:
                    self._assign(element_target, _UNKNOWN_VALUE, None)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, _UNKNOWN_VALUE, None)

    def _bind_unknown(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = _UNKNOWN_VALUE
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_unknown(element)
        elif isinstance(target, ast.Starred):
            self._bind_unknown(target.value)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def _value_of(self, node: ast.expr) -> Value:
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            if self.module is not None and node.id in self.module.globals:
                return (Origin("global", node.id), None)
            return _UNKNOWN_VALUE
        if isinstance(node, ast.Attribute):
            base = self._value_of(node.value)
            origin = (
                base[0].extend(node.attr)
                if base[0].kind in _EXTENDABLE_KINDS
                else UNKNOWN
            )
            attr_type = (
                self.project.attr_type(base[1], node.attr)
                if base[1] is not None
                else None
            )
            return (origin, attr_type)
        if isinstance(node, ast.Call):
            return self._process_call(node)
        if isinstance(node, ast.Subscript):
            base = self._value_of(node.value)
            self._walk_calls(node.slice)
            if base[0].kind == "view":
                return (VIEW, None)
            if base[0].kind == "blessed-view":
                # indexing a blessed container (e.g. the F/T dicts of
                # subcluster_views_at) still yields a blessed slice
                return (BLESSED_VIEW, None)
            return _UNKNOWN_VALUE
        if isinstance(node, ast.BoolOp) and node.values:
            values = [self._value_of(value) for value in node.values]
            for value in values:
                if value[0].kind != "unknown":
                    return value
            return _UNKNOWN_VALUE
        if isinstance(node, ast.IfExp):
            self._walk_calls(node.test)
            value = self._value_of(node.body)
            self._walk_calls(node.orelse)
            return value
        if isinstance(node, ast.Await):
            return self._value_of(node.value)
        if isinstance(node, ast.Starred):
            return self._value_of(node.value)
        if isinstance(node, ast.NamedExpr):
            value = self._value_of(node.value)
            self._assign(node.target, value, node.value)
            return value
        self._walk_calls(node)
        return _UNKNOWN_VALUE

    def _walk_calls(self, node: ast.expr) -> None:
        """Record facts for every call nested anywhere in an expression."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._process_call(sub)

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------
    def _process_call(self, node: ast.Call) -> Value:
        key = id(node)
        already_seen = key in self._seen_calls
        self._seen_calls.add(key)

        func = node.func
        callees: List[Tuple[str, str]] = []
        method: Optional[str] = None
        receiver: Optional[Origin] = None
        receiver_type: Optional[str] = None
        result: Value = (Origin("call"), None)

        if isinstance(func, ast.Name):
            target = (
                self.project.resolve_name(self.module.name, func.id)
                if self.module is not None
                else None
            )
            if target in self.project.functions:
                callees.append((target, EDGE_DIRECT))
                result = (Origin("call"), self._return_type(target))
            elif target in self.project.classes:
                callees.extend(self._constructor_edges(target))
                result = (Origin("new", target), target)
        elif isinstance(func, ast.Attribute):
            method = func.attr
            receiver, receiver_type = self._value_of(func.value)
            if receiver_type is not None:
                for impl in sorted(
                    self.project.resolve_method(receiver_type, method)
                ):
                    callees.append((impl, EDGE_METHOD))
            if not callees:
                callees.extend(self._dotted_edges(func))
            if not callees and method not in DYNAMIC_SKIP:
                for impl in sorted(self.project.method_index.get(method, ())):
                    callees.append((impl, EDGE_DYNAMIC))
            typed = [c for c, kind in callees if kind != EDGE_DYNAMIC]
            if len(typed) == 1:
                if typed[0] in self.project.classes:
                    result = (Origin("new", typed[0]), typed[0])
                else:
                    result = (Origin("call"), self._return_type(typed[0]))
            if (
                receiver_type is not None
                and method in VIEW_PRODUCERS
                and self._is_snapshot(receiver_type)
            ):
                result = (VIEW, None)
            elif (
                receiver_type is not None
                and method in BLESSED_VIEW_PRODUCERS
                and self._is_view_provider(receiver_type)
            ):
                result = (BLESSED_VIEW, None)
        else:
            self._walk_calls(func)

        args = tuple(self._value_of(arg)[0] for arg in node.args)
        kwargs = tuple(
            (kw.arg, self._value_of(kw.value)[0])
            for kw in node.keywords
            if kw.arg is not None
        )
        for kw in node.keywords:
            if kw.arg is None:  # **kwargs forwarding
                self._walk_calls(kw.value)

        if self.recording and not already_seen:
            self.summary.calls.append(
                CallFact(
                    lineno=node.lineno,
                    col=node.col_offset,
                    method=method,
                    receiver=receiver,
                    receiver_type=receiver_type,
                    callees=tuple(callees),
                    args=args,
                    kwargs=kwargs,
                )
            )
            if (
                method in MUTATING_METHODS
                and receiver is not None
                and receiver.tracked
            ):
                self.summary.mut_calls.append(
                    MutCall(receiver, method, node.lineno, receiver_type)
                )
            self._record_submissions(node, method)
        return result

    def _constructor_edges(self, class_qualname: str) -> List[Tuple[str, str]]:
        edges: List[Tuple[str, str]] = []
        for name in ("__init__", "__post_init__"):
            for info in self.project.mro(class_qualname):
                impl = info.methods.get(name)
                if impl is not None:
                    edges.append((impl, EDGE_METHOD))
                    break
        return edges

    def _dotted_edges(self, func: ast.Attribute) -> List[Tuple[str, str]]:
        """``module_alias.func(...)`` / ``Class.method(...)`` resolution."""
        chain = _attr_chain(func)
        if not chain or self.module is None:
            return []
        base = self.project.resolve_name(self.module.name, chain[0])
        if base is None:
            return []
        qualname = ".".join([base] + chain[1:])
        if qualname in self.project.functions:
            return [(qualname, EDGE_DIRECT)]
        if qualname in self.project.classes:
            return self._constructor_edges(qualname)
        return []

    def _return_type(self, function_qualname: str) -> Optional[str]:
        info = self.project.functions.get(function_qualname)
        if info is None:
            return None
        name = _annotation_class_name(info.node.returns)
        if name is None:
            return None
        resolved = self.project.resolve_class(info.module, name)
        return resolved.qualname if resolved is not None else None

    def _is_snapshot(self, class_qualname: str) -> bool:
        info = self.project.classes.get(class_qualname)
        return info is not None and info.name == "Snapshot"

    def _is_view_provider(self, class_qualname: str) -> bool:
        info = self.project.classes.get(class_qualname)
        return info is not None and info.name in BLESSED_VIEW_CLASSES

    def _record_submissions(self, node: ast.Call, method: Optional[str]) -> None:
        if method == "submit" and node.args:
            for ref in self._function_refs(node.args[0]):
                self.summary.submissions.append((ref, "submit", node.lineno))
        for kw in node.keywords:
            if kw.arg == "initializer":
                for ref in self._function_refs(kw.value):
                    self.summary.submissions.append(
                        (ref, "initializer", node.lineno)
                    )

    def _function_refs(self, node: ast.expr) -> List[str]:
        """All project functions an expression may reference.

        A conditional initializer (``_init_a if cond else _init_b``)
        makes *both* arms worker entry points.
        """
        if isinstance(node, ast.IfExp):
            return self._function_refs(node.body) + self._function_refs(
                node.orelse
            )
        ref = self._function_ref(node)
        return [ref] if ref is not None else []

    def _function_ref(self, node: ast.expr) -> Optional[str]:
        """A bare reference to a project function (not a call)."""
        if isinstance(node, ast.Name):
            target = (
                self.project.resolve_name(self.module.name, node.id)
                if self.module is not None
                else None
            )
            if target in self.project.functions:
                return target
            return None
        if isinstance(node, ast.Attribute):
            chain = _attr_chain(node)
            if chain and chain[0] == "self" and self.function.class_qualname:
                impls = self.project.resolve_method(
                    self.function.class_qualname, chain[-1]
                )
                if len(impls) == 1:
                    return next(iter(impls))
                return None
            if chain and self.module is not None:
                base = self.project.resolve_name(self.module.name, chain[0])
                if base is not None:
                    qualname = ".".join([base] + chain[1:])
                    if qualname in self.project.functions:
                        return qualname
        return None

    # ------------------------------------------------------------------
    # escapes
    # ------------------------------------------------------------------
    def _record_escape(self, how: str, origin: Origin, lineno: int, detail: str = "") -> None:
        if not self.recording:
            return
        if origin.kind in VIEW_KINDS or origin.tracked:
            self.summary.escapes.append(Escape(how, origin, lineno, detail))


def summarize_function(project: Project, function: FunctionInfo) -> FunctionSummary:
    """Build the dataflow summary for one function."""
    return _Summarizer(project, function).run()


__all__ = [
    "BLESSED_VIEW_CLASSES",
    "BLESSED_VIEW_PRODUCERS",
    "DYNAMIC_SKIP",
    "MUTATING_METHODS",
    "TRACKED_KINDS",
    "VIEW_KINDS",
    "VIEW_PRODUCERS",
    "AttrWrite",
    "CallFact",
    "Escape",
    "FunctionSummary",
    "GlobalWrite",
    "MutCall",
    "Origin",
    "summarize_function",
]
