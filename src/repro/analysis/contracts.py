"""contracts — generation-discipline and mmap-lifetime rule packs.

Two families of invariants introduced by the performance PRs, checked
over the whole-project call graph (:mod:`repro.analysis.callgraph`) and
the per-function dataflow summaries (:mod:`repro.analysis.dataflow`):

**Generation discipline.**  The cross-query ``CenterCache`` keys its
entries by value but its *validity* by ``GraphDatabase.index_generation``
— a consumer that reads the cache without first syncing against the
database's current generation can serve subclusters from an index that
no longer exists.  Symmetrically, a mutation that swaps the join index
out from under the engine without bumping the generation silently
invalidates nothing.

``contract/cache-unsynced-read``
    A ``get_centers``/``get_subcluster`` call on a ``CenterCache``-typed
    receiver that is neither (a) inside ``CenterCache`` itself, (b)
    reached through an ``ExecutionContext`` (whose construction is the
    sync choke point), nor (c) preceded in the same function by a
    ``sync(...)`` on the same receiver.
``contract/sync-choke-point``
    Presence rule: ``ExecutionContext.__post_init__`` must sync its
    ``center_cache`` against ``db.index_generation``.  This is the single
    engine-level choke point that makes rule (b) above sound; deleting
    it turns the tree red.
``contract/generation-not-bumped``
    A function that assigns ``join_index``/``catalog``/``labeling`` on a
    ``GraphDatabase``-typed receiver without also writing
    ``index_generation`` on the same receiver.

**Mmap lifetime.**  ``Snapshot`` serves zero-copy ``memoryview`` slices
straight into the mapping.  A view that outlives ``close()`` crashes
with ``BufferError``/``SnapshotError`` at best and reads unmapped memory
at worst, so views must stay transient.  Two confinement regimes apply:
*raw* slices (``_raw``/``_ints``/``node_label_ids``/``centers``) must
stay inside the storage layer; *blessed* slices (the read-only view API
— ``wtable_view``/``extent_view``/``*_code_view``/``subcluster_*`` and
their database/labeling/join-index delegates) additionally flow through
the allowlisted mmap-native consumer layers (``MMAP_VIEW_CONSUMERS``),
which hold them only for the duration of one operator call.

``mmap/view-escape``
    A raw view returned/yielded (or stored into a global) by a function
    outside ``<package>.storage`` — the mapping's owner layer — or a
    blessed view doing so outside storage *and* the consumer allowlist.
``mmap/view-held``
    A view of either kind stored onto a heap object (``self``/parameter
    attribute or container) by any class other than ``Snapshot``
    itself, i.e. state that survives ``close()``.

Resolution is type-driven (receiver classes named ``CenterCache`` /
``GraphDatabase`` / ``Snapshot``), so an untyped receiver is a
documented false negative, never a false positive.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .callgraph import ClassInfo, FunctionInfo, Project, build_project
from .dataflow import CallFact, FunctionSummary, Origin
from .diagnostics import Diagnostic, Severity

#: CenterCache read methods that require a dominating sync
CACHE_READS = frozenset({"get_centers", "get_subcluster"})

#: GraphDatabase attributes whose reassignment must bump the generation
GENERATION_GUARDED_ATTRS = frozenset({"join_index", "catalog", "labeling"})


def _class_named(project: Project, qualname: Optional[str], name: str) -> bool:
    if qualname is None:
        return False
    info = project.classes.get(qualname)
    return info is not None and info.name == name


def _source_of(project: Project, function: FunctionInfo) -> str:
    module = project.modules.get(function.module)
    return module.path if module is not None else function.module


def _entry_path(project: Project, qualname: str) -> str:
    return " -> ".join(project.short(step) for step in project.entry_path(qualname))


# ----------------------------------------------------------------------
# generation discipline
# ----------------------------------------------------------------------
def _synced_before(
    summary: FunctionSummary, read: CallFact
) -> bool:
    """Is there a ``sync(...)`` on the same receiver at an earlier line?"""
    for call in summary.calls:
        if (
            call.method == "sync"
            and call.receiver == read.receiver
            and call.lineno <= read.lineno
            and (call.lineno, call.col) != (read.lineno, read.col)
        ):
            return True
    return False


def _blessed_receiver(origin: Optional[Origin]) -> bool:
    """Did the cache flow out of an ExecutionContext?

    ``ctx.center_cache`` (and chains through it, e.g.
    ``self.ctx.center_cache``) is synced by the construction choke point
    — see ``contract/sync-choke-point``.
    """
    return origin is not None and "center_cache" in origin.chain


def _check_cache_reads(project: Project) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    for qualname, summary in sorted(project.summaries.items()):
        if not isinstance(summary, FunctionSummary):
            continue
        function = project.functions[qualname]
        if _class_named(project, function.class_qualname, "CenterCache"):
            continue  # the cache's own methods operate post-sync
        for call in summary.calls:
            if call.method not in CACHE_READS:
                continue
            if not _class_named(project, call.receiver_type, "CenterCache"):
                continue
            if _blessed_receiver(call.receiver):
                continue
            if _synced_before(summary, call):
                continue
            receiver = call.receiver.describe() if call.receiver else "<cache>"
            diagnostics.append(
                Diagnostic(
                    rule="contract/cache-unsynced-read",
                    severity=Severity.ERROR,
                    message=(
                        f"`{project.short(qualname)}` reads CenterCache "
                        f"`{receiver}.{call.method}(...)` without a dominating "
                        f"`sync(db.index_generation)` and without going "
                        f"through an ExecutionContext "
                        f"(reached via: {_entry_path(project, qualname)})"
                    ),
                    source=_source_of(project, function),
                    line=call.lineno,
                )
            )
    return diagnostics


def _find_class(project: Project, name: str) -> Optional[ClassInfo]:
    for info in project.classes.values():
        if info.name == name:
            return info
    return None


def _check_sync_choke_point(project: Project) -> List[Diagnostic]:
    """ExecutionContext construction must be the cache-sync choke point."""
    context_class = _find_class(project, "ExecutionContext")
    if context_class is None:
        return []  # fixture trees without an engine context
    post_init = context_class.methods.get("__post_init__")
    summary = project.summaries.get(post_init) if post_init else None
    if isinstance(summary, FunctionSummary):
        for call in summary.calls:
            if call.method != "sync" or call.receiver is None:
                continue
            if "center_cache" not in call.receiver.chain:
                continue
            for arg in call.args:
                if arg.chain and arg.chain[-1] == "index_generation":
                    return []
    function = project.functions.get(post_init) if post_init else None
    return [
        Diagnostic(
            rule="contract/sync-choke-point",
            severity=Severity.ERROR,
            message=(
                "ExecutionContext.__post_init__ must call "
                "`center_cache.sync(db.index_generation)` — it is the single "
                "choke point that keeps every driver's cache reads "
                "generation-fresh"
            ),
            source=(
                _source_of(project, function)
                if function is not None
                else project.modules[context_class.module].path
            ),
            line=function.lineno if function is not None else context_class.lineno,
        )
    ]


def _check_generation_bumps(project: Project) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    for qualname, summary in sorted(project.summaries.items()):
        if not isinstance(summary, FunctionSummary):
            continue
        function = project.functions[qualname]
        bumped_roots = {
            (w.origin.kind, w.origin.name, w.origin.chain)
            for w in summary.attr_writes
            if w.attr == "index_generation"
        }
        for write in summary.attr_writes:
            if write.attr not in GENERATION_GUARDED_ATTRS:
                continue
            if not _class_named(project, write.receiver_type, "GraphDatabase"):
                continue
            root = (write.origin.kind, write.origin.name, write.origin.chain)
            if root in bumped_roots:
                continue
            diagnostics.append(
                Diagnostic(
                    rule="contract/generation-not-bumped",
                    severity=Severity.ERROR,
                    message=(
                        f"`{project.short(qualname)}` replaces "
                        f"`{write.origin.describe()}.{write.attr}` without "
                        f"bumping `index_generation` on the same database — "
                        f"stale CenterCache entries would survive the swap "
                        f"(reached via: {_entry_path(project, qualname)})"
                    ),
                    source=_source_of(project, function),
                    line=write.lineno,
                )
            )
    return diagnostics


def check_contracts(project: Optional[Project] = None) -> List[Diagnostic]:
    """Run the generation-discipline rule pack."""
    if project is None:
        project = build_project()
    diagnostics = _check_sync_choke_point(project)
    diagnostics.extend(_check_cache_reads(project))
    diagnostics.extend(_check_generation_bumps(project))
    return diagnostics


# ----------------------------------------------------------------------
# mmap lifetime
# ----------------------------------------------------------------------
#: package-relative module prefixes allowed to return/yield *blessed*
#: snapshot views — the mmap-native read path (operators address slices,
#: kernels consume them, results are always freshly materialized)
MMAP_VIEW_CONSUMERS = ("db", "labeling", "query.physical")


def _storage_module(project: Project, module: str) -> bool:
    prefix = f"{project.package}.storage"
    return module == prefix or module.startswith(prefix + ".")


def _consumer_module(project: Project, module: str) -> bool:
    for suffix in MMAP_VIEW_CONSUMERS:
        prefix = f"{project.package}.{suffix}"
        if module == prefix or module.startswith(prefix + "."):
            return True
    return False


def check_mmap(project: Optional[Project] = None) -> List[Diagnostic]:
    """Run the mmap-lifetime rule pack."""
    if project is None:
        project = build_project()
    diagnostics: List[Diagnostic] = []
    for qualname, summary in sorted(project.summaries.items()):
        if not isinstance(summary, FunctionSummary):
            continue
        function = project.functions[qualname]
        in_storage = _storage_module(project, function.module)
        in_consumer = _consumer_module(project, function.module)
        in_snapshot_class = _class_named(
            project, function.class_qualname, "Snapshot"
        )
        for escape in summary.escapes:
            if escape.origin.kind not in ("view", "blessed-view"):
                continue
            blessed = escape.origin.kind == "blessed-view"
            if escape.how in ("return", "yield", "global-store"):
                if in_storage or (blessed and in_consumer):
                    continue
                boundary = (
                    "the storage layer or an allowlisted mmap-native "
                    "consumer" if blessed else "the storage layer"
                )
                diagnostics.append(
                    Diagnostic(
                        rule="mmap/view-escape",
                        severity=Severity.ERROR,
                        message=(
                            f"`{project.short(qualname)}` lets a Snapshot "
                            f"memoryview escape by {escape.how} outside "
                            f"{boundary} — the slice dies with the "
                            f"mapping on close() "
                            f"(reached via: {_entry_path(project, qualname)})"
                        ),
                        source=_source_of(project, function),
                        line=escape.lineno,
                    )
                )
            elif escape.how == "store":
                if in_snapshot_class:
                    continue  # the Snapshot owns its views' lifetime
                target = escape.detail or "?"
                diagnostics.append(
                    Diagnostic(
                        rule="mmap/view-held",
                        severity=Severity.ERROR,
                        message=(
                            f"`{project.short(qualname)}` stores a Snapshot "
                            f"memoryview on a heap object "
                            f"(attribute `{target}`) that survives close() "
                            f"(reached via: {_entry_path(project, qualname)})"
                        ),
                        source=_source_of(project, function),
                        line=escape.lineno,
                    )
                )
    return diagnostics


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def deep_check(
    root: Optional[str] = None, package: Optional[str] = None
) -> Tuple[Project, List[Diagnostic]]:
    """Build the project once and run all four deep rule packs.

    Returns the built :class:`Project` (for reporting) together with the
    combined diagnostics of the race, generation-discipline,
    mmap-lifetime and lock-discipline packs.
    """
    from .concurrency import check_concurrency
    from .racecheck import check_races

    project = build_project(root, package)
    diagnostics = check_races(project)
    diagnostics.extend(check_contracts(project))
    diagnostics.extend(check_mmap(project))
    diagnostics.extend(check_concurrency(project))
    return project, diagnostics


__all__ = [
    "CACHE_READS",
    "GENERATION_GUARDED_ATTRS",
    "MMAP_VIEW_CONSUMERS",
    "check_contracts",
    "check_mmap",
    "deep_check",
]
