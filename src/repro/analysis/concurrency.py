"""concurrency — lock-discipline rules for shared concurrent structures.

The service's inter-query parallelism (no engine-wide lock) rests on a
short list of structures that are *internally* synchronized: the striped
:class:`~repro.query.physical.cache.CenterCache` (per-shard locks), the
:class:`~repro.storage.buffer.BufferPool` (page-table lock, live tier)
and :class:`~repro.service.scheduler.ServiceStats` (recorder lock).
Their safety argument is lexical — every mutation of shared state sits
inside a ``with <lock>:`` block — which makes it checkable statically:

``conc/lock-discipline``
    Presence rule: a lock-disciplined class must *construct* a
    ``threading.Lock``/``RLock`` in its ``__init__`` (or
    ``__post_init__``), and — because live databases ship whole to
    process-pool workers — a class that customizes pickling via
    ``__getstate__`` must re-create its lock in ``__setstate__``.
    Deleting either turns the tree red before a runtime race can.
``conc/unlocked-mutation``
    Every mutation of ``self`` state (attribute/subscript assignment,
    ``del``, or an in-place mutator call) inside a lock-disciplined
    class must be lexically enclosed in a ``with`` block whose context
    expression names a lock.  ``__init__``-family methods are exempt
    (construction happens before the object is shared), and audited
    helpers that run only under a caller's lock carry explicit
    allowlist entries with their justification.

Scope and precision: the rules are lexical over each class's own method
bodies — mutations through a local alias of ``self`` state (e.g. a
shard object pulled out of ``self._shards``) are a documented false
negative here, covered instead by the runtime oracle
(:func:`repro.analysis.sanitizer.verify_shard_isolation` audits shard
homes and byte ledgers under ``REPRO_SANITIZE=1``).  Classes are matched
by name, like the other type-driven packs.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from .callgraph import ClassInfo, Project, build_project
from .dataflow import MUTATING_METHODS
from .diagnostics import Diagnostic, Severity

#: class name -> what the lock protects (used in diagnostics)
LOCK_DISCIPLINED_CLASSES: Dict[str, str] = {
    "CenterCache": (
        "the striped LRU shared by every in-flight query (per-shard "
        "locks + the sync transition lock)"
    ),
    "_Shard": "one independently locked stripe of the CenterCache",
    "BufferPool": (
        "the page table and LRU order shared by the live tier's "
        "concurrent B+-tree readers"
    ),
    "ServiceStats": (
        "service counters and latency windows recorded from concurrent "
        "slot threads"
    ),
}

#: construction-time methods: the object is not shared yet
EXEMPT_METHODS = frozenset(
    {"__init__", "__post_init__", "__getstate__", "__setstate__", "__repr__"}
)

#: "<ClassName>.<method>" -> justification for audited unlocked mutations
ALLOWLIST: Dict[str, str] = {
    "CenterCache.bind_sanitizer": (
        "armed once at the execution-context sync choke point before "
        "concurrent reads begin; the slot is a single reference, so the "
        "worst race re-arms the same database"
    ),
    "BufferPool._admit": (
        "private helper invoked only from new_page/fetch, whose bodies "
        "hold self._lock for the full call (the lock is re-entrant)"
    ),
    "BufferPool._write_back": (
        "private helper invoked only from _admit and flush_all, both "
        "under self._lock"
    ),
}


def _mentions_lock(node: ast.expr) -> bool:
    """Does a ``with`` context expression name a lock?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and "lock" in sub.attr.lower():
            return True
        if isinstance(sub, ast.Name) and "lock" in sub.id.lower():
            return True
    return False


def _constructs_lock(node: ast.AST) -> bool:
    """Does the body construct a ``Lock()``/``RLock()`` anywhere?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            func = sub.func
            if isinstance(func, ast.Attribute):
                name = func.attr
            elif isinstance(func, ast.Name):
                name = func.id
            else:
                continue
            if name in ("Lock", "RLock"):
                return True
    return False


def _self_rooted(node: ast.expr) -> bool:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return isinstance(node, ast.Name) and node.id == "self"


class _UnlockedMutationVisitor(ast.NodeVisitor):
    """Collect self-rooted mutations lexically outside every lock region."""

    def __init__(self) -> None:
        self.lock_depth = 0
        #: (lineno, human-readable description of the mutation)
        self.violations: List[Tuple[int, str]] = []

    # -- lock regions ---------------------------------------------------
    def _visit_with(self, node) -> None:
        locked = any(_mentions_lock(item.context_expr) for item in node.items)
        if locked:
            self.lock_depth += 1
        self.generic_visit(node)
        if locked:
            self.lock_depth -= 1

    visit_With = _visit_with
    visit_AsyncWith = _visit_with

    # nested defs get their own discipline story; do not attribute their
    # bodies to the enclosing method's lock state
    def visit_FunctionDef(self, node) -> None:  # pragma: no cover - rare
        pass

    visit_AsyncFunctionDef = visit_FunctionDef

    # -- mutations ------------------------------------------------------
    def _flag(self, node: ast.expr, verb: str) -> None:
        if self.lock_depth == 0:
            self.violations.append((node.lineno, f"{verb} `{ast.unparse(node)}`"))

    def _check_target(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_target(element)
        elif isinstance(target, ast.Starred):
            self._check_target(target.value)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            if _self_rooted(target):
                self._flag(target, "writes")

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_target(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_target(target)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in MUTATING_METHODS
            and _self_rooted(func.value)
        ):
            self._flag(func, "mutates in place via")
        self.generic_visit(node)


def _source_of(project: Project, info: ClassInfo) -> str:
    module = project.modules.get(info.module)
    return module.path if module is not None else info.module


def _method_node(project: Project, qualname: Optional[str]):
    if qualname is None:
        return None
    function = project.functions.get(qualname)
    return function.node if function is not None else None


def _check_lock_discipline(
    project: Project, info: ClassInfo, protects: str
) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    source = _source_of(project, info)
    init_node = _method_node(project, info.methods.get("__init__"))
    if init_node is None:
        init_node = _method_node(project, info.methods.get("__post_init__"))
    if init_node is None or not _constructs_lock(init_node):
        diagnostics.append(
            Diagnostic(
                rule="conc/lock-discipline",
                severity=Severity.ERROR,
                message=(
                    f"lock-disciplined class `{info.name}` must construct a "
                    f"threading.Lock/RLock in __init__ — it guards "
                    f"{protects}"
                ),
                source=source,
                line=init_node.lineno if init_node is not None else info.lineno,
            )
        )
    if "__getstate__" in info.methods:
        setstate_node = _method_node(project, info.methods.get("__setstate__"))
        if setstate_node is None or not _constructs_lock(setstate_node):
            diagnostics.append(
                Diagnostic(
                    rule="conc/lock-discipline",
                    severity=Severity.ERROR,
                    message=(
                        f"`{info.name}` drops its lock for pickling "
                        f"(__getstate__) but __setstate__ does not "
                        f"re-create it — the unpickled copy would share "
                        f"state with no lock at all"
                    ),
                    source=source,
                    line=(
                        setstate_node.lineno
                        if setstate_node is not None
                        else info.lineno
                    ),
                )
            )
    return diagnostics


def _check_unlocked_mutations(
    project: Project, info: ClassInfo, protects: str
) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    source = _source_of(project, info)
    for method_name, qualname in sorted(info.methods.items()):
        if method_name in EXEMPT_METHODS:
            continue
        if f"{info.name}.{method_name}" in ALLOWLIST:
            continue
        function = project.functions.get(qualname)
        if function is None or function.class_qualname != info.qualname:
            continue  # inherited implementation: charged to its own class
        visitor = _UnlockedMutationVisitor()
        for statement in function.node.body:
            visitor.visit(statement)
        for lineno, description in visitor.violations:
            diagnostics.append(
                Diagnostic(
                    rule="conc/unlocked-mutation",
                    severity=Severity.ERROR,
                    message=(
                        f"`{info.name}.{method_name}` {description} outside "
                        f"a `with <lock>:` region — the class's lock guards "
                        f"{protects}; hold it or add an audited allowlist "
                        f"entry"
                    ),
                    source=source,
                    line=lineno,
                )
            )
    return diagnostics


def check_concurrency(project: Optional[Project] = None) -> List[Diagnostic]:
    """Run the lock-discipline rule pack over a built project."""
    if project is None:
        project = build_project()
    diagnostics: List[Diagnostic] = []
    for qualname in sorted(project.classes):
        info = project.classes[qualname]
        protects = LOCK_DISCIPLINED_CLASSES.get(info.name)
        if protects is None:
            continue
        diagnostics.extend(_check_lock_discipline(project, info, protects))
        diagnostics.extend(_check_unlocked_mutations(project, info, protects))
    return diagnostics


__all__ = [
    "ALLOWLIST",
    "EXEMPT_METHODS",
    "LOCK_DISCIPLINED_CLASSES",
    "check_concurrency",
]
