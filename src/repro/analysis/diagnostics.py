"""Structured diagnostics shared by every static-analysis pass.

Each pass (:mod:`repro.analysis.plancheck`, :mod:`repro.analysis.indexaudit`,
:mod:`repro.analysis.lint`) reports findings as :class:`Diagnostic` records
rather than raising on the first problem: a verifier that stops at the
first violation hides the other nine, and a CI gate wants the complete
picture in one run.  A diagnostic carries a stable rule id (``pass/rule``,
e.g. ``plan/unbound-variable``), a severity, a location (source plus an
optional line or plan-step index) and a human-readable message.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings make :func:`has_errors` true and turn a ``repro
    check`` run red; ``WARNING`` findings are reported but do not gate.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static-analysis pass.

    Attributes
    ----------
    rule:
        Stable identifier, ``<pass>/<rule>`` (e.g. ``index/cover-missing``).
    severity:
        :class:`Severity` of the finding.
    message:
        Human-readable description of what is wrong and where.
    source:
        What was analyzed: a file path for lint, ``plan`` / ``plan[dp]``
        for plancheck, a structure name (``rjoin-index``, ``T_A.pk``) for
        the index auditor.
    line:
        1-based source line for lint findings, ``None`` elsewhere.
    step:
        0-based plan-step index for plancheck findings, ``None`` elsewhere.
    """

    rule: str
    severity: Severity
    message: str
    source: str = "<unknown>"
    line: Optional[int] = None
    step: Optional[int] = None

    def format(self) -> str:
        where = self.source
        if self.line is not None:
            where = f"{where}:{self.line}"
        if self.step is not None:
            where = f"{where}[step {self.step}]"
        return f"{where}: {self.severity.value}: {self.rule}: {self.message}"


def errors(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Only the ``ERROR``-severity findings."""
    return [d for d in diagnostics if d.severity is Severity.ERROR]


def warnings(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Only the ``WARNING``-severity findings."""
    return [d for d in diagnostics if d.severity is Severity.WARNING]


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    """True when any finding is an ``ERROR`` (the CI gate condition)."""
    return any(d.severity is Severity.ERROR for d in diagnostics)


def format_report(diagnostics: Sequence[Diagnostic]) -> str:
    """Render findings one per line, errors first, stable within severity."""
    ordered = sorted(
        diagnostics,
        key=lambda d: (d.severity is not Severity.ERROR, d.source,
                       d.line or 0, d.step or 0, d.rule),
    )
    return "\n".join(d.format() for d in ordered)
