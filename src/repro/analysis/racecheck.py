"""racecheck — shared-state mutation rules for worker-executed code.

The morsel-driven executor (:mod:`repro.query.physical.parallel`) ships
work to pool workers with a hard contract: a worker may build and mutate
*its own* operators, caches and contexts, but must never write through
state the coordinator also sees — results flow back only through the
futures' return values, and worker cache deltas are merged by the
coordinator after the fact.  Nothing enforced that contract until now.

This pack checks it interprocedurally:

1. every function submitted across the pool boundary (``pool.submit(fn,
   ...)`` / ``initializer=fn``) is a *worker root*, and everything
   reachable from one may execute inside a worker;
2. a worker root's parameters (the payload, the database handle, the
   stage lock) and every module global are *coordinator-shared*; taint
   propagates through typed call edges (arguments to parameters,
   receivers to ``self``) — deliberately **not** through dynamic
   name-matched edges or call results, which would manufacture taint
   out of worker-local constructions like ``CenterCache()`` inside
   ``_run_stage``;
3. an attribute write, in-place mutation or global rebinding whose
   receiver is rooted in shared state, inside a worker-reachable
   function, is a diagnostic — with the worker-root call path printed
   so the report explains *how* the function ends up in a worker.

Rules
-----
``race/shared-write``
    ``shared.attr = ...`` (or ``+=`` / ``del``) on coordinator-shared state.
``race/shared-mutation``
    An in-place mutator (``append``/``update``/``d[k] = v``/...) on
    coordinator-shared state.
``race/global-write``
    Rebinding a module global from worker-reachable code.

Exemptions are explicit and carry their justification: modules whose
worker-side objects are per-process copies (fork COW) or whose morsels
are serialized by the pool lock, plus a per-function allowlist for
audited benign cases (see :data:`EXEMPT_MODULE_PREFIXES` /
:data:`ALLOWLIST`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .callgraph import EDGE_DYNAMIC, Project, build_project
from .dataflow import FunctionSummary, Origin
from .diagnostics import Diagnostic, Severity

#: module prefixes whose shared-state writes are accepted, with the
#: reviewed justification for each
EXEMPT_MODULE_PREFIXES: Dict[str, str] = {
    "repro.query.physical.parallel": (
        "owns the pool: worker bootstrap writes (_WORKER_DB) happen before "
        "any morsel runs, and the thread backend serializes stages on the "
        "pool lock"
    ),
    "repro.storage.": (
        "storage objects touched by workers are per-process copies after "
        "fork (COW); the thread backend serializes morsels on the pool lock"
    ),
    "repro.db.": (
        "database memo-caches (code cache, lazy leaves) are per-process "
        "after fork; the thread backend serializes morsels on the pool lock"
    ),
    "repro.labeling.": (
        "the 2-hop construction pool owns its workers' state; results merge "
        "by return value only"
    ),
    "repro.service.": (
        "service state mutates only on the event loop (scheduler) or under "
        "ServiceStats' lock; slot threads execute queries concurrently but "
        "share only the engine's internally synchronized structures "
        "(sharded CenterCache, lock-guarded plan cache, tiered storage "
        "read path) plus per-query private contexts and thread-local "
        "IOStats overrides"
    ),
    "repro.analysis.": (
        "analysis passes never execute inside query workers (they appear "
        "reachable only through dynamic name-matched edges)"
    ),
    "repro.baselines.": (
        "baseline matchers are single-threaded reference implementations, "
        "never submitted to a pool"
    ),
}

#: function qualname -> justification for audited benign shared writes
ALLOWLIST: Dict[str, str] = {
    "repro.query.physical.kernels.intern_label_pair": (
        "process-local interning table: racy inserts are idempotent "
        "(same key -> same id within a process) and ids never cross the "
        "process boundary"
    ),
    "repro.query.physical.kernels.clear_pair_ids": (
        "process-local interning reset: the epoch bump that accompanies "
        "every clear makes stale ids unreachable (CenterCache keys embed "
        "the epoch), each mutation is GIL-atomic, and worker-side callers "
        "only reach it through the capped intern overflow — worker "
        "CenterCaches are per-morsel and never observe a generation "
        "change, so the rebuild hook fires in the coordinator only"
    ),
}


def _is_exempt(module: str) -> Optional[str]:
    for prefix, reason in EXEMPT_MODULE_PREFIXES.items():
        if module == prefix or module.startswith(prefix):
            return reason
    return None


def _origin_tainted(origin: Origin, tainted_params: Set[str]) -> bool:
    if origin.kind == "global":
        return True
    if origin.kind == "param":
        return origin.name in tainted_params
    if origin.kind == "self":
        return "self" in tainted_params
    return False


def taint_map(project: Project) -> Dict[str, Set[str]]:
    """Worklist fixpoint: function -> parameters bound to shared state.

    Seeds every worker root with all of its parameters tainted and
    propagates through typed call edges only (argument position /
    keyword / receiver-to-``self``).
    """
    taint: Dict[str, Set[str]] = {}
    queue: List[str] = []
    for root in sorted({w.function for w in project.worker_roots}):
        info = project.functions.get(root)
        if info is None:
            continue
        taint[root] = set(info.params)
        queue.append(root)

    while queue:
        caller = queue.pop(0)
        tainted_params = taint.get(caller, set())
        summary = project.summaries.get(caller)
        if not isinstance(summary, FunctionSummary):
            continue
        for call in summary.calls:
            for callee, kind in call.callees:
                if kind == EDGE_DYNAMIC:
                    continue
                target = project.functions.get(callee)
                if target is None:
                    continue
                positional: List[Optional[Origin]] = list(call.args)
                if target.is_method:
                    # bind the receiver to ``self``; a constructor call
                    # has no receiver and its fresh object is not shared
                    positional = [call.receiver] + positional
                updates: Set[str] = set()
                for index, origin in enumerate(positional):
                    if index >= len(target.params):
                        break
                    if origin is not None and _origin_tainted(
                        origin, tainted_params
                    ):
                        updates.add(target.params[index])
                for name, origin in call.kwargs:
                    if name in target.params and _origin_tainted(
                        origin, tainted_params
                    ):
                        updates.add(name)
                current = taint.setdefault(callee, set())
                if not updates <= current:
                    current |= updates
                    queue.append(callee)
    return taint


def check_races(project: Optional[Project] = None) -> List[Diagnostic]:
    """Run the race rule pack over a built project."""
    if project is None:
        project = build_project()
    roots = sorted({w.function for w in project.worker_roots})
    parents = project.reachable_from(roots)
    taint = taint_map(project)
    diagnostics: List[Diagnostic] = []

    for qualname in sorted(parents):
        function = project.functions.get(qualname)
        if function is None:
            continue
        if qualname in ALLOWLIST or _is_exempt(function.module) is not None:
            continue
        summary = project.summaries.get(qualname)
        if not isinstance(summary, FunctionSummary):
            continue
        tainted_params = taint.get(qualname, set())
        module = project.modules.get(function.module)
        source = module.path if module is not None else function.module
        path = " -> ".join(
            project.short(step)
            for step in project.call_path(qualname, parents)
        )

        for write in summary.attr_writes:
            if _origin_tainted(write.origin, tainted_params):
                diagnostics.append(
                    Diagnostic(
                        rule="race/shared-write",
                        severity=Severity.ERROR,
                        message=(
                            f"worker-reachable `{project.short(qualname)}` "
                            f"writes `{write.origin.describe()}.{write.attr}`, "
                            f"which aliases coordinator-shared state "
                            f"(worker call path: {path})"
                        ),
                        source=source,
                        line=write.lineno,
                    )
                )
        for mutation in summary.mut_calls:
            if _origin_tainted(mutation.origin, tainted_params):
                diagnostics.append(
                    Diagnostic(
                        rule="race/shared-mutation",
                        severity=Severity.ERROR,
                        message=(
                            f"worker-reachable `{project.short(qualname)}` "
                            f"mutates `{mutation.origin.describe()}` in place "
                            f"via `{mutation.method}`, which aliases "
                            f"coordinator-shared state "
                            f"(worker call path: {path})"
                        ),
                        source=source,
                        line=mutation.lineno,
                    )
                )
        for global_write in summary.global_writes:
            diagnostics.append(
                Diagnostic(
                    rule="race/global-write",
                    severity=Severity.ERROR,
                    message=(
                        f"worker-reachable `{project.short(qualname)}` "
                        f"rebinds module global `{global_write.name}` "
                        f"(worker call path: {path})"
                    ),
                    source=source,
                    line=global_write.lineno,
                )
            )
    return diagnostics


__all__ = ["ALLOWLIST", "EXEMPT_MODULE_PREFIXES", "check_races", "taint_map"]
