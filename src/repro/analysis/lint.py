"""lint — project-specific AST rules (stdlib :mod:`ast`, no dependencies).

Generic linters cannot know this codebase's layering rules, so this pass
encodes them directly and runs as part of ``repro check --self`` and CI:

* ``lint/storage-bypass`` — modules under ``query/`` must not import
  :mod:`repro.storage.heapfile` or :mod:`repro.storage.pages`, nor touch a
  table's ``.heap`` attribute: raw page/heap access skips the
  :class:`~repro.storage.buffer.BufferPool` and silently corrupts the I/O
  accounting every experiment depends on.  Query code goes through
  ``Table`` / ``TemporalTable`` / ``BPlusTree``.
* ``lint/physical-internals`` — modules *outside* ``query/`` must not
  import :mod:`repro.query.physical` (the operator classes, drivers and
  execution context are the query layer's private machinery): callers go
  through ``execute_plan`` / ``execute_plan_streaming`` /
  ``GraphEngine``, which guarantee plan validation and uniform metrics.
* ``lint/multiprocessing-outside-parallel`` — direct ``multiprocessing``
  imports (and the ``concurrent.futures`` pool executors) are confined
  to :mod:`repro.query.physical.parallel` (the morsel scheduler), the
  ``labeling`` package (the parallel index build), and
  :mod:`repro.service.server` (the query service's admission-slot
  executor): everything else routes parallel execution through the
  ``WorkerPool``/``workers=`` API, so pool lifecycle, fork-safety and
  metric merging stay in audited places.
* ``lint/mmap-outside-snapshot`` — :mod:`mmap` and :mod:`struct` imports
  are confined to :mod:`repro.storage.snapshot`: every binary-layout
  assumption (byte order, alignment, section framing) lives in the one
  module whose CRC/geometry checks can enforce it.  Other code handles
  snapshot *objects*, never raw bytes.
* ``lint/mutable-default`` — no mutable default arguments (list/dict/set
  literals, comprehensions, or ``list()``/``dict()``/``set()`` calls):
  the shared-instance trap.
* ``lint/enum-is`` — enum members (``Side``, ``Severity``) are compared
  with ``is`` / ``is not``, never ``==``: identity comparison cannot be
  fooled by a stale value-equal object and reads as intended.
* ``lint/bare-except`` — no bare ``except:``; it swallows
  ``KeyboardInterrupt``/``SystemExit``.  Catch something.
* ``lint/unused-import`` — imported names must be used (``__init__.py``
  re-export modules are exempt; a name mentioned anywhere else in the
  file, including string annotations, counts as used).

Each rule reports a :class:`~repro.analysis.diagnostics.Diagnostic` with
the file and line, so findings render like compiler errors.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, List, Sequence, Union

from .diagnostics import Diagnostic, Severity

#: enum classes whose members must be compared by identity
ENUM_CLASSES = frozenset({"Side", "Severity"})

#: storage modules that bypass BufferPool-accounted access paths
_RAW_STORAGE_MODULES = (("storage", "heapfile"), ("storage", "pages"))

_MUTABLE_CALLS = frozenset({"list", "dict", "set"})
_MUTABLE_NODES = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)


def _is_query_module(filename: str) -> bool:
    parts = Path(filename).parts
    return "query" in parts


def _may_import_multiprocessing(filename: str) -> bool:
    """Pool ownership is confined to three audited modules.

    The morsel scheduler and the labeling build own worker pools for
    query/index parallelism; the query service's server owns exactly one
    ``ThreadPoolExecutor`` sized to its admission slots (so
    ``run_in_executor`` can never buffer unbounded work) — its queries
    still reach engine parallelism through the ``workers=`` API.
    """
    path = Path(filename)
    parts = path.parts
    return (
        "labeling" in parts
        or (path.name == "parallel.py" and "physical" in parts)
        or (path.name == "server.py" and "service" in parts)
    )


def _is_multiprocessing(module: str) -> bool:
    return module == "multiprocessing" or module.startswith("multiprocessing.")


#: modules whose import means hand-rolled binary layout handling
_BINARY_LAYOUT_MODULES = frozenset({"mmap", "struct"})


def _may_import_binary_layout(filename: str) -> bool:
    """Only the snapshot module owns raw binary layout (mmap/struct)."""
    path = Path(filename)
    return path.name == "snapshot.py" and "storage" in path.parts


def _is_binary_layout(module: str) -> bool:
    return module.split(".")[0] in _BINARY_LAYOUT_MODULES


#: ``concurrent.futures`` names that create worker pools — importing one
#: means owning a pool, which belongs in the morsel scheduler
_POOL_EXECUTORS = frozenset({"ProcessPoolExecutor", "ThreadPoolExecutor"})


def _module_tail(module: str) -> tuple:
    return tuple(module.split("."))[-2:]


def _is_physical_internal(module: str) -> bool:
    """True for any spelling of the ``repro.query.physical`` package.

    Covers absolute (``repro.query.physical.drivers``) and relative
    (``..query.physical``) dotted paths; ``from repro.query import
    physical`` is handled separately at the alias level.
    """
    parts = module.split(".")
    return "physical" in parts and "query" in parts


class _LintVisitor(ast.NodeVisitor):
    def __init__(self, filename: str, source: str) -> None:
        self.filename = filename
        self.source = source
        self.in_query_layer = _is_query_module(filename)
        self.may_multiprocess = _may_import_multiprocessing(filename)
        self.may_binary_layout = _may_import_binary_layout(filename)
        self.is_init = Path(filename).name == "__init__.py"
        self.diagnostics: List[Diagnostic] = []
        self.imports: List[tuple] = []  # (name, lineno, import statement text)

    # ------------------------------------------------------------------
    def report(self, rule: str, lineno: int, message: str) -> None:
        self.diagnostics.append(
            Diagnostic(
                rule=rule,
                severity=Severity.ERROR,
                message=message,
                source=self.filename,
                line=lineno,
            )
        )

    # ------------------------------------------------------------------
    # lint/storage-bypass + lint/unused-import (import statements)
    # ------------------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if self.in_query_layer and _module_tail(alias.name) in _RAW_STORAGE_MODULES:
                self.report(
                    "lint/storage-bypass",
                    node.lineno,
                    f"query-layer module imports {alias.name!r}; raw "
                    "page/heap access bypasses BufferPool I/O accounting",
                )
            if not self.in_query_layer and _is_physical_internal(alias.name):
                self.report(
                    "lint/physical-internals",
                    node.lineno,
                    f"module outside the query layer imports {alias.name!r}; "
                    "go through execute_plan/execute_plan_streaming/"
                    "GraphEngine instead of physical-operator internals",
                )
            if _is_multiprocessing(alias.name) and not self.may_multiprocess:
                self.report(
                    "lint/multiprocessing-outside-parallel",
                    node.lineno,
                    f"direct import of {alias.name!r}; pool ownership lives "
                    "in repro.query.physical.parallel (and the labeling "
                    "build) — use the workers=/WorkerPool API instead",
                )
            if _is_binary_layout(alias.name) and not self.may_binary_layout:
                self.report(
                    "lint/mmap-outside-snapshot",
                    node.lineno,
                    f"direct import of {alias.name!r}; binary layout "
                    "handling is confined to repro.storage.snapshot — "
                    "consume Snapshot objects or their blessed *_view "
                    "accessors, not raw bytes",
                )
            self.imports.append(
                (alias.asname or alias.name.split(".")[0], node.lineno)
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if module == "__future__":
            return
        if _is_multiprocessing(module) and not self.may_multiprocess:
            self.report(
                "lint/multiprocessing-outside-parallel",
                node.lineno,
                f"direct import from {module!r}; pool ownership lives in "
                "repro.query.physical.parallel (and the labeling build) — "
                "use the workers=/WorkerPool API instead",
            )
        if _is_binary_layout(module) and not self.may_binary_layout:
            self.report(
                "lint/mmap-outside-snapshot",
                node.lineno,
                f"direct import from {module!r}; binary layout handling is "
                "confined to repro.storage.snapshot — consume Snapshot "
                "objects or their blessed *_view accessors, not raw bytes",
            )
        if module == "concurrent.futures" and not self.may_multiprocess:
            for alias in node.names:
                if alias.name in _POOL_EXECUTORS:
                    self.report(
                        "lint/multiprocessing-outside-parallel",
                        node.lineno,
                        f"direct import of {alias.name!r}; pool ownership "
                        "lives in repro.query.physical.parallel (and the "
                        "labeling build) — use the workers=/WorkerPool API "
                        "instead",
                    )
        if self.in_query_layer and _module_tail(module) in _RAW_STORAGE_MODULES:
            self.report(
                "lint/storage-bypass",
                node.lineno,
                f"query-layer module imports from {module!r}; raw "
                "page/heap access bypasses BufferPool I/O accounting",
            )
        if not self.in_query_layer:
            for alias in node.names:
                # `from repro.query.physical[...] import X` or the
                # package itself via `from repro.query import physical`
                if _is_physical_internal(module) or (
                    _module_tail(module)[-1:] == ("query",)
                    and alias.name == "physical"
                ):
                    self.report(
                        "lint/physical-internals",
                        node.lineno,
                        f"module outside the query layer imports "
                        f"{alias.name!r} from {module!r}; go through "
                        "execute_plan/execute_plan_streaming/GraphEngine "
                        "instead of physical-operator internals",
                    )
        for alias in node.names:
            if alias.name == "*":
                continue
            self.imports.append((alias.asname or alias.name, node.lineno))
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # lint/storage-bypass (attribute access)
    # ------------------------------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self.in_query_layer and node.attr == "heap":
            self.report(
                "lint/storage-bypass",
                node.lineno,
                "query-layer code reaches into a table's .heap; scan "
                "through Table/TemporalTable so I/O stays accounted",
            )
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # lint/mutable-default
    # ------------------------------------------------------------------
    def _check_defaults(self, node) -> None:
        args = node.args
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            bad = isinstance(default, _MUTABLE_NODES) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CALLS
            )
            if bad:
                self.report(
                    "lint/mutable-default",
                    default.lineno,
                    f"function {node.name!r} has a mutable default "
                    "argument; default to None (or a frozen value) and "
                    "construct inside the body",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # lint/enum-is
    # ------------------------------------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for pos, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (operands[pos], operands[pos + 1]):
                if (
                    isinstance(side, ast.Attribute)
                    and isinstance(side.value, ast.Name)
                    and side.value.id in ENUM_CLASSES
                ):
                    which = "is not" if isinstance(op, ast.NotEq) else "is"
                    self.report(
                        "lint/enum-is",
                        node.lineno,
                        f"compare {side.value.id}.{side.attr} with "
                        f"{which!r}, not ==/!= (enum members are "
                        "singletons)",
                    )
                    break
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # lint/bare-except
    # ------------------------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(
                "lint/bare-except",
                node.lineno,
                "bare 'except:' also catches KeyboardInterrupt/SystemExit; "
                "name the exception(s)",
            )
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # lint/unused-import (finish)
    # ------------------------------------------------------------------
    def finish(self, tree: ast.AST) -> None:
        if self.is_init:
            return  # __init__ modules re-export; unused-looking is the point
        used = {
            node.id
            for node in ast.walk(tree)
            if isinstance(node, ast.Name)
        }
        for name, lineno in self.imports:
            if name in used or name == "_":
                continue
            # Conservative fallback: string annotations, doctests and
            # comments mention names the AST walk cannot see.
            if re.search(rf"\b{re.escape(name)}\b", self._non_import_text(lineno)):
                continue
            self.report(
                "lint/unused-import",
                lineno,
                f"imported name {name!r} is never used",
            )

    def _non_import_text(self, import_lineno: int) -> str:
        lines = self.source.splitlines()
        if 1 <= import_lineno <= len(lines):
            lines = lines[: import_lineno - 1] + lines[import_lineno:]
        return "\n".join(
            line for line in lines
            if not re.match(r"\s*(import|from)\s", line)
        )


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def lint_source(source: str, filename: str = "<string>") -> List[Diagnostic]:
    """Lint one module's source text; returns its findings."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [
            Diagnostic(
                rule="lint/syntax-error",
                severity=Severity.ERROR,
                message=str(exc.msg),
                source=filename,
                line=exc.lineno,
            )
        ]
    visitor = _LintVisitor(filename, source)
    visitor.visit(tree)
    visitor.finish(tree)
    return visitor.diagnostics


def lint_paths(paths: Iterable[Union[str, Path]]) -> List[Diagnostic]:
    """Lint files and/or directories (recursing into ``*.py``)."""
    findings: List[Diagnostic] = []
    for path in paths:
        path = Path(path)
        files: Sequence[Path]
        if path.is_dir():
            files = sorted(path.rglob("*.py"))
        else:
            files = [path]
        for file in files:
            findings.extend(lint_source(file.read_text(), str(file)))
    return findings


def lint_project(root: Union[str, Path, None] = None) -> List[Diagnostic]:
    """Lint the repository's own source tree (``src/repro``).

    *root* defaults to the installed package directory, which inside the
    repository checkout is ``src/repro`` — the ``repro check --self`` gate.
    """
    if root is None:
        root = Path(__file__).resolve().parent.parent
    return lint_paths([root])
