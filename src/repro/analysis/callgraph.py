"""callgraph — whole-project symbol table and call graph for ``src/repro``.

The per-file lint pass (:mod:`repro.analysis.lint`) sees one module at a
time, which is enough for layering rules but blind to *interprocedural*
properties: "is this function ever executed inside a pool worker?",
"does every path to this cache read pass through a generation sync?",
"does this memoryview outlive the mapping it slices?".  Answering those
needs a picture of the whole package at once.  This module builds it:

* :class:`Project` — every module under a package root parsed with the
  stdlib :mod:`ast`, with a symbol table of modules, classes (including
  base classes and ``self.attr`` → class type facts harvested from
  ``__init__`` assignments and dataclass field annotations) and
  functions, plus resolved import aliases per module.
* a **call graph**: for every function, the call sites it contains with
  their resolved callees.  Resolution is best-effort and layered —
  direct names through the import table, ``self.method`` through the
  class hierarchy (including subclass overrides, mirroring dynamic
  dispatch), ``obj.method`` through lightweight local type inference
  (parameter annotations, ``x = ClassName(...)`` constructor
  assignments, typed ``self.attr`` chains), and finally a *dynamic*
  name-match fallback that links an unresolvable ``x.method()`` to every
  project class defining ``method``.  Typed edges are marked
  ``direct``/``method``; name-matched edges are marked ``dynamic`` so
  clients can use them for reachability (an over-approximation is safe
  there) but not for dataflow (where it would manufacture taint).
* the **worker-submission boundary**: call sites of the form
  ``pool.submit(fn, ...)`` / ``Executor(initializer=fn)`` mark *fn* as a
  worker entry point — everything reachable from those functions runs
  (or may run) inside a pool worker.  This is how
  :mod:`repro.analysis.racecheck` knows which code the
  :class:`~repro.query.physical.parallel.WorkerPool` contract applies to.

Known imprecision (by design, documented for rule authors):

* resolution is context-insensitive — one node per function, merged over
  all call sites;
* calls through values returned by other calls are not tracked (the
  result of ``db.base_table(label)`` has no inferred type);
* ``*args``/``**kwargs`` forwarding drops the argument mapping;
* the dynamic name-match fallback over-approximates: reachability may
  include methods that can never be dispatched at a given site.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

#: call-edge kinds, from most to least precise
EDGE_DIRECT = "direct"      # resolved through imports / module scope
EDGE_METHOD = "method"      # resolved through a known receiver type
EDGE_DYNAMIC = "dynamic"    # name-matched fallback (reachability only)

#: wrappers stripped from type annotations when inferring attribute types
_ANNOTATION_WRAPPERS = frozenset({"Optional", "Final", "ClassVar"})


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str                      # repro.pkg.mod.Class.method
    module: str                        # repro.pkg.mod
    name: str
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    lineno: int
    class_qualname: Optional[str] = None
    params: Tuple[str, ...] = ()

    @property
    def is_method(self) -> bool:
        return self.class_qualname is not None


@dataclass
class ClassInfo:
    """One class definition with resolved bases and attribute types."""

    qualname: str
    module: str
    name: str
    lineno: int
    bases: Tuple[str, ...] = ()
    #: method name -> function qualname (own definitions only)
    methods: Dict[str, str] = field(default_factory=dict)
    #: ``self.attr`` -> class qualname, from __init__ assignments and
    #: dataclass field annotations
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module with its import alias table."""

    name: str
    path: str
    tree: ast.Module
    #: local alias -> fully qualified target (module, class or function)
    imports: Dict[str, str] = field(default_factory=dict)
    #: module-level definition name -> qualname
    scope: Dict[str, str] = field(default_factory=dict)
    #: module-level assigned names (globals a function may read/write)
    globals: Set[str] = field(default_factory=set)


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge (a caller may own many)."""

    caller: str
    callee: str
    lineno: int
    col: int
    kind: str


@dataclass(frozen=True)
class WorkerRoot:
    """A function submitted across the worker-pool boundary."""

    function: str          # qualname of the submitted callable
    submitted_at: str      # module of the submitting call site
    lineno: int
    via: str               # "submit" or "initializer"


class Project:
    """Symbol table + call graph over one package tree."""

    def __init__(self, root: Path, package: str) -> None:
        self.root = root
        self.package = package
        self.modules: Dict[str, ModuleInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: method name -> set of function qualnames defining it
        self.method_index: Dict[str, Set[str]] = {}
        #: class qualname -> direct subclasses
        self.subclasses: Dict[str, Set[str]] = {}
        self.call_sites: List[CallSite] = []
        #: caller qualname -> its call sites
        self.calls_from: Dict[str, List[CallSite]] = {}
        #: callee qualname -> incoming call sites
        self.calls_to: Dict[str, List[CallSite]] = {}
        self.worker_roots: List[WorkerRoot] = []
        #: function qualname -> dataflow.FunctionSummary (filled by build)
        self.summaries: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # symbol lookups
    # ------------------------------------------------------------------
    def resolve_name(self, module: str, name: str) -> Optional[str]:
        """A bare name in *module* scope -> qualname, if known."""
        info = self.modules.get(module)
        if info is None:
            return None
        if name in info.scope:
            return info.scope[name]
        if name in info.imports:
            return info.imports[name]
        return None

    def resolve_class(self, module: str, name: str) -> Optional[ClassInfo]:
        """A (possibly dotted) name in *module* scope -> ClassInfo."""
        target = self.resolve_name(module, name.split(".")[0])
        if target is None:
            return None
        if "." in name:
            target = target + "." + ".".join(name.split(".")[1:])
        return self.classes.get(target)

    def mro(self, class_qualname: str) -> Iterator[ClassInfo]:
        """The class and its project-known ancestors, nearest first."""
        seen: Set[str] = set()
        stack = [class_qualname]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            yield info
            stack.extend(info.bases)

    def attr_type(self, class_qualname: str, attr: str) -> Optional[str]:
        """Type of ``self.attr`` for a class, searching its ancestors."""
        for info in self.mro(class_qualname):
            found = info.attr_types.get(attr)
            if found is not None:
                return found
        return None

    def resolve_method(self, class_qualname: str, name: str) -> Set[str]:
        """Implementations ``name`` may dispatch to for this receiver type.

        The defining ancestor's implementation plus every override in the
        receiver's subclass cone (virtual dispatch over-approximation).
        """
        found: Set[str] = set()
        for info in self.mro(class_qualname):
            method = info.methods.get(name)
            if method is not None:
                found.add(method)
                break
        stack = [class_qualname]
        seen: Set[str] = set()
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is not None:
                method = info.methods.get(name)
                if method is not None:
                    found.add(method)
            stack.extend(self.subclasses.get(current, ()))
        return found

    # ------------------------------------------------------------------
    # graph queries
    # ------------------------------------------------------------------
    def add_call(self, site: CallSite) -> None:
        self.call_sites.append(site)
        self.calls_from.setdefault(site.caller, []).append(site)
        self.calls_to.setdefault(site.callee, []).append(site)

    def reachable_from(
        self, roots: Sequence[str], dynamic: bool = True
    ) -> Dict[str, Tuple[Optional[str], Optional[int]]]:
        """Functions reachable from *roots*: qualname -> (caller, line).

        The parent pointers reconstruct one call path per function (BFS,
        so it is a shortest path).  ``dynamic=False`` restricts the walk
        to typed edges.
        """
        parents: Dict[str, Tuple[Optional[str], Optional[int]]] = {}
        queue: List[str] = []
        for root in roots:
            if root not in parents:
                parents[root] = (None, None)
                queue.append(root)
        while queue:
            current = queue.pop(0)
            for site in self.calls_from.get(current, ()):
                if not dynamic and site.kind == EDGE_DYNAMIC:
                    continue
                if site.callee not in parents:
                    parents[site.callee] = (current, site.lineno)
                    queue.append(site.callee)
        return parents

    def call_path(
        self,
        target: str,
        parents: Dict[str, Tuple[Optional[str], Optional[int]]],
    ) -> List[str]:
        """Root -> ... -> target, reconstructed from ``reachable_from``."""
        path: List[str] = []
        current: Optional[str] = target
        while current is not None:
            path.append(current)
            current, _ = parents.get(current, (None, None))
        return list(reversed(path))

    def entry_path(self, target: str, limit: int = 12) -> List[str]:
        """A shortest chain of callers leading into *target*.

        Walks the reversed graph up to a function with no known callers
        (an entry point); used to show *how* an offending function is
        reached when the rule itself is not rooted at the worker boundary.
        """
        path = [target]
        seen = {target}
        current = target
        while len(path) < limit:
            incoming = self.calls_to.get(current, ())
            step = next((s for s in incoming if s.caller not in seen), None)
            if step is None:
                break
            current = step.caller
            seen.add(current)
            path.append(current)
        return list(reversed(path))

    def short(self, qualname: str) -> str:
        """Strip the package prefix for readable diagnostics."""
        prefix = self.package + "."
        return qualname[len(prefix):] if qualname.startswith(prefix) else qualname


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------
def _module_name(root: Path, package: str, path: Path) -> str:
    relative = path.relative_to(root).with_suffix("")
    parts = [package] + list(relative.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _annotation_class_name(node: Optional[ast.expr]) -> Optional[str]:
    """Extract a usable class name from an annotation expression."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.strip()
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        parts = _attr_chain(node)
        return ".".join(parts) if parts else None
    if isinstance(node, ast.Subscript):
        base = _annotation_class_name(node.value)
        if base is not None and base.split(".")[-1] in _ANNOTATION_WRAPPERS:
            inner = node.slice
            if isinstance(inner, ast.Tuple):  # Optional[X, ...] never valid
                return None
            return _annotation_class_name(inner)
    return None


def _attr_chain(node: ast.expr) -> Optional[List[str]]:
    """``a.b.c`` -> ["a", "b", "c"]; None when the root is not a Name."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return list(reversed(parts))
    return None


def _function_params(node: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> Tuple[str, ...]:
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    return tuple(names)


class _SymbolCollector(ast.NodeVisitor):
    """Pass 1: classes, functions and module-level names of one module."""

    def __init__(self, project: Project, module: ModuleInfo) -> None:
        self.project = project
        self.module = module
        self._class_stack: List[ClassInfo] = []
        self._function_depth = 0

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._function_depth or self._class_stack:
            # nested classes are rare and out of scope; skip their bodies
            return
        qualname = f"{self.module.name}.{node.name}"
        info = ClassInfo(
            qualname=qualname,
            module=self.module.name,
            name=node.name,
            lineno=node.lineno,
        )
        self.project.classes[qualname] = info
        self.module.scope[node.name] = qualname
        self._class_stack.append(info)
        self.generic_visit(node)
        self._class_stack.pop()

    def _register_function(
        self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    ) -> None:
        if self._function_depth:
            return  # nested helper functions are analyzed as part of the outer
        owner = self._class_stack[-1] if self._class_stack else None
        if owner is not None:
            qualname = f"{owner.qualname}.{node.name}"
        else:
            qualname = f"{self.module.name}.{node.name}"
            self.module.scope[node.name] = qualname
        info = FunctionInfo(
            qualname=qualname,
            module=self.module.name,
            name=node.name,
            node=node,
            lineno=node.lineno,
            class_qualname=owner.qualname if owner is not None else None,
            params=_function_params(node),
        )
        self.project.functions[qualname] = info
        if owner is not None:
            owner.methods[node.name] = qualname
            self.project.method_index.setdefault(node.name, set()).add(qualname)
        self._function_depth += 1
        self.generic_visit(node)
        self._function_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._register_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._register_function(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if not self._function_depth and not self._class_stack:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.module.globals.add(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if not self._function_depth and not self._class_stack:
            if isinstance(node.target, ast.Name):
                self.module.globals.add(node.target.id)
        self.generic_visit(node)


def _resolve_relative(module: str, level: int, target: Optional[str]) -> str:
    """``from ..a import b`` in ``pkg.sub.mod`` -> ``pkg.a``."""
    parts = module.split(".")
    # level 1 = current package; the module's own name is the last part
    base = parts[: len(parts) - level] if level <= len(parts) else []
    if target:
        base = base + target.split(".")
    return ".".join(base)


def _collect_imports(project: Project, module: ModuleInfo) -> None:
    """Pass 2a: the module's alias table (absolute + relative imports)."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                module.imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            base = (
                _resolve_relative(module.name, node.level, node.module)
                if node.level
                else (node.module or "")
            )
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                module.imports[local] = f"{base}.{alias.name}" if base else alias.name


def _collect_class_facts(project: Project, module: ModuleInfo) -> None:
    """Pass 2b: base classes + ``self.attr`` types per class."""
    for node in module.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        info = project.classes.get(f"{module.name}.{node.name}")
        if info is None:
            continue
        bases: List[str] = []
        for base in node.bases:
            chain = _attr_chain(base)
            if not chain:
                continue
            resolved = project.resolve_name(module.name, chain[0])
            if resolved is None:
                continue
            qualname = ".".join([resolved] + chain[1:])
            if qualname in project.classes:
                bases.append(qualname)
        info.bases = tuple(bases)
        for base_qualname in bases:
            project.subclasses.setdefault(base_qualname, set()).add(info.qualname)
        _collect_attr_types(project, module, node, info)


def _collect_attr_types(
    project: Project, module: ModuleInfo, node: ast.ClassDef, info: ClassInfo
) -> None:
    # dataclass-style field annotations in the class body
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            name = _annotation_class_name(stmt.annotation)
            if name:
                resolved = project.resolve_class(module.name, name)
                if resolved is not None:
                    info.attr_types[stmt.target.id] = resolved.qualname
    # self.attr = ClassName(...) / = param / annotated assignments in methods
    for stmt in node.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        params = stmt.args
        param_annotations = {
            arg.arg: arg.annotation
            for arg in params.posonlyargs + params.args + params.kwonlyargs
            if arg.annotation is not None
        }
        for sub in ast.walk(stmt):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            annotation: Optional[ast.expr] = None
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                target, value = sub.targets[0], sub.value
            elif isinstance(sub, ast.AnnAssign):
                target, value, annotation = sub.target, sub.value, sub.annotation
            if (
                not isinstance(target, ast.Attribute)
                or not isinstance(target.value, ast.Name)
                or target.value.id != "self"
            ):
                continue
            resolved_name: Optional[str] = None
            if annotation is not None:
                resolved_name = _annotation_class_name(annotation)
            if resolved_name is None and isinstance(value, ast.Call):
                chain = _attr_chain(value.func)
                if chain:
                    resolved_name = ".".join(chain)
            if (
                resolved_name is None
                and isinstance(value, ast.Name)
                and value.id in param_annotations
            ):
                # self.attr = param  inherits the parameter's annotation
                resolved_name = _annotation_class_name(param_annotations[value.id])
            if resolved_name is None:
                continue
            resolved = project.resolve_class(module.name, resolved_name)
            if resolved is not None:
                info.attr_types.setdefault(target.attr, resolved.qualname)


def build_project(
    root: Union[str, Path, None] = None, package: Optional[str] = None
) -> Project:
    """Parse a package tree and build its symbol table + call graph.

    *root* defaults to the installed ``repro`` package directory (inside
    a checkout: ``src/repro``); *package* defaults to the root's
    directory name.  The call-site extraction itself lives in
    :mod:`repro.analysis.dataflow` — this function runs the full
    pipeline so clients get a ready project.
    """
    # imported here to keep the two modules' responsibilities separate
    # without a circular import at module load
    from .dataflow import summarize_function

    if root is None:
        root = Path(__file__).resolve().parent.parent
    root = Path(root)
    package = package or root.name
    project = Project(root, package)

    files = sorted(root.rglob("*.py"))
    for path in files:
        try:
            tree = ast.parse(path.read_text(), filename=str(path))
        except SyntaxError:
            continue  # the lint pass reports syntax errors with location
        module = ModuleInfo(
            name=_module_name(root, package, path), path=str(path), tree=tree
        )
        project.modules[module.name] = module
        _SymbolCollector(project, module).visit(tree)
    for module in project.modules.values():
        _collect_imports(project, module)
    for module in project.modules.values():
        _collect_class_facts(project, module)

    project.summaries = {}
    for qualname, function in sorted(project.functions.items()):
        summary = summarize_function(project, function)
        project.summaries[qualname] = summary
        for call in summary.calls:
            for callee, kind in call.callees:
                project.add_call(
                    CallSite(
                        caller=qualname,
                        callee=callee,
                        lineno=call.lineno,
                        col=call.col,
                        kind=kind,
                    )
                )
        for submitted, via, lineno in summary.submissions:
            project.worker_roots.append(
                WorkerRoot(
                    function=submitted,
                    submitted_at=function.module,
                    lineno=lineno,
                    via=via,
                )
            )
    return project


__all__ = [
    "EDGE_DIRECT",
    "EDGE_DYNAMIC",
    "EDGE_METHOD",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "Project",
    "WorkerRoot",
    "build_project",
]
