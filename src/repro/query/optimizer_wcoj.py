"""WCOJ — variable-elimination-order selection over the join graph.

Left-deep plans (DP/DPS, Section 4) eliminate one *condition* per move
and must materialize every binary R-join's intermediate; on cyclic join
graphs those intermediates can be asymptotically larger than the final
output.  This optimizer produces the generic-join alternative: a
:class:`~repro.query.algebra.MultiwaySeed` binding one variable from the
intersection of its conditions' W-projections, followed by one
:class:`~repro.query.algebra.MultiwayStep` per remaining variable, each
intersecting the extension sets of *every* condition between the new
variable and the already-bound ones.

Plan enumeration is a connected-subgraph DP over the join graph: a state
is the frozenset of bound variables, a move binds one adjacent variable,
and among orders reaching the same state the cheapest is kept — the
bushy-enumeration analogue for the variable-at-a-time plan space, bounded
by ``O(2^n)`` states for ``n`` variables (patterns here are small).  Cost
and cardinality use the existing :class:`~repro.query.costmodel.CostModel`
plus its multiway rules (``multiway_domain_size`` / ``multiway_step_rows``
/ ``multiway_step_cost``).

Routing lives in :func:`optimize_auto`: acyclic join graphs go to the
paper's DPS optimizer *unchanged* (identical plans, rows and counters to
today — the differential suites pin this); cyclic ones get the multiway
plan.  :func:`optimize_wcoj` itself also falls back to DPS on acyclic
patterns, since a multiway plan on a tree degenerates into a strictly
worse Filter/Fetch with no sharing.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from .algebra import MultiwaySeed, MultiwayStep, Plan, PlanStep
from .costmodel import CostModel
from .join_graph import JoinGraph
from .optimizer_dp import OptimizedPlan
from .optimizer_dps import optimize_dps
from .pattern import GraphPattern


def _enumerate_orders(
    graph: JoinGraph, model: CostModel
) -> Tuple[float, float, Tuple[str, ...]]:
    """Connected-subgraph DP: cheapest variable elimination order.

    ``best[bound] = (cost, rows, order)`` — *bound* is the frozenset of
    eliminated variables, *rows* the estimated intermediate after the
    last elimination.  Moves extend *bound* by one adjacent variable
    (connectivity keeps every step constrained, which a connected
    pattern guarantees is always possible).
    """
    variables = graph.variables
    best: Dict[FrozenSet[str], Tuple[float, float, Tuple[str, ...]]] = {}
    for var in variables:
        constraints = graph.incident_constraints(var)
        rows = model.multiway_domain_size(var, constraints)
        cost = model.multiway_seed_cost(var, constraints, rows)
        best[frozenset([var])] = (cost, rows, (var,))

    frontier = sorted(best, key=sorted)
    index = 0
    while index < len(frontier):
        state = frontier[index]
        index += 1
        cost, rows, order = best[state]
        if best[state][0] < cost:  # superseded entry
            continue
        for var in variables:
            if var in state:
                continue
            constraints = graph.constraints_toward(var, state)
            if not constraints:
                continue  # stay connected: every step must intersect
            new_rows = model.multiway_step_rows(rows, constraints)
            step_cost = model.multiway_step_cost(rows, constraints, new_rows)
            new_state = state | {var}
            candidate = (cost + step_cost, new_rows, order + (var,))
            if new_state not in best or candidate[0] < best[new_state][0]:
                previously_known = new_state in best
                best[new_state] = candidate
                if not previously_known:
                    frontier.append(new_state)

    final = best.get(frozenset(variables))
    if final is None:  # pragma: no cover - connected patterns always complete
        raise RuntimeError("WCOJ enumeration failed to cover all variables")
    return final


def _build_plan(
    pattern: GraphPattern, graph: JoinGraph, order: Tuple[str, ...]
) -> Plan:
    """Materialize one elimination order as MultiwaySeed + MultiwaySteps."""
    steps: List[PlanStep] = [
        MultiwaySeed(order[0], graph.incident_constraints(order[0]))
    ]
    bound = [order[0]]
    for var in order[1:]:
        steps.append(MultiwayStep(var, graph.constraints_toward(var, bound)))
        bound.append(var)
    plan = Plan(pattern, steps)
    plan.validate()
    return plan


def optimize_wcoj(pattern: GraphPattern, model: CostModel) -> OptimizedPlan:
    """Cheapest multiway (generic-join) plan for a cyclic pattern.

    Acyclic patterns (including the single-variable degenerate) fall back
    to the paper's DPS optimizer — on a tree every multiway step has
    exactly one constraint and the plan collapses into an unshared
    Filter+Fetch chain, which the left-deep optimizers already order
    better.
    """
    graph = JoinGraph(pattern)
    if not graph.is_cyclic:
        return optimize_dps(pattern, model)
    cost, rows, order = _enumerate_orders(graph, model)
    return OptimizedPlan(_build_plan(pattern, graph, order), cost, rows)


def optimize_auto(pattern: GraphPattern, model: CostModel) -> OptimizedPlan:
    """Route on join-graph shape: cyclic → WCOJ, acyclic → DPS unchanged."""
    return optimize_wcoj(pattern, model)


__all__ = ["optimize_auto", "optimize_wcoj"]
