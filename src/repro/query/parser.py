"""A tiny textual language for graph patterns.

Grammar (informal)::

    pattern   := clause (("," | ";" | newline) clause)*
    clause    := node "->" node ("->" node)*      # chains are allowed
               | node                              # single-node pattern
    node      := NAME (":" LABEL)?                 # bare NAME means LABEL=NAME

Examples
--------
``"A -> C, B -> C, C -> D, D -> E"`` is the paper's Figure 1(b) pattern.

``"s:supplier -> r:retailer, s -> w:wholeseller, r -> b:bank"`` names its
variables, allowing repeated labels.  A variable's label must be given at
its first mention and may be omitted afterwards.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from .pattern import GraphPattern, PatternError

_NODE_RE = re.compile(r"^\s*([A-Za-z_][\w.-]*)\s*(?::\s*([A-Za-z_][\w.-]*)\s*)?$")


def parse_pattern(text: str) -> GraphPattern:
    """Parse *text* into a validated :class:`GraphPattern`."""
    labels: Dict[str, str] = {}
    edges: List[Tuple[str, str]] = []

    def parse_node(token: str) -> str:
        match = _NODE_RE.match(token)
        if not match:
            raise PatternError(f"cannot parse pattern node {token.strip()!r}")
        name, label = match.group(1), match.group(2)
        if label is not None:
            if name in labels and labels[name] != label:
                raise PatternError(
                    f"variable {name!r} relabeled from {labels[name]!r} to {label!r}"
                )
            labels[name] = label
        elif name not in labels:
            labels[name] = name  # bare node: the variable *is* the label
        return name

    clauses = [c for c in re.split(r"[,;\n]", text) if c.strip()]
    if not clauses:
        raise PatternError("empty pattern text")
    for clause in clauses:
        chain = [parse_node(tok) for tok in clause.split("->")]
        for src, dst in zip(chain, chain[1:]):
            edges.append((src, dst))
    return GraphPattern.build(labels, edges)
