"""Query layer: patterns, R-join operators, optimizers, execution."""

from .algebra import (
    FetchStep,
    RowLimitExceeded,
    FilterStep,
    MultiwaySeed,
    MultiwayStep,
    Plan,
    SeedJoin,
    SeedScan,
    SelectionStep,
    Side,
    TemporalTable,
)
from .costmodel import CostModel, CostParams
from .engine import GraphEngine
from .join_graph import JoinGraph
from .physical import (
    BACKENDS,
    DEFAULT_BATCH_SIZE,
    DEFAULT_CACHE_BYTES,
    DEFAULT_MORSEL_SIZE,
    CacheStats,
    CenterCache,
    OperatorMetrics,
    ParallelStats,
    QueryResult,
    RunMetrics,
    StreamingResult,
    WorkerPool,
    default_backend,
    execute_plan,
    execute_plan_streaming,
    fork_available,
)
from .optimizer_dp import OptimizedPlan, optimize_dp, optimize_greedy
from .optimizer_dps import optimize_dps
from .optimizer_wcoj import optimize_auto, optimize_wcoj
from .parser import parse_pattern
from .pattern import Condition, GraphPattern, PatternError

__all__ = [
    "FetchStep",
    "RowLimitExceeded",
    "FilterStep",
    "JoinGraph",
    "MultiwaySeed",
    "MultiwayStep",
    "Plan",
    "SeedJoin",
    "SeedScan",
    "SelectionStep",
    "Side",
    "TemporalTable",
    "CostModel",
    "CostParams",
    "GraphEngine",
    "BACKENDS",
    "CacheStats",
    "CenterCache",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_CACHE_BYTES",
    "DEFAULT_MORSEL_SIZE",
    "OperatorMetrics",
    "ParallelStats",
    "QueryResult",
    "RunMetrics",
    "StreamingResult",
    "WorkerPool",
    "default_backend",
    "execute_plan",
    "execute_plan_streaming",
    "fork_available",
    "OptimizedPlan",
    "optimize_auto",
    "optimize_dp",
    "optimize_dps",
    "optimize_greedy",
    "optimize_wcoj",
    "parse_pattern",
    "Condition",
    "GraphPattern",
    "PatternError",
]
