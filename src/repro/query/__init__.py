"""Query layer: patterns, R-join operators, optimizers, execution."""

from .algebra import (
    FetchStep,
    RowLimitExceeded,
    FilterStep,
    Plan,
    SeedJoin,
    SeedScan,
    SelectionStep,
    Side,
    TemporalTable,
)
from .costmodel import CostModel, CostParams
from .engine import GraphEngine
from .physical import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_CACHE_BYTES,
    CacheStats,
    CenterCache,
    OperatorMetrics,
    QueryResult,
    RunMetrics,
    StreamingResult,
    execute_plan,
    execute_plan_streaming,
)
from .optimizer_dp import OptimizedPlan, optimize_dp, optimize_greedy
from .optimizer_dps import optimize_dps
from .parser import parse_pattern
from .pattern import Condition, GraphPattern, PatternError

__all__ = [
    "FetchStep",
    "RowLimitExceeded",
    "FilterStep",
    "Plan",
    "SeedJoin",
    "SeedScan",
    "SelectionStep",
    "Side",
    "TemporalTable",
    "CostModel",
    "CostParams",
    "GraphEngine",
    "CacheStats",
    "CenterCache",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_CACHE_BYTES",
    "OperatorMetrics",
    "QueryResult",
    "RunMetrics",
    "StreamingResult",
    "execute_plan",
    "execute_plan_streaming",
    "OptimizedPlan",
    "optimize_dp",
    "optimize_dps",
    "optimize_greedy",
    "parse_pattern",
    "Condition",
    "GraphPattern",
    "PatternError",
]
