"""Cost model for R-join / R-semijoin order selection (paper Section 4).

Table 1 of the paper defines four I/O cost parameters:

=========  ==================================================================
``IO_B``   search cost over a B+-tree (one root-to-leaf descent)
``IO_D``   disk access cost for one page scan of a file
``IO_F``   avg cost of using the R-join index to find an X-labeled node of
           ``π_X(T_X ⋈ T_Y)``  (the paper's ``IO^F_{X->Y}``)
``IO_T``   avg cost for a Y-labeled node of ``π_Y(T_X ⋈ T_Y)``
=========  ==================================================================

and three size estimates:

* Eq. (10) — self R-join (selection):
  ``|T_RS| = |T_R| * |T_X ⋈ T_Y| / (|T_X| * |T_Y|)``
* Eq. (11) — R-join, temporal holds X:
  ``|T_RS| = |T_R| * |T_X ⋈ T_Y| / |T_X|``
* Eq. (12) — temporal holds Y:  divide by ``|T_Y|``

with costs

* selection:  ``2 * (IO_B + IO_X) * |T_R|``  (two code retrievals/row)
* R-join:     ``(IO_B + IO_D) * |T_R| + IO_rji * |T_RS|``
  (Filter = per-row getCenters; Fetch = per-output-node index access).

The model is deliberately coarse — the paper notes "our approaches is not
independent [sic: dependent] on a cost model" — what matters is consistent
relative ordering, which these formulas give both DP and DPS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..db.catalog import Catalog
from .algebra import FilterKey, Side
from .pattern import Condition, GraphPattern


@dataclass(frozen=True)
class CostParams:
    """Table 1's I/O parameters, in abstract page-access units."""

    io_btree: float = 3.0       # IO_B: one B+-tree descent (~tree height)
    io_page: float = 1.0        # IO_D: one page access
    io_index_node: float = 0.05 # IO_rji: per node pulled from a subcluster
    rows_per_page: float = 100.0  # temporal-table packing, for scan costs
    cached_code_discount: float = 0.25
    """Relative cost of a code retrieval when the variable's codes were
    already cached by an earlier filter on the same column (B_in/B_out in
    Section 4.2) — sharing per Remark 3.1 makes repeats much cheaper."""


class CostModel:
    """Size and cost estimation bound to one database's catalog."""

    def __init__(self, catalog: Catalog, pattern: GraphPattern,
                 params: CostParams | None = None) -> None:
        self.catalog = catalog
        self.pattern = pattern
        self.params = params or CostParams()

    # ------------------------------------------------------------------
    # sizes
    # ------------------------------------------------------------------
    def _labels(self, condition: Condition) -> tuple:
        return self.pattern.condition_labels(condition)

    def extent_size(self, var: str) -> int:
        return self.catalog.extent_size(self.pattern.label(var))

    def base_join_size(self, condition: Condition) -> float:
        """``|T_X ⋈_{X->Y} T_Y|`` between base tables (HPSJ output)."""
        x_label, y_label = self._labels(condition)
        return float(self.catalog.join_size(x_label, y_label))

    def selection_selectivity(self, condition: Condition) -> float:
        """Eq. (10): fraction of rows surviving a self R-join."""
        x_label, y_label = self._labels(condition)
        return self.catalog.join_selectivity(x_label, y_label)

    def join_fanout(self, condition: Condition, temporal_holds_source: bool) -> float:
        """Eq. (11)/(12): output rows per temporal row for a full R-join."""
        x_label, y_label = self._labels(condition)
        if temporal_holds_source:
            return self.catalog.reduction_factor(x_label, y_label)
        size = self.catalog.extent_size(y_label)
        if size == 0:
            return 0.0
        return self.catalog.join_size(x_label, y_label) / size

    def filter_survival(self, condition: Condition, temporal_holds_source: bool) -> float:
        """Fraction of temporal rows surviving the condition's R-semijoin."""
        x_label, y_label = self._labels(condition)
        if temporal_holds_source:
            return self.catalog.semijoin_survival(x_label, y_label)
        size = self.catalog.extent_size(y_label)
        if size == 0:
            return 0.0
        return min(1.0, self.catalog.join_size(x_label, y_label) / size)

    # ------------------------------------------------------------------
    # costs
    # ------------------------------------------------------------------
    def scan_cost(self, rows: float) -> float:
        """IO_D per page of a temporal-table scan."""
        pages = max(1.0, rows / self.params.rows_per_page)
        return self.params.io_page * pages

    def hpsj_cost(self, condition: Condition) -> float:
        """Algorithm 1: one W-table probe + per-output index node costs."""
        output = self.base_join_size(condition)
        return self.params.io_btree + self.params.io_index_node * max(output, 1.0)

    def filter_cost(self, rows: float, conditions: int, code_cached: bool) -> float:
        """Filter: scan + per-row getCenters; shared scan costs one pass.

        ``conditions`` semijoins on the same scanned column share the code
        retrieval (Remark 3.1), so only the W-table intersections multiply.
        """
        code = self.params.io_btree + self.params.io_page
        if code_cached:
            code *= self.params.cached_code_discount
        probe = 0.25 * self.params.io_btree * conditions  # W-table lookups amortize
        return self.scan_cost(rows) + rows * (code + probe)

    def fetch_cost(self, rows_in: float, rows_out: float) -> float:
        """Fetch: scan the filtered table + IO_rji per retrieved node."""
        return self.scan_cost(rows_in) + self.params.io_index_node * max(rows_out, 1.0) \
            + self.params.io_btree * max(rows_in, 1.0) * 0.1

    def selection_cost(self, rows: float, src_cached: bool, dst_cached: bool) -> float:
        """Self R-join: 2 * (IO_B + IO_X) * |T_R|, discounted per cached side."""
        code = self.params.io_btree + self.params.io_page
        src_code = code * (self.params.cached_code_discount if src_cached else 1.0)
        dst_code = code * (self.params.cached_code_discount if dst_cached else 1.0)
        return self.scan_cost(rows) + rows * (src_code + dst_code)

    def materialize_cost(self, rows: float) -> float:
        """Writing a temporal table back out, page by page."""
        return self.scan_cost(rows)

    # ------------------------------------------------------------------
    # multiway (generic-join) estimates — the WCOJ plan family
    # ------------------------------------------------------------------
    def projection_selectivity(self, condition: Condition, var_is_source: bool) -> float:
        """Fraction of a variable's extent inside one condition's
        W-projection (the multiway seed's per-condition domain)."""
        x_label, y_label = self._labels(condition)
        if var_is_source:
            return self.catalog.semijoin_survival(x_label, y_label)
        size = self.catalog.extent_size(y_label)
        if size == 0:
            return 0.0
        return min(1.0, self.catalog.join_size(x_label, y_label) / size)

    def multiway_domain_size(
        self, var: str, constraints: Sequence[FilterKey]
    ) -> float:
        """Estimated seed-domain size: extent × per-condition projection
        selectivities, treated as independent (the usual AGM-style
        independence coarseness — consistent relative ordering is what
        the enumerator needs, not absolute accuracy)."""
        size = float(self.extent_size(var))
        for condition, side in constraints:
            # the seed variable is the condition's *fetched* endpoint:
            # Side.IN keys it as the source, Side.OUT as the target
            size *= self.projection_selectivity(condition, side is Side.IN)
        return size

    def multiway_seed_cost(
        self, var: str, constraints: Sequence[FilterKey], domain_rows: float
    ) -> float:
        """MultiwaySeed: per condition one W-sweep expanding every
        center's subcluster (IO_B to land on W, IO_rji per projected
        node), then materialize the intersected domain."""
        cost = 0.0
        for condition, _side in constraints:
            cost += self.params.io_btree
            cost += self.params.io_index_node * max(self.base_join_size(condition), 1.0)
        if not constraints:
            cost = self.scan_cost(float(self.extent_size(var)))
        return cost + self.materialize_cost(domain_rows)

    def multiway_step_rows(
        self, rows: float, constraints: Sequence[FilterKey]
    ) -> float:
        """Output estimate for one variable elimination: the *smallest*
        per-condition fanout bounds the intersection, and every other
        condition further thins it like a selection (Eq. 10)."""
        if not constraints:
            return rows
        fanouts = [
            self.join_fanout(condition, side is Side.OUT)
            for condition, side in constraints
        ]
        tightest = min(range(len(fanouts)), key=fanouts.__getitem__)
        out = rows * fanouts[tightest]
        for index, (condition, _side) in enumerate(constraints):
            if index != tightest:
                out *= self.selection_selectivity(condition)
        return out

    def multiway_step_cost(
        self, rows: float, constraints: Sequence[FilterKey], rows_out: float
    ) -> float:
        """MultiwayIntersectOp: scan the input, per row and condition one
        code retrieval (getCenters, W-probe amortized like Filter) plus
        IO_rji per extension-set node examined before intersection."""
        k = max(1, len(constraints))
        code = self.params.io_btree + self.params.io_page
        probe = 0.25 * self.params.io_btree
        per_row = k * (code * self.params.cached_code_discount + probe)
        expanded = 0.0
        for condition, side in constraints:
            expanded += rows * self.join_fanout(condition, side is Side.OUT)
        return (
            self.scan_cost(rows)
            + rows * per_row
            + self.params.io_index_node * max(expanded, 1.0)
            + self.materialize_cost(rows_out)
        )
