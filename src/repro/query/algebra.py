"""Plan algebra: temporal tables and the R-join/R-semijoin plan steps.

A query plan for a pattern is a *left-deep* sequence of steps (paper
Section 4): the first step seeds a temporal table (an HPSJ R-join of two
base tables, or an extent scan for single-variable patterns) and every
later step is one of

* ``FilterStep`` — one shared scan applying one or more R-semijoins
  (``Filter`` of Algorithm 2 / Eq. 7-8; several conditions on the same
  scanned variable are processed together per Remark 3.1);
* ``FetchStep`` — the ``Fetch`` half of Algorithm 2, completing an R-join
  whose Filter already ran and materializing a new variable column;
* ``SelectionStep`` — a *self R-join* (Eq. 5): both variables already in
  the temporal table, evaluated as a selection on graph codes.

A second plan family covers *cyclic* join graphs, where every left-deep
tree of binary R-joins can materialize intermediates asymptotically
larger than the output: a **multiway plan** is a variable elimination
order — one ``MultiwaySeed`` followed by one ``MultiwayStep`` per
remaining variable — executed generic-join style (each step intersects
the extension sets of *all* conditions touching its variable, see
:mod:`repro.query.physical.multiway`).  The two families never mix
within one plan.

The executor (:mod:`repro.query.executor`) interprets these steps against
a :class:`~repro.db.database.GraphDatabase`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..storage.buffer import BufferPool
from ..storage.table import Table
from .pattern import Condition, GraphPattern, PatternError


class RowLimitExceeded(RuntimeError):
    """Raised when an operator's output outgrows an explicit row limit.

    Used as an execution guard: callers that only need to know whether a
    query stays within budget (e.g. workload validation) pass
    ``row_limit`` to the executor and catch this instead of waiting for a
    runaway multi-million-row intermediate to materialize.
    """


class Side(enum.Enum):
    """Which side of a condition the temporal table holds.

    ``OUT``: the temporal table has the condition's *source* variable; the
    Filter scans its out-codes and the Fetch adds the target via
    ``getT(w, Y)`` — the plain Algorithm 2 direction.

    ``IN``: the temporal table has the *target*; the Filter scans
    in-codes and the Fetch adds the source via ``getF(w, X)`` — the mirror
    case the paper sketches after Algorithm 2.
    """

    OUT = "out"
    IN = "in"

    def scanned_var(self, condition: Condition) -> str:
        return condition[0] if self is Side.OUT else condition[1]

    def fetched_var(self, condition: Condition) -> str:
        return condition[1] if self is Side.OUT else condition[0]


FilterKey = Tuple[Condition, Side]


@dataclass(frozen=True)
class SeedScan:
    """Scan one base table to seed a single-variable temporal table."""

    var: str


@dataclass(frozen=True)
class SeedJoin:
    """HPSJ (Algorithm 1): R-join two base tables via the join index."""

    condition: Condition


@dataclass(frozen=True)
class FilterStep:
    """One shared scan applying R-semijoins for all listed filter keys.

    Every key must scan the *same* variable (Remark 3.1's sharing
    condition: "either all X_i or all Y_i are the same").
    """

    keys: Tuple[FilterKey, ...]

    def __post_init__(self) -> None:
        scanned = {side.scanned_var(cond) for cond, side in self.keys}
        if len(scanned) != 1:
            raise PatternError(
                f"a shared FilterStep must scan one variable, got {sorted(scanned)}"
            )
        sides = {side for _, side in self.keys}
        if len(sides) != 1:
            # Remark 3.1: sharable only when all sources or all targets
            # coincide — i.e. one column scanned with one code kind
            raise PatternError(
                "a shared FilterStep must use one side (all X_i or all Y_i equal)"
            )

    @property
    def scanned_var(self) -> str:
        condition, side = self.keys[0]
        return side.scanned_var(condition)


@dataclass(frozen=True)
class FetchStep:
    """Fetch (Algorithm 2): complete a filtered R-join, adding a variable."""

    condition: Condition
    side: Side


@dataclass(frozen=True)
class SelectionStep:
    """Self R-join (Eq. 5): check a condition between two bound variables."""

    condition: Condition


@dataclass(frozen=True)
class MultiwaySeed:
    """Seed a multiway (generic-join) plan: bind the first variable of an
    elimination order.

    ``constraints`` lists the conditions incident to *var*, keyed so that
    ``side.fetched_var(condition) == var``; the operator binds *var* to
    the intersection of the per-condition W-projections (every value a
    final match could take must appear in each projection).  The seed
    *prunes* with these conditions but does not *evaluate* any of them —
    each condition is enforced exactly once, at the
    :class:`MultiwayStep` that eliminates its later endpoint.
    """

    var: str
    constraints: Tuple[FilterKey, ...] = ()

    def __post_init__(self) -> None:
        for condition, side in self.constraints:
            if side.fetched_var(condition) != self.var:
                raise PatternError(
                    f"multiway seed constraint {condition} [{side.value}] "
                    f"does not bind variable {self.var!r}"
                )


@dataclass(frozen=True)
class MultiwayStep:
    """Eliminate one variable by a multiway intersection (generic join).

    Per input row, the new variable's bindings are the intersection over
    *all* ``constraints`` of the condition's extension set from the bound
    endpoint — ``∪_{w ∈ out(x) ∩ W(X,Y)} getT(w, Y)`` for ``Side.OUT``
    (bound source), ``∪_{w ∈ in(y) ∩ W(X,Y)} getF(w, X)`` for ``Side.IN``
    (bound target).  Every listed condition is thereby fully evaluated;
    no intermediate R-join result is ever materialized for them.
    """

    var: str
    constraints: Tuple[FilterKey, ...]

    def __post_init__(self) -> None:
        if not self.constraints:
            raise PatternError(
                f"multiway step for {self.var!r} has no constraints; the "
                "elimination order must keep the join graph connected"
            )
        for condition, side in self.constraints:
            if side.fetched_var(condition) != self.var:
                raise PatternError(
                    f"multiway constraint {condition} [{side.value}] does "
                    f"not bind variable {self.var!r}"
                )


PlanStep = (
    SeedScan
    | SeedJoin
    | FilterStep
    | FetchStep
    | SelectionStep
    | MultiwaySeed
    | MultiwayStep
)


@dataclass
class Plan:
    """A validated left-deep plan for a pattern."""

    pattern: GraphPattern
    steps: List[PlanStep] = field(default_factory=list)

    def validate(self) -> None:
        """Simulate binding to catch malformed step sequences early."""
        if not self.steps:
            raise PatternError("plan has no steps")
        first = self.steps[0]
        bound: set = set()
        pending: set = set()
        done: set = set()
        if isinstance(first, MultiwaySeed):
            self._validate_multiway(first, bound, done)
            self._validate_coverage(bound, pending, done)
            return
        if isinstance(first, SeedScan):
            bound.add(first.var)
        elif isinstance(first, SeedJoin):
            bound.update(first.condition)
            done.add(first.condition)
        else:
            raise PatternError(f"plan must start with a seed step, got {first}")
        for step in self.steps[1:]:
            if isinstance(step, FilterStep):
                if step.scanned_var not in bound:
                    raise PatternError(
                        f"filter scans unbound variable {step.scanned_var!r}"
                    )
                for key in step.keys:
                    condition, side = key
                    mirror = (condition, Side.IN if side is Side.OUT else Side.OUT)
                    if key in pending or mirror in pending or condition in done:
                        raise PatternError(f"duplicate filter for {key}")
                    if side.fetched_var(condition) in bound:
                        raise PatternError(
                            f"filter for {key} targets already-bound variable "
                            f"{side.fetched_var(condition)!r}; use a "
                            "SelectionStep between two bound variables"
                        )
                    pending.add(key)
            elif isinstance(step, FetchStep):
                key = (step.condition, step.side)
                if key not in pending:
                    mirror = (
                        step.condition,
                        Side.IN if step.side is Side.OUT else Side.OUT,
                    )
                    if mirror in pending:
                        raise PatternError(
                            f"fetch for {step.condition} uses side "
                            f"{step.side.value!r} but its filter ran with "
                            f"side {mirror[1].value!r}"
                        )
                    raise PatternError(
                        f"fetch for {key} has no preceding filter (HPSJ+ requires "
                        "Filter before Fetch)"
                    )
                fetched = step.side.fetched_var(step.condition)
                if fetched in bound:
                    raise PatternError(
                        f"fetch for {step.condition} re-binds variable "
                        f"{fetched!r}; the temporal table would get a "
                        "duplicate column"
                    )
                pending.discard(key)
                bound.add(fetched)
                done.add(step.condition)
            elif isinstance(step, SelectionStep):
                src, dst = step.condition
                if src not in bound or dst not in bound:
                    raise PatternError(
                        f"selection on {step.condition} with unbound variable"
                    )
                if step.condition in done:
                    raise PatternError(f"condition {step.condition} evaluated twice")
                done.add(step.condition)
            elif isinstance(step, (MultiwaySeed, MultiwayStep)):
                raise PatternError(
                    f"multiway step {step} in a left-deep plan; multiway "
                    "plans start with a MultiwaySeed and contain only "
                    "MultiwayStep after it"
                )
            else:
                raise PatternError(f"seed step {step} must come first")
        self._validate_coverage(bound, pending, done)

    def _validate_multiway(self, first: "MultiwaySeed", bound: set, done: set) -> None:
        """Binding simulation for a generic-join plan (elimination order)."""
        bound.add(first.var)
        for step in self.steps[1:]:
            if not isinstance(step, MultiwayStep):
                raise PatternError(
                    f"step {step} in a multiway plan; after a MultiwaySeed "
                    "every step must be a MultiwayStep"
                )
            if step.var in bound:
                raise PatternError(
                    f"multiway step re-binds variable {step.var!r}"
                )
            for condition, side in step.constraints:
                if side.scanned_var(condition) not in bound:
                    raise PatternError(
                        f"multiway constraint {condition} [{side.value}] "
                        f"scans unbound variable "
                        f"{side.scanned_var(condition)!r}"
                    )
                if condition in done:
                    raise PatternError(
                        f"condition {condition} evaluated twice"
                    )
                done.add(condition)
            bound.add(step.var)

    def _validate_coverage(self, bound: set, pending: set, done: set) -> None:
        missing = set(self.pattern.conditions) - done
        if missing:
            raise PatternError(f"plan never evaluates conditions {sorted(missing)}")
        unbound = set(self.pattern.variables) - bound
        if unbound:
            raise PatternError(f"plan never binds variables {sorted(unbound)}")
        if pending:
            raise PatternError(f"plan leaves filters {sorted(pending, key=str)} unfetched")

    def describe(self) -> str:
        """Human-readable one-line-per-step rendering (for EXPLAIN)."""
        lines = []
        for step in self.steps:
            if isinstance(step, SeedScan):
                lines.append(f"SCAN      T_{self.pattern.label(step.var)} ({step.var})")
            elif isinstance(step, SeedJoin):
                src, dst = step.condition
                lines.append(f"HPSJ      {src} -> {dst}")
            elif isinstance(step, FilterStep):
                conds = ", ".join(
                    f"{c[0]}->{c[1]}[{s.value}]" for c, s in step.keys
                )
                lines.append(f"FILTER    scan {step.scanned_var}: {conds}")
            elif isinstance(step, FetchStep):
                src, dst = step.condition
                lines.append(f"FETCH     {src} -> {dst} [{step.side.value}]")
            elif isinstance(step, SelectionStep):
                src, dst = step.condition
                lines.append(f"SELECT    {src} -> {dst}")
            elif isinstance(step, MultiwaySeed):
                conds = ", ".join(
                    f"{c[0]}->{c[1]}[{s.value}]" for c, s in step.constraints
                )
                lines.append(f"MSEED     {step.var}: {conds or '(full extent)'}")
            elif isinstance(step, MultiwayStep):
                conds = ", ".join(
                    f"{c[0]}->{c[1]}[{s.value}]" for c, s in step.constraints
                )
                lines.append(f"MJOIN     {step.var}: {conds}")
        return "\n".join(lines)


class TemporalTable:
    """An intermediate result: bound variable columns + pending center sets.

    Rows are tuples: first the node ids of ``variables`` (in order), then
    one ``tuple(centers)`` per entry of ``pending`` — the ``(r_i, X_i)``
    pairs that Algorithm 2's Filter emits into ``T_W``.  Rows live in a
    heap file through the buffer pool, so temporal-table scans and writes
    are charged I/O like any other table.
    """

    def __init__(
        self,
        pool: BufferPool,
        variables: Sequence[str],
        pending: Sequence[FilterKey] = (),
        name: str = "temp",
        row_limit: int | None = None,
    ) -> None:
        self.variables: Tuple[str, ...] = tuple(variables)
        self.pending: Tuple[FilterKey, ...] = tuple(pending)
        self.row_limit = row_limit
        columns = list(self.variables) + [
            f"__centers_{i}" for i in range(len(self.pending))
        ]
        self.table = Table(pool, name=name, columns=columns)

    @classmethod
    def from_layout(
        cls,
        pool: BufferPool,
        layout,
        name: str = "temp",
        row_limit: int | None = None,
    ) -> "TemporalTable":
        """Build a table whose schema matches a physical operator's output.

        *layout* is any object with ``variables`` and ``pending`` (the
        :class:`repro.query.physical.RowLayout` the operator computed);
        the materializing driver uses this to turn each operator's output
        stream into a stored intermediate.
        """
        return cls(
            pool,
            variables=layout.variables,
            pending=layout.pending,
            name=name,
            row_limit=row_limit,
        )

    # ------------------------------------------------------------------
    def var_position(self, var: str) -> int:
        try:
            return self.variables.index(var)
        except ValueError:
            raise PatternError(
                f"variable {var!r} not bound; bound: {self.variables}"
            ) from None

    def pending_position(self, key: FilterKey) -> int:
        try:
            return len(self.variables) + self.pending.index(key)
        except ValueError:
            raise PatternError(f"no pending centers for filter {key}") from None

    def insert(self, row: Sequence) -> None:
        if self.row_limit is not None and len(self.table) >= self.row_limit:
            raise RowLimitExceeded(
                f"temporal table exceeded {self.row_limit} rows"
            )
        self.table.insert(row)

    def scan(self):
        return self.table.scan()

    @property
    def row_count(self) -> int:
        return len(self.table)

    @property
    def page_count(self) -> int:
        return self.table.page_count

    def __len__(self) -> int:
        return len(self.table)
