"""Physical operators: HPSJ, HPSJ+ Filter/Fetch, selections.

These implement the paper's Algorithms 1 and 2 against a
:class:`~repro.db.database.GraphDatabase`:

* :func:`hpsj` — Algorithm 1: R-join two *base* tables entirely from the
  cluster-based R-join index (per center ``w ∈ W(X,Y)``, the Cartesian
  product ``getF(w,X) × getT(w,Y)``, unioned).  "There is no need to
  access base tables."
* :func:`apply_filter` — the Filter procedure of Algorithm 2 = an
  R-semijoin: for each temporal tuple, ``X_i = getCenters(x_i, X, Y)``
  (Eq. 6); tuples with ``X_i = ∅`` are pruned, survivors carry their
  center sets forward.  One scan can serve several conditions on the same
  scanned variable (Remark 3.1).
* :func:`apply_fetch` — the Fetch procedure: per surviving tuple and
  center, Cartesian-product with the center's labeled T-subcluster (or
  F-subcluster for the mirrored direction), deduplicating per tuple since
  several centers can witness the same partner node.
* :func:`apply_selection` — the self R-join (Eq. 5): test
  ``out(x) ∩ in(y) ≠ ∅`` between two already-bound columns.

Every operator returns an :class:`OperatorMetrics` alongside its output so
the benchmarks can report per-step row counts and pruning rates.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..db.database import GraphDatabase
from .algebra import FilterKey, Side, TemporalTable
from .pattern import Condition, GraphPattern

_name_counter = itertools.count()


def _temp_name(tag: str) -> str:
    return f"{tag}#{next(_name_counter)}"


@dataclass
class OperatorMetrics:
    """Per-operator instrumentation."""

    operator: str
    rows_in: int = 0
    rows_out: int = 0
    centers_probed: int = 0
    nodes_fetched: int = 0

    @property
    def pruned(self) -> int:
        return max(0, self.rows_in - self.rows_out)


# ----------------------------------------------------------------------
# seeds
# ----------------------------------------------------------------------
def seed_scan(
    db: GraphDatabase, pattern: GraphPattern, var: str,
    row_limit: int | None = None,
) -> Tuple[TemporalTable, OperatorMetrics]:
    """Materialize one variable column from its base table extent."""
    label = pattern.label(var)
    output = TemporalTable(
        db.pool, variables=(var,), name=_temp_name("scan"), row_limit=row_limit
    )
    metrics = OperatorMetrics(operator=f"scan({var})")
    for row in db.base_table(label).scan():
        output.insert((row[0],))
        metrics.rows_out += 1
    return output, metrics


def hpsj(
    db: GraphDatabase, pattern: GraphPattern, condition: Condition,
    row_limit: int | None = None,
) -> Tuple[TemporalTable, OperatorMetrics]:
    """Algorithm 1: R-join two base tables via the cluster-based index."""
    src, dst = condition
    x_label, y_label = pattern.condition_labels(condition)
    output = TemporalTable(
        db.pool, variables=(src, dst), name=_temp_name("hpsj"), row_limit=row_limit
    )
    metrics = OperatorMetrics(operator=f"hpsj({src}->{dst})")
    seen: set = set()
    for center in db.join_index.centers(x_label, y_label):
        metrics.centers_probed += 1
        f_nodes = db.join_index.get_f(center, x_label)
        t_nodes = db.join_index.get_t(center, y_label)
        metrics.nodes_fetched += len(f_nodes) + len(t_nodes)
        for x in f_nodes:
            for y in t_nodes:
                pair = (x, y)
                if pair not in seen:
                    seen.add(pair)
                    output.insert(pair)
    metrics.rows_out = len(seen)
    return output, metrics


# ----------------------------------------------------------------------
# HPSJ+ filter / fetch
# ----------------------------------------------------------------------
def apply_filter(
    db: GraphDatabase,
    pattern: GraphPattern,
    table: TemporalTable,
    keys: Sequence[FilterKey],
    row_limit: int | None = None,
) -> Tuple[TemporalTable, OperatorMetrics]:
    """R-semijoin(s) in one shared scan (Filter of Algorithm 2).

    All *keys* must scan the same variable (Remark 3.1); each surviving
    row gains one centers column per key.  A row survives only if *every*
    key yields a non-empty center set — any empty set proves the row can
    never satisfy that reachability condition.
    """
    keys = tuple(keys)
    scanned_vars = {side.scanned_var(cond) for cond, side in keys}
    if len(scanned_vars) != 1:
        raise ValueError(f"shared filter must scan one variable, got {scanned_vars}")
    if len({side for _, side in keys}) != 1:
        raise ValueError(
            "shared filter must use one code side (Remark 3.1 sharing condition)"
        )
    scanned = next(iter(scanned_vars))
    position = table.var_position(scanned)

    output = TemporalTable(
        db.pool,
        variables=table.variables,
        pending=table.pending + keys,
        name=_temp_name("filter"),
        row_limit=row_limit,
    )
    label_pairs = [
        (pattern.condition_labels(cond), side) for cond, side in keys
    ]
    names = ",".join(f"{c[0]}->{c[1]}" for c, _ in keys)
    metrics = OperatorMetrics(operator=f"filter[{scanned}]({names})")
    for row in table.table.scan():
        metrics.rows_in += 1
        node = row[position]
        center_sets: List[Tuple[int, ...]] = []
        alive = True
        for (x_label, y_label), side in label_pairs:
            if side is Side.OUT:
                centers = db.get_centers(node, x_label, y_label)
            else:
                centers = db.get_centers_reverse(node, x_label, y_label)
            if not centers:
                alive = False
                break
            center_sets.append(tuple(sorted(centers)))
        if alive:
            output.insert(tuple(row) + tuple(center_sets))
            metrics.rows_out += 1
    return output, metrics


def apply_fetch(
    db: GraphDatabase,
    pattern: GraphPattern,
    table: TemporalTable,
    condition: Condition,
    side: Side,
    row_limit: int | None = None,
) -> Tuple[TemporalTable, OperatorMetrics]:
    """Fetch of Algorithm 2: materialize the condition's other variable.

    Consumes the pending centers column written by the matching Filter.
    Per row, the new column's values are the union over the row's centers
    of the center's labeled T-subcluster (``Side.OUT``) or F-subcluster
    (``Side.IN``); the union is deduplicated because one partner node may
    be witnessed by several centers.
    """
    key: FilterKey = (condition, side)
    centers_position = table.pending_position(key)
    new_var = side.fetched_var(condition)
    x_label, y_label = pattern.condition_labels(condition)
    fetch_label = y_label if side is Side.OUT else x_label

    remaining = tuple(k for k in table.pending if k != key)
    # positions of the surviving pending columns in the input rows
    keep_positions = [
        table.pending_position(k) for k in table.pending if k != key
    ]
    var_count = len(table.variables)

    output = TemporalTable(
        db.pool,
        variables=table.variables + (new_var,),
        pending=remaining,
        name=_temp_name("fetch"),
        row_limit=row_limit,
    )
    src, dst = condition
    metrics = OperatorMetrics(operator=f"fetch({src}->{dst})[{side.value}]")
    # Per-operator memo of subcluster contents: the paper's IO_rji is an
    # *average per retrieved node* precisely because a center's leaf stays
    # pinned while its subcluster is consumed — re-descending the index for
    # every (row, center) pair would overcharge the fetch by the tree height.
    subcluster_cache: Dict[int, Tuple[int, ...]] = {}
    for row in table.table.scan():
        metrics.rows_in += 1
        base = tuple(row[:var_count])
        carried = tuple(row[p] for p in keep_positions)
        seen_partners: set = set()
        for center in row[centers_position]:
            metrics.centers_probed += 1
            partners = subcluster_cache.get(center)
            if partners is None:
                if side is Side.OUT:
                    partners = db.join_index.get_t(center, fetch_label)
                else:
                    partners = db.join_index.get_f(center, fetch_label)
                subcluster_cache[center] = partners
            metrics.nodes_fetched += len(partners)
            for partner in partners:
                if partner not in seen_partners:
                    seen_partners.add(partner)
                    output.insert(base + (partner,) + carried)
                    metrics.rows_out += 1
    return output, metrics


def apply_selection(
    db: GraphDatabase,
    pattern: GraphPattern,
    table: TemporalTable,
    condition: Condition,
    row_limit: int | None = None,
) -> Tuple[TemporalTable, OperatorMetrics]:
    """Self R-join (Eq. 5): keep rows with ``out(x) ∩ in(y) ≠ ∅``.

    Both variables are already bound; the check costs two graph-code
    retrievals per row (the ``2·(IO_B + IO_X)·|T_R|`` term of Section 4),
    amortized by the working cache.
    """
    src, dst = condition
    src_position = table.var_position(src)
    dst_position = table.var_position(dst)
    output = TemporalTable(
        db.pool,
        variables=table.variables,
        pending=table.pending,
        name=_temp_name("select"),
        row_limit=row_limit,
    )
    metrics = OperatorMetrics(operator=f"select({src}->{dst})")
    for row in table.table.scan():
        metrics.rows_in += 1
        if db.reaches(row[src_position], row[dst_position]):
            output.insert(row)
            metrics.rows_out += 1
    return output, metrics
