"""Functional facade over the physical operators (compatibility shim).

The operator *logic* — HPSJ, HPSJ+ Filter/Fetch, selections — lives in
:mod:`repro.query.physical.operators` as Volcano-style classes shared by
both drivers.  This module keeps the original one-shot functional API
(used by the benchmarks and the operator-level tests): each function
instantiates the matching physical operator, drains it into a
:class:`~repro.query.algebra.TemporalTable`, and returns the table along
with the operator's :class:`OperatorMetrics`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..db.database import GraphDatabase
from .algebra import FilterKey, Side, TemporalTable
from .pattern import Condition, GraphPattern
from .physical.context import ExecutionContext, OperatorMetrics, RowLayout, temp_name
from .physical.operators import (
    FetchOp,
    PhysicalOperator,
    SeedJoinOp,
    SeedScanOp,
    SelectionOp,
    SharedFilterOp,
)

__all__ = [
    "OperatorMetrics",
    "seed_scan",
    "hpsj",
    "apply_filter",
    "apply_fetch",
    "apply_selection",
]


def _context(
    db: GraphDatabase, pattern: GraphPattern, row_limit: Optional[int]
) -> ExecutionContext:
    return ExecutionContext(db=db, pattern=pattern, row_limit=row_limit)


def _drain(
    db: GraphDatabase, op: PhysicalOperator, source=None
) -> Tuple[TemporalTable, OperatorMetrics]:
    """Materialize one operator's output stream into a temporal table."""
    output = TemporalTable.from_layout(db.pool, op.layout, name=temp_name(op.name))
    for row in op.rows(source):
        output.insert(row)
    return output, op.metrics


def _layout_of(table: TemporalTable) -> RowLayout:
    return RowLayout(table.variables, table.pending)


def seed_scan(
    db: GraphDatabase, pattern: GraphPattern, var: str,
    row_limit: Optional[int] = None,
) -> Tuple[TemporalTable, OperatorMetrics]:
    """Materialize one variable column from its base table extent."""
    return _drain(db, SeedScanOp(_context(db, pattern, row_limit), var))


def hpsj(
    db: GraphDatabase, pattern: GraphPattern, condition: Condition,
    row_limit: Optional[int] = None,
) -> Tuple[TemporalTable, OperatorMetrics]:
    """Algorithm 1: R-join two base tables via the cluster-based index."""
    return _drain(db, SeedJoinOp(_context(db, pattern, row_limit), condition))


def apply_filter(
    db: GraphDatabase,
    pattern: GraphPattern,
    table: TemporalTable,
    keys: Sequence[FilterKey],
    row_limit: Optional[int] = None,
) -> Tuple[TemporalTable, OperatorMetrics]:
    """R-semijoin(s) in one shared scan (Filter of Algorithm 2)."""
    op = SharedFilterOp(_context(db, pattern, row_limit), _layout_of(table), keys)
    return _drain(db, op, table.scan())


def apply_fetch(
    db: GraphDatabase,
    pattern: GraphPattern,
    table: TemporalTable,
    condition: Condition,
    side: Side,
    row_limit: Optional[int] = None,
) -> Tuple[TemporalTable, OperatorMetrics]:
    """Fetch of Algorithm 2: materialize the condition's other variable."""
    op = FetchOp(
        _context(db, pattern, row_limit), _layout_of(table), condition, side
    )
    return _drain(db, op, table.scan())


def apply_selection(
    db: GraphDatabase,
    pattern: GraphPattern,
    table: TemporalTable,
    condition: Condition,
    row_limit: Optional[int] = None,
) -> Tuple[TemporalTable, OperatorMetrics]:
    """Self R-join (Eq. 5): keep rows with ``out(x) ∩ in(y) ≠ ∅``."""
    op = SelectionOp(_context(db, pattern, row_limit), _layout_of(table), condition)
    return _drain(db, op, table.scan())
