"""Pipelined plan execution: stream rows instead of materializing tables.

The paper's HPSJ+ materializes every intermediate ("stores them into
T_W"), which is what the default executor does and what the cost model
prices.  A classic engine alternative is to *pipeline*: each operator
pulls rows from its child lazily, no temporal table ever hits the storage
engine, and a ``LIMIT`` stops all upstream work the moment enough output
exists.

:func:`execute_plan_streaming` interprets exactly the same validated
:class:`~repro.query.algebra.Plan` objects as the materializing executor
— same operators, same semantics, same results — so the two form a clean
ablation pair (``benchmarks/bench_ablations.py``).  The trade-offs are
the textbook ones: pipelining wins when results are consumed partially
(LIMIT, EXISTS-style checks) or when intermediates are large relative to
the buffer; materialization wins when an intermediate is scanned several
times (which left-deep R-join plans never do).

Duplicate-free guarantee: the streaming operators mirror the
deduplication of their materializing counterparts (HPSJ's pair set and
Fetch's per-row partner set), so the output row *set* is identical.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..db.database import GraphDatabase
from .algebra import (
    FetchStep,
    FilterKey,
    FilterStep,
    Plan,
    SeedJoin,
    SeedScan,
    SelectionStep,
    Side,
)
from .pattern import GraphPattern

Row = Tuple[int, ...]


class _Layout:
    """Tracks which columns a streaming row currently has.

    Mirrors :class:`TemporalTable`'s layout (variables first, then one
    centers column per pending filter) without any storage behind it.
    """

    def __init__(self, variables: Sequence[str], pending: Sequence[FilterKey] = ()):
        self.variables: Tuple[str, ...] = tuple(variables)
        self.pending: Tuple[FilterKey, ...] = tuple(pending)

    def var_position(self, var: str) -> int:
        return self.variables.index(var)

    def pending_position(self, key: FilterKey) -> int:
        return len(self.variables) + self.pending.index(key)


def _seed_scan(db: GraphDatabase, pattern: GraphPattern, var: str):
    label = pattern.label(var)

    def rows() -> Iterator[Row]:
        for row in db.base_table(label).scan():
            yield (row[0],)

    return rows(), _Layout((var,))


def _seed_join(db: GraphDatabase, pattern: GraphPattern, condition):
    x_label, y_label = pattern.condition_labels(condition)

    def rows() -> Iterator[Row]:
        seen = set()
        for center in db.join_index.centers(x_label, y_label):
            f_nodes = db.join_index.get_f(center, x_label)
            t_nodes = db.join_index.get_t(center, y_label)
            for x in f_nodes:
                for y in t_nodes:
                    if (x, y) not in seen:
                        seen.add((x, y))
                        yield (x, y)

    return rows(), _Layout(condition)


def _filter(db, pattern, source, layout: _Layout, keys: Tuple[FilterKey, ...]):
    scanned = {side.scanned_var(cond) for cond, side in keys}
    if len(scanned) != 1 or len({side for _, side in keys}) != 1:
        raise ValueError("shared filter must scan one variable with one side")
    position = layout.var_position(next(iter(scanned)))
    label_pairs = [(pattern.condition_labels(cond), side) for cond, side in keys]

    def rows() -> Iterator[Row]:
        for row in source:
            node = row[position]
            centers_columns: List[Tuple[int, ...]] = []
            alive = True
            for (x_label, y_label), side in label_pairs:
                if side is Side.OUT:
                    centers = db.get_centers(node, x_label, y_label)
                else:
                    centers = db.get_centers_reverse(node, x_label, y_label)
                if not centers:
                    alive = False
                    break
                centers_columns.append(tuple(sorted(centers)))
            if alive:
                yield tuple(row) + tuple(centers_columns)

    return rows(), _Layout(layout.variables, layout.pending + keys)


def _fetch(db, pattern, source, layout: _Layout, condition, side: Side):
    key: FilterKey = (condition, side)
    centers_position = layout.pending_position(key)
    new_var = side.fetched_var(condition)
    x_label, y_label = pattern.condition_labels(condition)
    fetch_label = y_label if side is Side.OUT else x_label
    remaining = tuple(k for k in layout.pending if k != key)
    keep_positions = [layout.pending_position(k) for k in remaining]
    var_count = len(layout.variables)
    subcluster_cache: Dict[int, Tuple[int, ...]] = {}

    def rows() -> Iterator[Row]:
        for row in source:
            base = tuple(row[:var_count])
            carried = tuple(row[p] for p in keep_positions)
            seen = set()
            for center in row[centers_position]:
                partners = subcluster_cache.get(center)
                if partners is None:
                    if side is Side.OUT:
                        partners = db.join_index.get_t(center, fetch_label)
                    else:
                        partners = db.join_index.get_f(center, fetch_label)
                    subcluster_cache[center] = partners
                for partner in partners:
                    if partner not in seen:
                        seen.add(partner)
                        yield base + (partner,) + carried

    return rows(), _Layout(layout.variables + (new_var,), remaining)


def _selection(db, pattern, source, layout: _Layout, condition):
    src_position = layout.var_position(condition[0])
    dst_position = layout.var_position(condition[1])

    def rows() -> Iterator[Row]:
        for row in source:
            if db.reaches(row[src_position], row[dst_position]):
                yield row

    return rows(), layout


def execute_plan_streaming(
    db: GraphDatabase,
    plan: Plan,
    limit: Optional[int] = None,
) -> Iterator[Row]:
    """Yield projected result rows lazily; stop early at *limit*.

    The plan is validated first; unsupported step sequences fail before
    any row is produced.
    """
    plan.validate()
    pattern = plan.pattern

    source: Optional[Iterator[Row]] = None
    layout: Optional[_Layout] = None
    for step in plan.steps:
        if isinstance(step, SeedScan):
            source, layout = _seed_scan(db, pattern, step.var)
        elif isinstance(step, SeedJoin):
            source, layout = _seed_join(db, pattern, step.condition)
        elif isinstance(step, FilterStep):
            source, layout = _filter(db, pattern, source, layout, step.keys)
        elif isinstance(step, FetchStep):
            source, layout = _fetch(
                db, pattern, source, layout, step.condition, step.side
            )
        elif isinstance(step, SelectionStep):
            source, layout = _selection(db, pattern, source, layout, step.condition)
        else:  # pragma: no cover - Plan.validate rejects unknown steps
            raise TypeError(f"unknown plan step {step!r}")

    positions = [layout.var_position(var) for var in pattern.variables]
    projected = (tuple(row[p] for p in positions) for row in source)
    if limit is not None:
        projected = itertools.islice(projected, limit)
    return projected
