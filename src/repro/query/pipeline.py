"""Pipelined (streaming) plan execution (compatibility shim).

The streaming driver — chain the physical operators' generators so no
temporal table ever hits the storage engine, with LIMIT pushdown — lives
in :mod:`repro.query.physical.drivers` next to its materializing twin.
This module preserves the historical import path
(``repro.query.pipeline``) for :func:`execute_plan_streaming` and the
:class:`StreamingResult` it returns; because both drivers run the same
operator instances, streaming now supports ``row_limit`` and
``verify=True`` and reports per-operator metrics identical to the
materializing driver's once fully drained.
"""

from .physical.drivers import StreamingResult, execute_plan_streaming

__all__ = ["StreamingResult", "execute_plan_streaming"]
