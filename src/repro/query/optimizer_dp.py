"""DP — R-join order selection by dynamic programming (paper Section 4.1).

This optimizer considers *R-joins only* (no standalone R-semijoins): a
status is the set of pattern edges already evaluated, and a move adds one
more edge — as a full HPSJ+ R-join (Filter immediately followed by Fetch)
when it binds a new variable, or as a self R-join selection (Eq. 5) when
both endpoints are already bound.  The search enumerates left-deep trees,
seeding with an HPSJ between two base tables (the paper's R-join-move is
"only allowed to move from the initial status S_0").

States are memoized per edge subset; among plans reaching the same subset
the cheapest is kept (the standard DP assumption the paper also makes).
The search space is bounded by O(2^m) for m pattern edges.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from .algebra import FetchStep, FilterStep, Plan, PlanStep, SeedJoin, SeedScan, Side
from .algebra import SelectionStep
from .costmodel import CostModel
from .pattern import Condition, GraphPattern


@dataclass
class OptimizedPlan:
    """A plan with its estimated cost and cardinality."""

    plan: Plan
    estimated_cost: float
    estimated_rows: float


def _bound_vars(done: FrozenSet[Condition]) -> FrozenSet[str]:
    bound = set()
    for src, dst in done:
        bound.add(src)
        bound.add(dst)
    return frozenset(bound)


def optimize_dp(pattern: GraphPattern, model: CostModel) -> OptimizedPlan:
    """Find the minimum-estimated-cost R-join-only left-deep plan."""
    if pattern.node_count == 1:
        var = pattern.variables[0]
        plan = Plan(pattern, [SeedScan(var)])
        plan.validate()
        rows = float(model.extent_size(var))
        return OptimizedPlan(plan, model.scan_cost(rows), rows)

    all_conditions = frozenset(pattern.conditions)
    # best[state] = (cost, rows, steps)
    best: Dict[FrozenSet[Condition], Tuple[float, float, List[PlanStep]]] = {}
    for condition in pattern.conditions:
        rows = model.base_join_size(condition)
        cost = model.hpsj_cost(condition) + model.materialize_cost(rows)
        state = frozenset([condition])
        candidate = (cost, rows, [SeedJoin(condition)])
        if state not in best or candidate[0] < best[state][0]:
            best[state] = candidate

    # expand states in order of subset size (left-deep: one edge per move)
    frontier = sorted(best, key=len)
    index = 0
    while index < len(frontier):
        state = frontier[index]
        index += 1
        cost, rows, steps = best[state]
        if best[state][0] < cost:  # superseded entry
            continue
        bound = _bound_vars(state)
        for condition in all_conditions - state:
            src, dst = condition
            src_bound, dst_bound = src in bound, dst in bound
            if not (src_bound or dst_bound):
                continue  # left-deep plans stay connected
            if src_bound and dst_bound:
                new_rows = rows * model.selection_selectivity(condition)
                step_cost = (
                    model.selection_cost(rows, False, False)
                    + model.materialize_cost(new_rows)
                )
                new_steps = steps + [SelectionStep(condition)]
            else:
                side = Side.OUT if src_bound else Side.IN
                survival = model.filter_survival(condition, side is Side.OUT)
                surviving = rows * survival
                new_rows = rows * model.join_fanout(condition, side is Side.OUT)
                step_cost = (
                    model.filter_cost(rows, 1, code_cached=False)
                    + model.materialize_cost(surviving)  # the T_W intermediate
                    + model.fetch_cost(surviving, new_rows)
                    + model.materialize_cost(new_rows)
                )
                new_steps = steps + [
                    FilterStep(((condition, side),)),
                    FetchStep(condition, side),
                ]
            new_state = state | {condition}
            candidate = (cost + step_cost, new_rows, new_steps)
            if new_state not in best or candidate[0] < best[new_state][0]:
                previously_known = new_state in best
                best[new_state] = candidate
                if not previously_known:
                    frontier.append(new_state)

    final = best.get(all_conditions)
    if final is None:  # pragma: no cover - connected patterns always complete
        raise RuntimeError("DP failed to cover all conditions")
    total_cost, total_rows, steps = final
    plan = Plan(pattern, steps)
    plan.validate()
    return OptimizedPlan(plan, total_cost, total_rows)


def optimize_greedy(pattern: GraphPattern, model: CostModel) -> OptimizedPlan:
    """Greedy baseline: always take the locally cheapest next move.

    Not in the paper; used by tests and ablations as a sanity competitor
    for the two DP variants.
    """
    if pattern.node_count == 1:
        return optimize_dp(pattern, model)
    seed = min(pattern.conditions, key=model.base_join_size)
    rows = model.base_join_size(seed)
    cost = model.hpsj_cost(seed) + model.materialize_cost(rows)
    steps: List[PlanStep] = [SeedJoin(seed)]
    done = {seed}
    bound = {seed[0], seed[1]}
    while len(done) < pattern.edge_count:
        candidates = []
        for condition in pattern.conditions:
            if condition in done:
                continue
            src, dst = condition
            if src in bound and dst in bound:
                new_rows = rows * model.selection_selectivity(condition)
                move_cost = (
                    model.selection_cost(rows, False, False)
                    + model.materialize_cost(new_rows)
                )
                heapq.heappush(
                    candidates,
                    (move_cost, str(condition), condition, None, new_rows),
                )
            elif src in bound or dst in bound:
                side = Side.OUT if src in bound else Side.IN
                survival = model.filter_survival(condition, side is Side.OUT)
                new_rows = rows * model.join_fanout(condition, side is Side.OUT)
                move_cost = (
                    model.filter_cost(rows, 1, code_cached=False)
                    + model.materialize_cost(rows * survival)
                    + model.fetch_cost(rows * survival, new_rows)
                    + model.materialize_cost(new_rows)
                )
                heapq.heappush(
                    candidates,
                    (move_cost, str(condition), condition, side, new_rows),
                )
        move_cost, _, condition, side, new_rows = heapq.heappop(candidates)
        if side is None:
            steps.append(SelectionStep(condition))
        else:
            steps.append(FilterStep(((condition, side),)))
            steps.append(FetchStep(condition, side))
            bound.add(side.fetched_var(condition))
        done.add(condition)
        cost += move_cost
        rows = new_rows
    plan = Plan(pattern, steps)
    plan.validate()
    return OptimizedPlan(plan, cost, rows)
