"""JoinGraph — the pattern's R-join conditions as an explicit graph.

The optimizers so far treated a pattern as a bag of conditions; for
routing between plan families the *shape* of the condition graph is what
matters.  :class:`JoinGraph` views variables as nodes and R-join
conditions as (undirected) edges and answers the structural questions
the worst-case-optimal path needs:

* **cycle detection** — a connected pattern is cyclic exactly when it
  has more conditions than ``|variables| - 1`` (mutual-reachability
  pairs ``a -> b, b -> a`` count as a two-edge cycle).  Acyclic join
  graphs are routed to the existing DP/DPS left-deep optimizers
  unchanged; cyclic ones are where left-deep plans can materialize
  intermediates asymptotically larger than the output.
* **articulation / bridge detection** (Tarjan low-link) — articulation
  variables separate the cyclic cores from tree-shaped appendages
  (e.g. the tail of a cycle-with-tail pattern); bridges are the
  conditions no cycle passes through.
* **constraint keying** — for a variable elimination order, every
  condition must be enforced at the step that eliminates its *later*
  endpoint, as a ``(condition, Side)`` key whose ``fetched_var`` is that
  endpoint (``Side.OUT`` when the bound endpoint is the source,
  ``Side.IN`` when it is the target).  :meth:`incident_constraints` and
  :meth:`constraints_toward` produce exactly these keys.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from .algebra import FilterKey, Side
from .pattern import Condition, GraphPattern


class JoinGraph:
    """Variables as nodes, R-join conditions as edges (undirected view)."""

    def __init__(self, pattern: GraphPattern) -> None:
        self.pattern = pattern
        self.variables: Tuple[str, ...] = pattern.variables
        self.conditions: Tuple[Condition, ...] = pattern.conditions
        self._adjacency: Dict[str, List[Tuple[str, int]]] = {
            var: [] for var in self.variables
        }
        for index, (src, dst) in enumerate(self.conditions):
            self._adjacency[src].append((dst, index))
            self._adjacency[dst].append((src, index))

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        return len(self.variables)

    @property
    def edge_count(self) -> int:
        return len(self.conditions)

    @property
    def cycle_rank(self) -> int:
        """Independent cycles of the (connected) join graph: ``m - n + 1``."""
        return self.edge_count - (self.node_count - 1)

    @property
    def is_cyclic(self) -> bool:
        """True when any cycle exists — the trigger for the WCOJ path."""
        return self.cycle_rank > 0

    def neighbors(self, var: str) -> FrozenSet[str]:
        """Variables joined to *var* by any condition (either direction)."""
        return frozenset(other for other, _ in self._adjacency[var])

    def degree(self, var: str) -> int:
        """Conditions incident to *var* (multi-edges counted separately)."""
        return len(self._adjacency[var])

    # ------------------------------------------------------------------
    # articulation points and bridges (iterative Tarjan low-link)
    # ------------------------------------------------------------------
    def _lowlink(self) -> Tuple[Set[str], Set[int]]:
        """One DFS computing both articulation variables and bridge edges.

        Treats the join graph as a multigraph: parallel conditions
        (``a -> b`` and ``b -> a``) are distinct edges, so neither is a
        bridge and neither endpoint is articulation because of them.
        """
        disc: Dict[str, int] = {}
        low: Dict[str, int] = {}
        articulation: Set[str] = set()
        bridges: Set[int] = set()
        counter = 0
        for root in self.variables:
            if root in disc:
                continue
            root_children = 0
            # stack frames: (var, incoming edge id, iterator position)
            stack: List[Tuple[str, int, int]] = [(root, -1, 0)]
            disc[root] = low[root] = counter
            counter += 1
            while stack:
                var, in_edge, position = stack[-1]
                edges = self._adjacency[var]
                if position < len(edges):
                    stack[-1] = (var, in_edge, position + 1)
                    other, edge_id = edges[position]
                    if edge_id == in_edge:
                        continue  # don't climb back up the tree edge
                    if other in disc:
                        low[var] = min(low[var], disc[other])
                        continue
                    disc[other] = low[other] = counter
                    counter += 1
                    if var == root:
                        root_children += 1
                    stack.append((other, edge_id, 0))
                else:
                    stack.pop()
                    if stack:
                        parent = stack[-1][0]
                        low[parent] = min(low[parent], low[var])
                        if low[var] > disc[parent]:
                            bridges.add(in_edge)
                        if parent != root and low[var] >= disc[parent]:
                            articulation.add(parent)
            if root_children > 1:
                articulation.add(root)
        return articulation, bridges

    def articulation_points(self) -> FrozenSet[str]:
        """Variables whose removal disconnects the join graph."""
        articulation, _ = self._lowlink()
        return frozenset(articulation)

    def bridges(self) -> FrozenSet[Condition]:
        """Conditions that lie on no cycle."""
        _, bridge_ids = self._lowlink()
        return frozenset(self.conditions[i] for i in bridge_ids)

    def cyclic_core(self) -> FrozenSet[str]:
        """Variables lying on at least one cycle (endpoints of non-bridges)."""
        _, bridge_ids = self._lowlink()
        core: Set[str] = set()
        for index, (src, dst) in enumerate(self.conditions):
            if index not in bridge_ids:
                core.add(src)
                core.add(dst)
        return frozenset(core)

    # ------------------------------------------------------------------
    # constraint keying for elimination orders
    # ------------------------------------------------------------------
    def _key_for(self, condition: Condition, var: str) -> FilterKey:
        """The (condition, Side) key under which a step binds *var*."""
        src, dst = condition
        if var == dst:
            return (condition, Side.OUT)
        if var == src:
            return (condition, Side.IN)
        raise ValueError(f"condition {condition} does not touch {var!r}")

    def incident_constraints(self, var: str) -> Tuple[FilterKey, ...]:
        """Every condition touching *var*, keyed to bind *var*.

        These are the :class:`~repro.query.algebra.MultiwaySeed`
        constraints: the seed variable's domain is the intersection of
        the per-condition W-projections onto *var*.
        """
        return tuple(
            self._key_for(condition, var)
            for condition in self.conditions
            if var in condition
        )

    def constraints_toward(
        self, var: str, bound: Iterable[str]
    ) -> Tuple[FilterKey, ...]:
        """Conditions between *var* and the already-bound variables.

        These are the :class:`~repro.query.algebra.MultiwayStep`
        constraints for eliminating *var* after *bound*: each is keyed so
        its scanned endpoint is bound and its fetched endpoint is *var*.
        """
        bound_set = set(bound)
        keys = []
        for condition in self.conditions:
            src, dst = condition
            if var == dst and src in bound_set:
                keys.append((condition, Side.OUT))
            elif var == src and dst in bound_set:
                keys.append((condition, Side.IN))
        return tuple(keys)


__all__ = ["JoinGraph"]
