"""Morsel-driven parallel execution for the R-join hot path.

The paper's operators decompose into independent work units: HPSJ's seed
join is a union over per-center Cartesian products ``getF(w,X) ×
getT(w,Y)`` for ``w ∈ W(X,Y)`` (Eq. 6, Algorithm 1), and HPSJ+'s
Filter/Fetch procedures probe each temporal tuple independently (Eqs.
7-9, Algorithm 2).  This module schedules those units as *morsels* —
fixed-size slices of the center worklist or of a stage's input rows —
over a reusable worker pool, in the spirit of morsel-driven query
engines:

* :class:`WorkerPool` — the pool itself.  The default backend on
  platforms with ``fork`` is a ``ProcessPoolExecutor`` whose workers
  inherit the read-only database by copy-on-write (nothing is pickled
  for the index; only plans, morsels and result rows cross the process
  boundary).  When the database is snapshot-backed, process workers
  instead ``Snapshot.open`` the same file by path (a tiny picklable
  descriptor ships through the initializer, never the database), so
  every worker maps the identical bytes and the OS page cache is shared
  across the whole pool — and the ``spawn`` start method becomes viable
  (the ``spawn`` backend *requires* a snapshot-backed database, since it
  has no fork inheritance to fall back on).  A snapshot-bound pool
  registers itself as a holder on the snapshot
  (:meth:`~repro.storage.snapshot.Snapshot.acquire`), so closing the
  snapshot while the pool lives raises a clean ``SnapshotError`` naming
  the pool instead of poisoning worker queries mid-flight.  The
  ``thread`` backend is the portable fallback: the storage engine
  (buffer pool LRU, B+-tree page table) is not thread-safe, so
  thread-backend morsels serialize on a pool-level lock — it exercises
  the identical scheduling/merging machinery and keeps the feature
  usable where ``fork`` does not exist, but cannot speed up CPU-bound
  work under the GIL.
* :class:`ParallelExecution` — one plan execution: stage by stage it
  partitions the work, submits morsels, and merges results *in morsel
  order*.  Because every stage maps input rows to output rows
  order-preservingly (and the seed join's cross-morsel deduplication is
  replayed by the coordinator in worklist order), the merged output is
  byte-identical to the sequential oracle — row for row, not merely as
  a set.  Per-worker ``OperatorMetrics`` counters, I/O deltas and
  :class:`CenterCache` counters are folded into the coordinator's
  :class:`~repro.query.physical.drivers.RunMetrics` deterministically.

Determinism and parity guarantees (relied on by the differential tests):

* result rows equal the sequential drivers' rows, in the same order;
* ``rows_in``/``centers_probed``/``nodes_fetched`` per operator equal
  the sequential values exactly (each (row, center) unit is charged in
  exactly one morsel); ``rows_out`` is recounted by the coordinator on
  the merged stream, so it too matches;
* a stage whose work fits one morsel runs inline in the coordinator —
  ``workers=1`` (or no pool) never touches this module at all.

Early termination: the streaming driver's consumer may abandon the
result iterator at any time.  :meth:`ParallelExecution.finish` then sets
``cancel_event``, cancels every not-yet-running morsel, and (for
transient pools) shuts the pool down; engine-owned pools survive for the
next query.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from concurrent.futures import (
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait as futures_wait,
)
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from ...db.database import GraphDatabase
from ...storage.stats import IOStats, active_stats
from ..algebra import Plan, RowLimitExceeded
from .cache import CenterCache
from .context import DEFAULT_MORSEL_SIZE, ExecutionContext
from .multiway import MultiwaySeedOp
from .operators import (
    PhysicalOperator,
    ProjectOp,
    Row,
    SeedJoinOp,
    SeedScanOp,
    build_pipeline,
)

#: the pool backends; "process" needs the fork start method, "spawn"
#: needs a snapshot-backed database (workers re-open the file by path)
BACKENDS = ("process", "thread", "spawn")

#: centers are heavier units than rows (each expands a Cartesian
#: product), so center morsels are this many times smaller
CENTER_MORSEL_DIVISOR = 16


def fork_available() -> bool:
    """True when the platform offers the fork start method (Linux/macOS)."""
    return "fork" in multiprocessing.get_all_start_methods()


def default_backend() -> str:
    """Process pool where fork exists, thread pool elsewhere."""
    return "process" if fork_available() else "thread"


def center_morsel_size(morsel_size: int) -> int:
    """Centers per seed-join morsel for a given row morsel size."""
    return max(1, morsel_size // CENTER_MORSEL_DIVISOR)


# ----------------------------------------------------------------------
# worker-side entry points
# ----------------------------------------------------------------------
# The database handle forked workers operate on.  It is installed by the
# pool initializer, whose arguments reach the child through fork memory
# inheritance (never pickled) — see WorkerPool.
_WORKER_DB: Optional[GraphDatabase] = None


def _init_worker(db: GraphDatabase) -> None:
    global _WORKER_DB
    _WORKER_DB = db


def _init_snapshot_worker(descriptor: Tuple) -> None:
    """Open the pool's snapshot file inside this worker process.

    *descriptor* is ``GraphDatabase.snapshot_descriptor()``: just a path
    plus scalar configuration, picklable under any start method.  Every
    worker maps the same on-disk bytes, so the OS page cache backs the
    whole pool with one copy — nothing database-sized ever crosses the
    process boundary.
    """
    global _WORKER_DB
    # imported lazily: only workers of snapshot-bound pools need it
    from ...storage.snapshot import Snapshot

    (path, generation, buffer_bytes, page_size,
     code_cache_enabled, use_views) = descriptor
    db = GraphDatabase.from_snapshot(
        Snapshot.open(path),
        buffer_bytes=buffer_bytes,
        page_size=page_size,
        code_cache_enabled=code_cache_enabled,
        use_views=use_views,
    )
    # align with the coordinator's generation so cache sync and the
    # sanitizer's generation assertions agree across the pool
    db.index_generation = generation
    _WORKER_DB = db


# payload = (plan, stage_index, batch_size, use_cache, kind, data, sanitize)
Payload = Tuple[Plan, int, Optional[int], bool, str, Sequence, bool]
StageResult = Tuple[
    List[Row],
    Tuple[int, int, int, int],
    IOStats,
    Optional[Tuple[int, int, int]],
]


def _run_stage(payload: Payload, db: Optional[GraphDatabase] = None) -> StageResult:
    """Execute one morsel of one stage; runs inside a pool worker.

    Rebuilds the operator pipeline from the (pickled) plan — operator
    construction is a few dict lookups, negligible against a morsel's
    probes — and runs only the addressed stage.  ``row_limit`` is *not*
    applied here: the coordinator enforces it on the merged stream, so a
    limit violation is detected at the same global row count as in the
    sequential drivers.
    """
    plan, stage_index, batch_size, use_cache, kind, data, sanitize = payload
    if db is None:
        db = _WORKER_DB
    if db is None:  # pragma: no cover - defensive: initializer not run
        raise RuntimeError("worker has no database handle")
    guard = None
    if sanitize:
        # imported lazily: the analysis layer depends on the query
        # layer, not the other way around
        from ...analysis.sanitizer import SharedStateGuard

        guard = SharedStateGuard.capture(db, plan)
    cache = CenterCache() if use_cache else None
    ctx = ExecutionContext(
        db=db, pattern=plan.pattern, batch_size=batch_size,
        center_cache=cache, sanitize=sanitize,
    )
    operators, _project = build_pipeline(ctx, plan)
    op = operators[stage_index]
    io_before = db.stats.snapshot()
    if kind == "centers":
        assert isinstance(op, SeedJoinOp)
        rows = list(op.rows_for_centers(data))
    else:
        rows = list(op.rows(iter(data)))
    m = op.metrics
    counters = (m.rows_in, m.rows_out, m.centers_probed, m.nodes_fetched)
    io_delta = db.stats.delta_since(io_before)
    cache_counts = cache.snapshot() if cache is not None else None
    if guard is not None:
        guard.verify(
            db, plan,
            where=f"stage {stage_index} ({kind} morsel)",
            cache=cache,
        )
    return rows, counters, io_delta, cache_counts


def _locked_stage(
    lock: threading.Lock, payload: Payload, db: GraphDatabase
) -> StageResult:
    """Thread-backend task wrapper: morsels take the pool-level lock for
    their whole body so their shared-stats I/O deltas stay clean (the
    GIL keeps thread morsels from running truly in parallel anyway;
    scheduling machinery still overlaps with coordinator merge)."""
    with lock:
        return _run_stage(payload, db)


# ----------------------------------------------------------------------
# whole-query dispatch (the service's process-dispatch mode)
# ----------------------------------------------------------------------
# The per-process engine wrapped around _WORKER_DB, built lazily on the
# first query task.  One engine per worker process: its plan cache,
# CenterCache and code cache warm up across the queries routed here,
# mirroring the coordinator engine's amortization — per process instead
# of per service.
_WORKER_ENGINE = None

# payload = (pattern, optimizer, limit, row_limit, batch_size, timeout_s)
QueryPayload = Tuple[
    str, str, Optional[int], Optional[int], Optional[int], Optional[float]
]
# result = (columns, rows, truncated, stop_reason,
#           (cache hits, misses, evictions), (exec start, exec end))
QueryTaskResult = Tuple[
    Tuple[str, ...],
    List[Row],
    bool,
    Optional[str],
    Tuple[int, int, int],
    Tuple[float, float],
]


def _run_query_task(payload: QueryPayload) -> QueryTaskResult:
    """Execute one whole admitted query inside a pool worker.

    The service's process-dispatch mode routes entire queries here —
    plan, execute, project — so ``max_inflight`` slots occupy
    ``max_inflight`` *cores*, not one GIL.  Only the payload (a pattern
    string plus scalars) and the result rows cross the process boundary;
    the worker re-opened the snapshot by descriptor at pool start.

    The execution span is measured with ``time.monotonic`` — on Linux a
    system-wide clock, so spans from different worker processes are
    directly comparable (the overlapping-exec-windows test rides this).
    """
    global _WORKER_ENGINE
    db = _WORKER_DB
    if db is None:  # pragma: no cover - defensive: initializer not run
        raise RuntimeError("worker has no database handle")
    engine = _WORKER_ENGINE
    if engine is None or engine.db is not db:
        # imported lazily: engine imports this module at load time
        from ...query.engine import GraphEngine

        engine = GraphEngine.from_database(db)
        _WORKER_ENGINE = engine
    pattern, optimizer, limit, row_limit, batch_size, timeout_s = payload
    started = time.monotonic()
    stream = engine.match_iter(
        pattern,
        optimizer=optimizer,
        limit=limit,
        row_limit=row_limit,
        batch_size=batch_size,
        timeout=timeout_s,
    )
    try:
        rows = list(stream)
    finally:
        stream.close()
    ended = time.monotonic()
    cache = stream.metrics.center_cache
    counts = (
        (cache.hits, cache.misses, cache.evictions)
        if cache is not None
        else (0, 0, 0)
    )
    return (
        stream.columns,
        rows,
        stream.metrics.truncated,
        stream.metrics.stop_reason,
        counts,
        (started, ended),
    )


# ----------------------------------------------------------------------
# the pool
# ----------------------------------------------------------------------
class WorkerPool:
    """A reusable morsel-execution pool bound to one database snapshot.

    ``process`` backend: a fork-context ``ProcessPoolExecutor``.  For a
    snapshot-backed database the initializer ships the snapshot
    *descriptor* (path + scalar config) and each worker re-opens the file
    itself — all workers map the same bytes, shared by the OS page
    cache.  Otherwise the initializer hands each worker the database
    object through fork memory inheritance, so workers share the index
    pages copy-on-write and nothing index-sized is ever serialized.
    Workers start lazily on first use, each one receiving the database
    state as of its start — which is why a pool is *bound* to an index
    generation: :meth:`compatible` refuses reuse after
    ``rebuild_join_index()`` bumped the generation, and the engine then
    builds a fresh pool.

    ``spawn`` backend: the same descriptor-shipping pool on the spawn
    start method — no fork inheritance exists there, so it *requires*
    a snapshot-backed database and refuses anything else.

    ``thread`` backend: a ``ThreadPoolExecutor`` plus the serializing
    lock described in the module docstring.

    A pool whose workers map a snapshot registers itself as a holder on
    it for its whole lifetime (``Snapshot.acquire``/``release``), so a
    premature ``Snapshot.close()`` fails cleanly, naming this pool.
    """

    def __init__(
        self,
        db: GraphDatabase,
        workers: int,
        backend: Optional[str] = None,
    ) -> None:
        backend = backend or default_backend()
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown parallel backend {backend!r}; choose from {BACKENDS}"
            )
        if backend == "process" and not fork_available():
            raise ValueError(
                "the process backend needs the fork start method; "
                "use parallel_backend='thread' on this platform"
            )
        descriptor = None
        get_descriptor = getattr(db, "snapshot_descriptor", None)
        if get_descriptor is not None:
            descriptor = get_descriptor()
        if backend == "spawn" and descriptor is None:
            raise ValueError(
                "the spawn backend ships a snapshot descriptor instead of "
                "pickling the database; it needs a snapshot-backed "
                "database (save to .snap and load it, or use the process/"
                "thread backend)"
            )
        self.workers = max(1, int(workers))
        self.backend = backend
        self.generation = getattr(db, "index_generation", 0)
        self.closed = False
        self._db = db
        # hold the mapping for the pool's lifetime: thread workers read
        # it directly, process/spawn workers map the same file — either
        # way a close() now would poison in-flight morsels
        self._snapshot = getattr(db, "snapshot_handle", None)
        self._owner_label = f"WorkerPool({backend}, workers={self.workers})"
        if self._snapshot is not None:
            self._snapshot.acquire(self._owner_label)
        started = time.perf_counter()
        try:
            if backend in ("process", "spawn"):
                self._lock: Optional[threading.Lock] = None
                ship_snapshot = descriptor is not None
                start_method = "fork" if backend == "process" else "spawn"
                self._executor: ProcessPoolExecutor | ThreadPoolExecutor = (
                    ProcessPoolExecutor(
                        max_workers=self.workers,
                        mp_context=multiprocessing.get_context(start_method),
                        initializer=(
                            _init_snapshot_worker
                            if ship_snapshot
                            else _init_worker
                        ),
                        initargs=(descriptor,) if ship_snapshot else (db,),
                    )
                )
                # start one worker eagerly so pool construction surfaces
                # fork/spawn problems and the first query doesn't pay the
                # whole worker start-up
                self._executor.submit(_probe_worker).result()
            else:
                self._lock = threading.Lock()
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="repro-morsel"
                )
        except BaseException:
            if self._snapshot is not None:
                self._snapshot.release(self._owner_label)
            raise
        self.init_seconds = time.perf_counter() - started

    def compatible(self, db: GraphDatabase) -> bool:
        """Can this pool serve queries against *db* right now?"""
        return (
            not self.closed
            and self._db is db
            and self.generation == getattr(db, "index_generation", 0)
        )

    def submit(self, payload: Payload) -> "Future[StageResult]":
        if self.closed:
            raise RuntimeError("worker pool is closed")
        if self.backend in ("process", "spawn"):
            return self._executor.submit(_run_stage, payload)
        assert self._lock is not None
        return self._executor.submit(_locked_stage, self._lock, payload, self._db)

    def submit_query(self, payload: QueryPayload) -> "Future[QueryTaskResult]":
        """Route one whole admitted query to a worker process.

        The service's process-dispatch mode: the worker runs the query
        end to end on its own engine (built once per process over the
        re-opened snapshot) and ships back only the result rows.  Thread
        pools are refused — whole-query dispatch exists precisely to
        escape the shared GIL, which a thread worker cannot do.
        """
        if self.closed:
            raise RuntimeError("worker pool is closed")
        if self.backend not in ("process", "spawn"):
            raise ValueError(
                "whole-query dispatch needs a process or spawn pool; the "
                "thread backend shares the coordinator's GIL"
            )
        return self._executor.submit(_run_query_task, payload)

    def shutdown(self) -> None:
        """Terminate the workers and release the snapshot; idempotent."""
        if not self.closed:
            self.closed = True
            self._executor.shutdown(wait=True, cancel_futures=True)
            if self._snapshot is not None:
                self._snapshot.release(self._owner_label)


def _probe_worker() -> bool:
    """No-op warm-up task (also checks the initializer ran)."""
    return _WORKER_DB is not None


# ----------------------------------------------------------------------
# per-run scheduling state
# ----------------------------------------------------------------------
@dataclass
class ParallelStats:
    """What the scheduler did during one run (``RunMetrics.parallel``)."""

    workers: int
    backend: str
    morsel_size: int
    #: morsels dispatched to the pool
    morsels: int = 0
    #: stages (or single-morsel stages) executed inline in the coordinator
    inline_stages: int = 0
    #: morsels cancelled before running (early close / row-limit abort)
    cancelled_morsels: int = 0
    #: pool construction time, 0.0 when an existing pool was reused
    pool_init_seconds: float = 0.0


class ParallelExecution:
    """One plan execution, scheduled as morsels over a :class:`WorkerPool`.

    Shared by both drivers: :meth:`results` yields the final stage's
    merged rows lazily (upstream stages are drained eagerly — they feed
    the partitioner), the driver pipes them through its own
    :class:`ProjectOp`.  All coordinator-side bookkeeping (metric
    merging, worker I/O and cache-count accumulation, cancellation) lives
    here so the two drivers cannot diverge.
    """

    def __init__(
        self,
        db: GraphDatabase,
        plan: Plan,
        ctx: ExecutionContext,
        operators: Sequence[PhysicalOperator],
        project: ProjectOp,
        pool: WorkerPool,
        owns_pool: bool,
    ) -> None:
        self.db = db
        self.plan = plan
        self.ctx = ctx
        self.operators = list(operators)
        self.project = project
        self.pool = pool
        self.owns_pool = owns_pool
        self.morsel_size = max(1, ctx.morsel_size or DEFAULT_MORSEL_SIZE)
        #: set when the run is torn down before its output was exhausted
        self.cancel_event = threading.Event()
        self.stats = ParallelStats(
            workers=pool.workers,
            backend=pool.backend,
            morsel_size=self.morsel_size,
            pool_init_seconds=pool.init_seconds if owns_pool else 0.0,
        )
        #: summed per-worker I/O deltas (meaningful for the process
        #: backend, whose workers charge their own forked stats object)
        self.worker_io = IOStats()
        #: summed per-worker CenterCache (hits, misses, evictions)
        self.cache_counts = [0, 0, 0]
        self._pending: List[Future] = []
        self._exhausted = False
        self._finished = False

    # -- public driver surface -----------------------------------------
    def results(self) -> Iterator[Row]:
        """The final stage's merged output rows, lazily."""
        try:
            rows: Optional[List[Row]] = None
            last = len(self.operators) - 1
            for index, op in enumerate(self.operators):
                if index < last:
                    rows = list(self._stage(index, op, rows))
                else:
                    yield from self._stage(index, op, rows)
            self._exhausted = True
        finally:
            self.finish()

    def finish(self) -> None:
        """Tear the run down; idempotent, safe to call at any point.

        Cancels queued morsels (running ones cannot be interrupted; the
        thread backend waits them out so their counters cannot bleed into
        a later run's shared-stats delta) and shuts transient pools down.
        Engine-owned pools are left alive for the next query.
        """
        if self._finished:
            return
        self._finished = True
        if not self._exhausted:
            self.cancel_event.set()
        survivors: List[Future] = []
        for future in self._pending:
            if future.cancel():
                self.stats.cancelled_morsels += 1
            elif not future.done():
                survivors.append(future)
        self._pending = []
        if survivors and self.pool.backend == "thread" and not self.owns_pool:
            futures_wait(survivors)
        if self.owns_pool:
            self.pool.shutdown()

    def worker_io_delta(self) -> IOStats:
        """I/O performed in workers but *not* visible in the
        coordinator's before/after delta.

        Process workers always charge their own forked stats object.
        Thread workers charge the engine-global base stats — visible to
        a plain coordinator delta, but *not* when the coordinator runs
        under a per-thread :func:`~repro.storage.stats.use_stats`
        override (the service's concurrent tiers): the override only
        sees the coordinator thread's own charges, so the worker deltas
        must be folded in explicitly there too."""
        if self.pool.backend == "process":
            return self.worker_io
        if active_stats() is not None:
            return self.worker_io
        return IOStats()

    # -- internals -----------------------------------------------------
    def _payload(self, index: int, kind: str, data: Sequence) -> Payload:
        return (
            self.plan,
            index,
            self.ctx.batch_size,
            self.ctx.center_cache is not None,
            kind,
            data,
            self.ctx.sanitize,
        )

    def _stage(
        self, index: int, op: PhysicalOperator, rows: Optional[List[Row]]
    ) -> Iterator[Row]:
        """Run one stage: partition, dispatch, merge in morsel order."""
        if isinstance(op, (SeedScanOp, MultiwaySeedOp)):
            # a straight extent scan (or the multiway seed's projection
            # intersection, whose cost is a handful of W-sweeps, not
            # per-row work): partitioning would only move the page reads
            # around, run it inline — the *output* domain is what the
            # downstream multiway stages get partitioned over
            self.stats.inline_stages += 1
            yield from op.rows(None)
            return
        if isinstance(op, SeedJoinOp):
            kind = "centers"
            worklist: Sequence = op.center_worklist()
            size = center_morsel_size(self.morsel_size)
        else:
            kind = "rows"
            worklist = rows if rows is not None else []
            size = self.morsel_size
        morsels = [worklist[i : i + size] for i in range(0, len(worklist), size)]
        if len(morsels) <= 1:
            # pool overhead cannot pay off on a single morsel; inline
            # execution here is literally the sequential oracle's path
            self.stats.inline_stages += 1
            source = None if kind == "centers" else iter(worklist)
            yield from op.rows(source)
            return
        futures = [
            self.pool.submit(self._payload(index, kind, morsel))
            for morsel in morsels
        ]
        self._pending = list(futures)
        self.stats.morsels += len(futures)
        metrics = op.metrics
        # replay HPSJ's cross-morsel dedup in worklist order: local seen
        # sets catch repeats within a morsel, this one catches repeats
        # across them — together identical to the sequential seen set
        seen: Optional[set] = set() if kind == "centers" else None
        limit = self.ctx.row_limit
        for position, future in enumerate(futures):
            out_rows, counters, io_delta, cache_counts = future.result()
            self._pending = futures[position + 1 :]
            metrics.rows_in += counters[0]
            metrics.centers_probed += counters[2]
            metrics.nodes_fetched += counters[3]
            self.worker_io.add(io_delta)
            if cache_counts is not None:
                for slot in range(3):
                    self.cache_counts[slot] += cache_counts[slot]
            for row in out_rows:
                if seen is not None:
                    if row in seen:
                        continue
                    seen.add(row)
                metrics.rows_out += 1
                if limit is not None and metrics.rows_out > limit:
                    raise RowLimitExceeded(
                        f"operator {op.name} exceeded {limit} rows"
                    )
                yield row
        self._pending = []
