"""Vectorized batch kernels for the R-join hot path (Eqs. 6-9).

The scalar Filter/Fetch operators pay tuple-at-a-time Python overhead:
every row builds frozensets, intersects them, and re-probes the B+-tree.
These kernels are the batch-oriented alternative the join literature
prescribes — tight set intersections over *sorted integer arrays*
(``array('q')``), processed a block of rows at a time:

* :func:`intersect` — sorted-array intersection, choosing between a
  linear merge and galloping (exponential/binary search) probes by the
  size ratio of the inputs.  This is the Eq. 6 kernel:
  ``getCenters(x, X, Y) = out(x) ∩ W(X, Y)`` with ``out(x)`` small and
  ``W(X, Y)`` potentially huge, exactly the asymmetric case galloping
  wins.
* :func:`batch_get_centers` — Eq. 6 over a block of node ids: one
  W-array load amortized over the whole block, one intersection per
  distinct node.
* :func:`gather_union` — the Fetch side (Eqs. 7-9): the deduplicated
  union of per-center subclusters, i.e. the batched Cartesian fetch for
  one centers column value, computed once per distinct value instead of
  once per row.
* :func:`intern_label_pair` — stable small-int ids for ``(X, Y)`` label
  pairs so cache keys compare by int instead of by string pair.

Every kernel follows ``set`` semantics (duplicates in the inputs are
tolerated and collapse in the output) and is property-tested against the
builtin ``set`` type in ``tests/test_kernels.py``.  The scalar operators
remain the semantic oracle; the kernels must agree with them bit for bit
on result sets and logical counters (``tests/test_batch_differential.py``).

Input representation: every kernel takes *sorted int sequences* and is
agnostic to their concrete type.  Two representations are first-class
and differentially tested against each other:

* ``array('q')`` — the materialized path, and the differential oracle;
* ``memoryview('q')`` — zero-copy slices straight out of an mmap-backed
  snapshot (the blessed view API of :mod:`repro.storage.snapshot`),
  which the mmap-native operators feed in without any decode pass.

Outputs are always freshly materialized (``array('q')``/tuples), never
views — kernel results may be cached and must not pin the mapping.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Dict, Iterable, List, Sequence, Tuple

#: typecode for all kernel arrays: signed 64-bit node/center ids
ARRAY_TYPECODE = "q"

#: switch from linear merge to galloping when one input is this many
#: times longer than the other (the classic timsort/Lucene threshold zone)
GALLOP_RATIO = 8

_EMPTY: "array[int]" = array(ARRAY_TYPECODE)


def as_sorted_array(values: Iterable[int]) -> "array[int]":
    """Sorted, deduplicated ``array('q')`` from any iterable of ints."""
    return array(ARRAY_TYPECODE, sorted(set(values)))


# ----------------------------------------------------------------------
# sorted-array intersection (the Eq. 6 kernel)
# ----------------------------------------------------------------------
def intersect_merge(a: Sequence[int], b: Sequence[int]) -> "array[int]":
    """Linear two-pointer merge intersection of two sorted sequences."""
    out = array(ARRAY_TYPECODE)
    append = out.append
    i, j = 0, 0
    len_a, len_b = len(a), len(b)
    while i < len_a and j < len_b:
        x, y = a[i], b[j]
        if x < y:
            i += 1
        elif y < x:
            j += 1
        else:
            if not out or out[-1] != x:  # collapse duplicate inputs
                append(x)
            i += 1
            j += 1
    return out


def intersect_gallop(small: Sequence[int], large: Sequence[int]) -> "array[int]":
    """Intersection by galloping the smaller input into the larger one.

    For each element of *small*, binary-search *large* from a moving
    lower bound — O(|small| · log |large|), the winning strategy when
    ``|large| >> |small|`` (a node's graph code against a W-array).
    """
    out = array(ARRAY_TYPECODE)
    append = out.append
    lo = 0
    hi = len(large)
    for x in small:
        lo = bisect_left(large, x, lo, hi)
        if lo == hi:
            break
        if large[lo] == x:
            if not out or out[-1] != x:
                append(x)
            lo += 1
    return out


def intersect(a: Sequence[int], b: Sequence[int]) -> "array[int]":
    """Set intersection of two sorted int sequences, as ``array('q')``.

    Dispatches between :func:`intersect_merge` and
    :func:`intersect_gallop` on the size ratio (``GALLOP_RATIO``).
    Accepts ``array('q')`` and ``memoryview('q')`` inputs in any mix
    (emptiness, indexing and ``bisect`` behave identically on both); the
    result is always a fresh array regardless of input type.
    """
    if not a or not b:
        return _EMPTY
    len_a, len_b = len(a), len(b)
    if len_a > len_b:
        a, b, len_a, len_b = b, a, len_b, len_a
    if len_b >= len_a * GALLOP_RATIO:
        return intersect_gallop(a, b)
    return intersect_merge(a, b)


# ----------------------------------------------------------------------
# batched getCenters (Eq. 6 over a block of node ids)
# ----------------------------------------------------------------------
def batch_get_centers(
    nodes: Sequence[int],
    codes: Sequence[Sequence[int]],
    w_array: Sequence[int],
) -> List[Tuple[int, ...]]:
    """``getCenters`` for a block: intersect each node's code with W(X, Y).

    *codes* is positionally parallel to *nodes* (the caller resolves each
    node's sorted in/out graph code); the result list is parallel too,
    one sorted tuple of centers per node (possibly empty).  Both *codes*
    entries and *w_array* may be arrays or zero-copy snapshot views.
    """
    if not w_array:
        return [() for _ in nodes]
    return [tuple(intersect(code, w_array)) for code in codes]


# ----------------------------------------------------------------------
# batched Cartesian fetch (Eqs. 7-9)
# ----------------------------------------------------------------------
def gather_union(
    partner_lists: Sequence[Sequence[int]],
) -> Tuple[Tuple[int, ...], int]:
    """Deduplicated union of per-center subclusters, plus the raw volume.

    Returns ``(partners, total)`` where *partners* preserves first-seen
    order across the input lists (matching the scalar Fetch's dedup
    order) and *total* is the pre-dedup node count — the quantity the
    scalar path charges into ``nodes_fetched``.  Input lists may be
    tuples, arrays or zero-copy snapshot views; the output tuples are
    always materialized ints.
    """
    total = 0
    if len(partner_lists) == 1:
        only = partner_lists[0]
        total = len(only)
        # single center: subclusters are stored deduplicated and sorted
        return tuple(only), total
    seen: set = set()
    partners: List[int] = []
    append = partners.append
    add = seen.add
    for nodes in partner_lists:
        total += len(nodes)
        for node in nodes:
            if node not in seen:
                add(node)
                append(node)
    return tuple(partners), total


def union_sorted(
    partner_lists: Sequence[Sequence[int]],
) -> Tuple["array[int]", int]:
    """Sorted deduplicated union of sorted int sequences, plus raw volume.

    The multiway (generic-join) extension set: the union over a
    variable's centers of their labeled subclusters, returned *sorted*
    so it can feed :func:`intersect`/:func:`intersect_many` directly.
    ``total`` is the pre-dedup node count — the quantity charged into
    ``nodes_fetched`` (the same accounting as :func:`gather_union`).
    Inputs may be tuples, arrays or zero-copy snapshot views; the output
    is always a fresh array.
    """
    if not partner_lists:
        return array(ARRAY_TYPECODE), 0
    if len(partner_lists) == 1:
        only = partner_lists[0]
        # single center: subclusters are stored deduplicated and sorted
        return array(ARRAY_TYPECODE, only), len(only)
    merged: set = set()
    total = 0
    for nodes in partner_lists:
        total += len(nodes)
        merged.update(nodes)
    return array(ARRAY_TYPECODE, sorted(merged)), total


def intersect_many(sets: Sequence[Sequence[int]]) -> "array[int]":
    """Intersection of several sorted int sequences (the leapfrog core).

    Folds :func:`intersect` smallest-first — the running result can only
    shrink, so starting from the smallest input bounds every pairwise
    step — with an early exit the moment it empties.  One input returns
    a fresh copy; zero inputs an empty array.
    """
    if not sets:
        return array(ARRAY_TYPECODE)
    ordered = sorted(sets, key=len)
    result = array(ARRAY_TYPECODE, ordered[0])
    for other in ordered[1:]:
        if not result:
            return result
        result = intersect(result, other)
    return result


# ----------------------------------------------------------------------
# label-pair interning
# ----------------------------------------------------------------------
_PAIR_IDS: Dict[Tuple[str, str], int] = {}
_PAIR_EPOCH = 0

#: interning capacity: reaching it clears the table and starts a new
#: epoch, so a long-lived process serving many label vocabularies cannot
#: grow the table without bound
PAIR_INTERN_LIMIT = 4096


def pair_epoch() -> int:
    """The current interning epoch; bumps whenever ids are recycled.

    Anything that stores pair ids in keys (the
    :class:`~repro.query.physical.cache.CenterCache`) must remember the
    epoch its keys were minted under and drop them when it changes — an
    id minted in an older epoch may since have been reassigned to a
    different label pair.
    """
    return _PAIR_EPOCH


def clear_pair_ids() -> None:
    """Drop every interned pair and start a new epoch.

    Called when the table hits ``PAIR_INTERN_LIMIT``, and by
    :meth:`CenterCache.sync <repro.query.physical.cache.CenterCache.sync>`
    when it observes an index rebuild (the ``rebuild_join_index``
    generation bump) — the natural point to shed pairs from retired
    vocabularies, routed through the cache layer so the db layer never
    imports physical internals.
    """
    global _PAIR_EPOCH
    _PAIR_IDS.clear()
    _PAIR_EPOCH += 1


def intern_label_pair(x_label: str, y_label: str) -> int:
    """Small-int id for an ``(X, Y)`` label pair, stable within an epoch.

    Cache keys built from these ids compare by a single int instead of
    two strings.  Ids are stable while the epoch lasts; when the table
    reaches ``PAIR_INTERN_LIMIT`` it is cleared and the epoch bumped
    (see :func:`pair_epoch`), so the table is bounded for the life of
    the process.
    """
    pair = (x_label, y_label)
    pair_id = _PAIR_IDS.get(pair)
    if pair_id is None:
        if len(_PAIR_IDS) >= PAIR_INTERN_LIMIT:
            clear_pair_ids()
        pair_id = _PAIR_IDS[pair] = len(_PAIR_IDS)
    return pair_id


def iter_blocks(
    source: Iterable, block_size: int
) -> Iterable[list]:
    """Chunk any iterable into lists of at most *block_size* items."""
    block: list = []
    append = block.append
    for item in source:
        append(item)
        if len(block) >= block_size:
            yield block
            block = []
            append = block.append
    if block:
        yield block


__all__ = [
    "ARRAY_TYPECODE",
    "GALLOP_RATIO",
    "PAIR_INTERN_LIMIT",
    "as_sorted_array",
    "batch_get_centers",
    "clear_pair_ids",
    "gather_union",
    "intern_label_pair",
    "intersect",
    "intersect_gallop",
    "intersect_many",
    "intersect_merge",
    "iter_blocks",
    "pair_epoch",
    "union_sorted",
]
