"""CenterCache — a size-bounded LRU shared across queries.

The scalar hot path recomputes two things per query that are pure
functions of the offline structures:

* ``getCenters(x, X, Y)`` (Eq. 6) — the W-probe plus a set intersection,
  repeated for every distinct scanned node of every Filter;
* ``getF(w, X)`` / ``getT(w, Y)`` (Eqs. 7-9) — the per-center labeled
  subcluster, re-fetched from the B+-tree by every Fetch that meets the
  center again.

Both are invariant until the index is rebuilt, so the engine owns one
:class:`CenterCache` and threads it through every execution context: a
single LRU keyed by ``(node, pair_id, side)`` for center sets and
``(center, label, side)`` for subclusters, bounded by an approximate
byte budget (``GraphEngine(cache_bytes=...)``).

Hits/misses/evictions are counted here and surfaced per run as
:class:`~repro.query.physical.drivers.RunMetrics.center_cache` deltas.
Invalidation is generation-based: :class:`~repro.db.database.GraphDatabase`
bumps ``index_generation`` whenever the join index is rebuilt, and
:meth:`CenterCache.sync` (called by both drivers before any row flows)
clears the cache when the generation it was filled under is stale.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Optional, Tuple

from ..algebra import Side
from . import kernels

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ...db.database import GraphDatabase

#: rough per-entry overhead (key tuple, dict slot, value tuple header)
_ENTRY_OVERHEAD_BYTES = 96
#: bytes charged per int held in a cached tuple
_INT_BYTES = 8

#: default budget for GraphEngine-owned caches (~4 MiB)
DEFAULT_CACHE_BYTES = 4 << 20

_CENTERS_TAG = 0
_SUBCLUSTER_TAG = 1


class CenterCache:
    """LRU of center sets and subclusters, bounded by estimated bytes.

    ``capacity_bytes <= 0`` disables storage entirely (every ``get`` is a
    miss and ``put`` is a no-op) while keeping the counters alive, so the
    ``--no-center-cache`` ablation measures the uncached hot path under
    identical instrumentation.
    """

    def __init__(self, capacity_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        self.capacity_bytes = capacity_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._bytes = 0
        self._generation: Optional[int] = None
        self._pair_epoch: Optional[int] = None
        self._store: "OrderedDict[tuple, Tuple[int, ...]]" = OrderedDict()
        # sanitize mode: when bound to a database, every read asserts
        # generation freshness (see repro.analysis.sanitizer)
        self._sanitize_db: Optional["GraphDatabase"] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def sync(self, generation: int) -> None:
        """Bind the cache to an index generation, invalidating on change.

        This is also where the bounded label-pair interning table is
        kept honest: observing an index *rebuild* (a generation change)
        clears the process-wide pair-id table
        (:func:`~repro.query.physical.kernels.clear_pair_ids` — the
        ``rebuild_join_index`` hook, routed through the cache layer so
        the db layer never imports physical internals), and any cache
        whose centers entries were keyed under an older *pair epoch*
        drops them — an id minted before the epoch bump may since have
        been reassigned to a different label pair, even in an engine
        whose own index generation never moved.
        """
        if self._generation != generation:
            if self._generation is not None:
                if self._store:
                    self.invalidate()
                # the hook: an index rebuild happened somewhere in this
                # process — recycle the interning table's ids
                kernels.clear_pair_ids()
            self._generation = generation
        epoch = kernels.pair_epoch()
        if self._pair_epoch != epoch:
            if self._pair_epoch is not None and self._store:
                self.invalidate()
            self._pair_epoch = epoch

    def bind_sanitizer(self, db: "GraphDatabase") -> None:
        """Arm the per-read freshness tripwire against *db*.

        Sanitize mode only — every subsequent ``get_*`` raises
        :class:`repro.analysis.sanitizer.SanitizerError` if the bound
        generation no longer matches ``db.index_generation``.
        """
        self._sanitize_db = db

    def _assert_fresh(self) -> None:
        # imported lazily: the analysis layer depends on the query
        # layer, not the other way around
        from ...analysis.sanitizer import assert_generation_fresh

        assert_generation_fresh(self._generation, self._sanitize_db)

    def invalidate(self) -> None:
        """Drop every entry (the index was rebuilt); counters survive."""
        self._store.clear()
        self._bytes = 0

    def clear(self) -> None:
        """Full reset: entries *and* counters (tests, ablations)."""
        self.invalidate()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # the two memoized functions
    # ------------------------------------------------------------------
    def get_centers(
        self, node: int, pair_id: int, side: Side
    ) -> Optional[Tuple[int, ...]]:
        """Cached ``getCenters`` result for ``(node, X, Y)``, or None."""
        if self._sanitize_db is not None:
            self._assert_fresh()
        # the epoch in the key makes entries from a recycled interning
        # table unreachable even before the next sync() sheds them
        key = (_CENTERS_TAG, node, pair_id, side is Side.OUT, kernels.pair_epoch())
        return self._get(key)

    def put_centers(
        self, node: int, pair_id: int, side: Side, centers: Tuple[int, ...]
    ) -> None:
        key = (_CENTERS_TAG, node, pair_id, side is Side.OUT, kernels.pair_epoch())
        self._put(key, centers)

    def get_subcluster(
        self, center: int, label: str, side: Side
    ) -> Optional[Tuple[int, ...]]:
        """Cached ``getT(w, Y)`` / ``getF(w, X)`` subcluster, or None."""
        if self._sanitize_db is not None:
            self._assert_fresh()
        return self._get((_SUBCLUSTER_TAG, center, label, side is Side.OUT))

    def put_subcluster(
        self, center: int, label: str, side: Side, nodes: Tuple[int, ...]
    ) -> None:
        self._put((_SUBCLUSTER_TAG, center, label, side is Side.OUT), nodes)

    # ------------------------------------------------------------------
    # LRU mechanics
    # ------------------------------------------------------------------
    def _get(self, key: tuple) -> Optional[Tuple[int, ...]]:
        value = self._store.get(key)
        if value is None:
            self.misses += 1
            return None
        self._store.move_to_end(key)  # a hit makes the entry youngest
        self.hits += 1
        return value

    def _put(self, key: tuple, value: Tuple[int, ...]) -> None:
        if self.capacity_bytes <= 0 or key in self._store:
            return
        cost = _ENTRY_OVERHEAD_BYTES + _INT_BYTES * len(value)
        if cost > self.capacity_bytes:
            return  # a single oversized entry would evict everything
        self._store[key] = value
        self._bytes += cost
        while self._bytes > self.capacity_bytes and self._store:
            _, evicted = self._store.popitem(last=False)
            self._bytes -= _ENTRY_OVERHEAD_BYTES + _INT_BYTES * len(evicted)
            self.evictions += 1

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def entry_count(self) -> int:
        return len(self._store)

    @property
    def estimated_bytes(self) -> int:
        return self._bytes

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> Tuple[int, int, int]:
        """(hits, misses, evictions) — for per-run delta accounting."""
        return (self.hits, self.misses, self.evictions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CenterCache(entries={self.entry_count}, "
            f"bytes~{self._bytes}/{self.capacity_bytes}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions})"
        )


__all__ = ["CenterCache", "DEFAULT_CACHE_BYTES"]
