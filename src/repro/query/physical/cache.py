"""CenterCache — a size-bounded, shard-striped LRU shared across queries.

The scalar hot path recomputes two things per query that are pure
functions of the offline structures:

* ``getCenters(x, X, Y)`` (Eq. 6) — the W-probe plus a set intersection,
  repeated for every distinct scanned node of every Filter;
* ``getF(w, X)`` / ``getT(w, Y)`` (Eqs. 7-9) — the per-center labeled
  subcluster, re-fetched from the B+-tree by every Fetch that meets the
  center again.

Both are invariant until the index is rebuilt, so the engine owns one
:class:`CenterCache` and threads it through every execution context: an
LRU keyed by ``(node, pair_id, side)`` for center sets and
``(center, label, side)`` for subclusters, bounded by an approximate
byte budget (``GraphEngine(cache_bytes=...)``).

Concurrency model (the service's lock-free snapshot tier): the cache is
striped into ``shards`` independently locked stripes, each with its own
LRU order, byte budget (``capacity_bytes // shards``) and counters.  A
key is pinned to a shard by hash, so two in-flight queries touching
different keys contend only when they land on the same stripe; nothing
ever takes more than one shard lock on the get/put path.  Whole-cache
operations (``sync``/``invalidate``/``clear``) take the shard locks one
at a time — safe because entries never migrate between shards.  The
default is ``shards=1`` (a single-striped cache is byte-for-byte the
pre-sharding LRU, which the unit tests pin); engines construct theirs
with :data:`DEFAULT_CACHE_SHARDS` stripes.

Hits/misses/evictions are counted per shard and surfaced as aggregate
properties; per-*query* attribution is exact — every ``get``/``put``
accepts an optional per-context ``stats`` recorder
(:class:`~repro.query.physical.context.CacheStats`) incremented inside
the shard lock, so overlapping queries never see each other's traffic.
Invalidation is generation-based: :class:`~repro.db.database.GraphDatabase`
bumps ``index_generation`` whenever the join index is rebuilt, and
:meth:`CenterCache.sync` (called by both drivers before any row flows)
clears the cache when the generation it was filled under is stale.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, List, Optional, Tuple

from ..algebra import Side
from . import kernels

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ...db.database import GraphDatabase
    from .context import CacheStats

#: rough per-entry overhead (key tuple, dict slot, value tuple header)
_ENTRY_OVERHEAD_BYTES = 96
#: bytes charged per int held in a cached tuple
_INT_BYTES = 8

#: default budget for GraphEngine-owned caches (~4 MiB)
DEFAULT_CACHE_BYTES = 4 << 20

#: stripes for engine-owned caches (service tier runs queries truly
#: concurrently; 8 stripes keep same-stripe collisions rare at the
#: 4-slot inflight ceiling without fragmenting the byte budget)
DEFAULT_CACHE_SHARDS = 8

_CENTERS_TAG = 0
_SUBCLUSTER_TAG = 1


class _Shard:
    """One independently locked LRU stripe of the cache."""

    __slots__ = ("lock", "store", "bytes", "capacity_bytes",
                 "hits", "misses", "evictions")

    def __init__(self, capacity_bytes: int) -> None:
        self.lock = threading.Lock()
        self.store: "OrderedDict[tuple, Tuple[int, ...]]" = OrderedDict()
        self.bytes = 0
        self.capacity_bytes = capacity_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class CenterCache:
    """Sharded LRU of center sets and subclusters, bounded by bytes.

    ``capacity_bytes <= 0`` disables storage entirely (every ``get`` is a
    miss and ``put`` is a no-op) while keeping the counters alive, so the
    ``--no-center-cache`` ablation measures the uncached hot path under
    identical instrumentation.
    """

    def __init__(
        self,
        capacity_bytes: int = DEFAULT_CACHE_BYTES,
        shards: int = 1,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.capacity_bytes = capacity_bytes
        per_shard = capacity_bytes // shards if capacity_bytes > 0 else 0
        self._shards: Tuple[_Shard, ...] = tuple(
            _Shard(per_shard) for _ in range(shards)
        )
        self._sync_lock = threading.Lock()
        self._generation: Optional[int] = None
        self._pair_epoch: Optional[int] = None
        # sanitize mode: when bound to a database, every read asserts
        # generation freshness (see repro.analysis.sanitizer)
        self._sanitize_db: Optional["GraphDatabase"] = None

    def _shard_for(self, key: tuple) -> _Shard:
        shards = self._shards
        if len(shards) == 1:
            return shards[0]
        return shards[hash(key) % len(shards)]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def sync(self, generation: int) -> None:
        """Bind the cache to an index generation, invalidating on change.

        This is also where the bounded label-pair interning table is
        kept honest: observing an index *rebuild* (a generation change)
        clears the process-wide pair-id table
        (:func:`~repro.query.physical.kernels.clear_pair_ids` — the
        ``rebuild_join_index`` hook, routed through the cache layer so
        the db layer never imports physical internals), and any cache
        whose centers entries were keyed under an older *pair epoch*
        drops them — an id minted before the epoch bump may since have
        been reassigned to a different label pair, even in an engine
        whose own index generation never moved.

        Concurrent contexts over the same engine sync against the same
        (immutable while serving) generation, so the common call is the
        unlocked fast path; the transition itself is serialized on
        ``_sync_lock`` and re-checked inside it.
        """
        epoch = kernels.pair_epoch()
        if self._generation == generation and self._pair_epoch == epoch:
            return
        with self._sync_lock:
            if self._generation != generation:
                if self._generation is not None:
                    if self.entry_count:
                        self.invalidate()
                    # the hook: an index rebuild happened somewhere in
                    # this process — recycle the interning table's ids
                    kernels.clear_pair_ids()
                self._generation = generation
            epoch = kernels.pair_epoch()
            if self._pair_epoch != epoch:
                if self._pair_epoch is not None and self.entry_count:
                    self.invalidate()
                self._pair_epoch = epoch

    def bind_sanitizer(self, db: "GraphDatabase") -> None:
        """Arm the per-read freshness tripwire against *db*.

        Sanitize mode only — every subsequent ``get_*`` raises
        :class:`repro.analysis.sanitizer.SanitizerError` if the bound
        generation no longer matches ``db.index_generation``.
        """
        self._sanitize_db = db

    def _assert_fresh(self) -> None:
        # imported lazily: the analysis layer depends on the query
        # layer, not the other way around
        from ...analysis.sanitizer import assert_generation_fresh

        assert_generation_fresh(self._generation, self._sanitize_db)

    def invalidate(self) -> None:
        """Drop every entry (the index was rebuilt); counters survive."""
        for shard in self._shards:
            with shard.lock:
                shard.store.clear()
                shard.bytes = 0

    def clear(self) -> None:
        """Full reset: entries *and* counters (tests, ablations)."""
        for shard in self._shards:
            with shard.lock:
                shard.store.clear()
                shard.bytes = 0
                shard.hits = 0
                shard.misses = 0
                shard.evictions = 0

    # ------------------------------------------------------------------
    # the two memoized functions
    # ------------------------------------------------------------------
    def get_centers(
        self,
        node: int,
        pair_id: int,
        side: Side,
        stats: Optional["CacheStats"] = None,
    ) -> Optional[Tuple[int, ...]]:
        """Cached ``getCenters`` result for ``(node, X, Y)``, or None."""
        if self._sanitize_db is not None:
            self._assert_fresh()
        # the epoch in the key makes entries from a recycled interning
        # table unreachable even before the next sync() sheds them
        key = (_CENTERS_TAG, node, pair_id, side is Side.OUT, kernels.pair_epoch())
        return self._get(key, stats)

    def put_centers(
        self,
        node: int,
        pair_id: int,
        side: Side,
        centers: Tuple[int, ...],
        stats: Optional["CacheStats"] = None,
    ) -> None:
        key = (_CENTERS_TAG, node, pair_id, side is Side.OUT, kernels.pair_epoch())
        self._put(key, centers, stats)

    def get_subcluster(
        self,
        center: int,
        label: str,
        side: Side,
        stats: Optional["CacheStats"] = None,
    ) -> Optional[Tuple[int, ...]]:
        """Cached ``getT(w, Y)`` / ``getF(w, X)`` subcluster, or None."""
        if self._sanitize_db is not None:
            self._assert_fresh()
        return self._get((_SUBCLUSTER_TAG, center, label, side is Side.OUT), stats)

    def put_subcluster(
        self,
        center: int,
        label: str,
        side: Side,
        nodes: Tuple[int, ...],
        stats: Optional["CacheStats"] = None,
    ) -> None:
        self._put((_SUBCLUSTER_TAG, center, label, side is Side.OUT), nodes, stats)

    # ------------------------------------------------------------------
    # LRU mechanics (per shard)
    # ------------------------------------------------------------------
    def _get(
        self, key: tuple, stats: Optional["CacheStats"]
    ) -> Optional[Tuple[int, ...]]:
        shard = self._shard_for(key)
        with shard.lock:
            value = shard.store.get(key)
            if value is None:
                shard.misses += 1
                if stats is not None:
                    stats.misses += 1
                return None
            shard.store.move_to_end(key)  # a hit makes the entry youngest
            shard.hits += 1
            if stats is not None:
                stats.hits += 1
            return value

    def _put(
        self, key: tuple, value: Tuple[int, ...],
        stats: Optional["CacheStats"] = None,
    ) -> None:
        shard = self._shard_for(key)
        if shard.capacity_bytes <= 0:
            return
        cost = _ENTRY_OVERHEAD_BYTES + _INT_BYTES * len(value)
        if cost > shard.capacity_bytes:
            return  # a single oversized entry would evict everything
        with shard.lock:
            if key in shard.store:
                return
            shard.store[key] = value
            shard.bytes += cost
            while shard.bytes > shard.capacity_bytes and shard.store:
                _, evicted = shard.store.popitem(last=False)
                shard.bytes -= _ENTRY_OVERHEAD_BYTES + _INT_BYTES * len(evicted)
                shard.evictions += 1
                if stats is not None:
                    stats.evictions += 1

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def hits(self) -> int:
        return sum(shard.hits for shard in self._shards)

    @property
    def misses(self) -> int:
        return sum(shard.misses for shard in self._shards)

    @property
    def evictions(self) -> int:
        return sum(shard.evictions for shard in self._shards)

    @property
    def entry_count(self) -> int:
        return sum(len(shard.store) for shard in self._shards)

    @property
    def estimated_bytes(self) -> int:
        return sum(shard.bytes for shard in self._shards)

    @property
    def hit_rate(self) -> float:
        hits = self.hits
        total = hits + self.misses
        return hits / total if total else 0.0

    def snapshot(self) -> Tuple[int, int, int]:
        """(hits, misses, evictions) — for per-run delta accounting."""
        return (self.hits, self.misses, self.evictions)

    def check_shard_isolation(self) -> List[str]:
        """Verify every entry lives on the shard its key hashes to.

        The sanitizer's runtime twin of the striping invariant: each
        key must be reachable through ``_shard_for`` (no entry migrated
        stripes), and each stripe's byte ledger must equal the recomputed
        cost of what it actually holds.  Returns a list of human-readable
        violations (empty when the cache is sound); the caller decides
        whether to raise.
        """
        problems: List[str] = []
        for index, shard in enumerate(self._shards):
            with shard.lock:
                expected_bytes = 0
                for key, value in shard.store.items():
                    expected_bytes += _ENTRY_OVERHEAD_BYTES + _INT_BYTES * len(value)
                    home = self._shards.index(self._shard_for(key))
                    if home != index:
                        problems.append(
                            f"key {key!r} stored on shard {index} but "
                            f"hashes to shard {home}"
                        )
                if expected_bytes != shard.bytes:
                    problems.append(
                        f"shard {index} byte ledger {shard.bytes} != "
                        f"recomputed {expected_bytes}"
                    )
        return problems

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CenterCache(shards={self.shard_count}, "
            f"entries={self.entry_count}, "
            f"bytes~{self.estimated_bytes}/{self.capacity_bytes}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions})"
        )


__all__ = ["CenterCache", "DEFAULT_CACHE_BYTES", "DEFAULT_CACHE_SHARDS"]
