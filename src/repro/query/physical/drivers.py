"""The two plan drivers: materialize into temporal tables, or stream.

Both drivers interpret the same validated
:class:`~repro.query.algebra.Plan` through the *same* operator pipeline
(:func:`~repro.query.physical.operators.build_pipeline`); they differ
only in how rows move between operators:

* :func:`execute_plan` — the paper's HPSJ+ execution ("stores them into
  T_W"): each operator is drained into a
  :class:`~repro.query.algebra.TemporalTable`, so intermediate reads and
  writes are charged I/O through the buffer pool exactly as the cost
  model prices them.
* :func:`execute_plan_streaming` — the classic engine alternative: the
  operators' generators are chained, no temporal table ever hits the
  storage engine, and a ``LIMIT`` stops all upstream work the moment
  enough output exists.

Because Algorithm 1/2 logic (dedup sets, the Remark 3.1 shared scan, the
per-center subcluster cache) lives only in the operators, the two form a
clean ablation pair (``benchmarks/bench_ablations.py``) with identical
result sets *and* identical per-operator ``rows_in``/``rows_out`` when
fully drained.  Both accept ``row_limit`` (the execution guard) and
``verify=True`` (full static plan checking before any row is produced).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from ...db.database import GraphDatabase
from ...storage.stats import IOStats
from ..algebra import Plan, TemporalTable
from .cache import CenterCache
from .context import CacheStats, ExecutionContext, OperatorMetrics, temp_name
from .operators import Row, build_pipeline
from .parallel import ParallelExecution, ParallelStats, WorkerPool


@dataclass
class RunMetrics:
    """Everything measured while executing one plan (either driver)."""

    elapsed_seconds: float = 0.0
    io: Optional[IOStats] = None
    operators: List[OperatorMetrics] = field(default_factory=list)
    peak_temporal_rows: int = 0
    result_rows: int = 0
    #: CenterCache activity during this run (None when no cache was used)
    center_cache: Optional[CacheStats] = None
    #: morsel-scheduler activity (None for sequential runs)
    parallel: Optional[ParallelStats] = None
    #: True when a stream stopped before exhausting the operator chain
    #: (LIMIT reached, deadline fired, or explicit close): the rows
    #: delivered are a prefix of the full result, not necessarily all of
    #: it.  Always False for fully drained runs and for ``execute_plan``.
    truncated: bool = False
    #: why a truncated stream stopped: ``"limit"``, ``"timeout"`` or
    #: ``"closed"`` (None when not truncated)
    stop_reason: Optional[str] = None

    @property
    def physical_io(self) -> int:
        return self.io.total_io() if self.io else 0

    @property
    def logical_io(self) -> int:
        return self.io.logical_reads if self.io else 0


@dataclass
class QueryResult:
    """Final matches plus the plan and metrics that produced them."""

    columns: Tuple[str, ...]
    rows: List[Tuple[int, ...]]
    plan: Plan
    metrics: RunMetrics

    def as_set(self) -> set:
        return set(self.rows)

    def __len__(self) -> int:
        return len(self.rows)


def _verify_plan(plan: Plan, db: GraphDatabase) -> None:
    """Run the full static plan checker; raise listing every violation."""
    # imported lazily: the analysis layer depends on the query layer,
    # not the other way around
    from ...analysis.diagnostics import errors
    from ...analysis.plancheck import PlanVerificationError, check_plan

    found = errors(check_plan(plan, db=db))
    if found:
        raise PlanVerificationError(found)


def _prepare(
    db: GraphDatabase,
    plan: Plan,
    row_limit: Optional[int],
    verify: bool,
    batch_size: Optional[int] = None,
    center_cache: Optional[CenterCache] = None,
    workers: Optional[int] = None,
    parallel_backend: Optional[str] = None,
    morsel_size: Optional[int] = None,
    sanitize: bool = False,
):
    """Shared driver preamble: verification, validation, pipeline build.

    Stale-cache handling is NOT done here: constructing the
    :class:`ExecutionContext` below is the single sync choke point that
    re-binds ``center_cache`` to ``db.index_generation`` (enforced by
    the ``contract/sync-choke-point`` deep rule).
    """
    if verify:
        _verify_plan(plan, db)
    plan.validate()
    ctx = ExecutionContext(
        db=db,
        pattern=plan.pattern,
        row_limit=row_limit,
        batch_size=batch_size,
        center_cache=center_cache,
        workers=workers,
        parallel_backend=parallel_backend,
        sanitize=sanitize,
    )
    if morsel_size is not None:
        ctx.morsel_size = morsel_size
    operators, project = build_pipeline(ctx, plan)
    metrics = RunMetrics(operators=[op.metrics for op in operators])
    return ctx, operators, project, metrics


def _parallel_execution(
    db: GraphDatabase,
    plan: Plan,
    ctx: ExecutionContext,
    operators,
    project,
    worker_pool: Optional[WorkerPool],
) -> ParallelExecution:
    """Bind a prepared pipeline to a pool (given, or transient)."""
    owns = worker_pool is None
    pool = worker_pool
    if pool is None:
        pool = WorkerPool(db, ctx.workers or 1, ctx.parallel_backend)
    elif not pool.compatible(db):
        raise ValueError(
            "worker pool is closed or bound to another database/index "
            "generation; build a new one (GraphEngine does this "
            "automatically)"
        )
    return ParallelExecution(db, plan, ctx, operators, project, pool, owns)


def _merge_worker_cache(
    parent: Optional[CacheStats], counts
) -> Optional[CacheStats]:
    """Fold the workers' (hits, misses, evictions) into the run's stats."""
    hits, misses, evictions = counts
    if parent is None and not (hits or misses or evictions):
        return parent
    merged = parent if parent is not None else CacheStats()
    merged.hits += hits
    merged.misses += misses
    merged.evictions += evictions
    return merged


# ----------------------------------------------------------------------
# driver 1: materializing (the paper's HPSJ+ execution)
# ----------------------------------------------------------------------
def execute_plan(
    db: GraphDatabase,
    plan: Plan,
    row_limit: Optional[int] = None,
    verify: bool = False,
    batch_size: Optional[int] = None,
    center_cache: Optional[CenterCache] = None,
    workers: Optional[int] = None,
    parallel_backend: Optional[str] = None,
    morsel_size: Optional[int] = None,
    worker_pool: Optional[WorkerPool] = None,
    sanitize: bool = False,
) -> QueryResult:
    """Run *plan*, materializing every intermediate; project the result.

    ``row_limit`` caps every intermediate; exceeding it raises
    :class:`repro.query.algebra.RowLimitExceeded` (an execution guard for
    runaway patterns, not a LIMIT clause — no partial results are
    returned).  ``verify=True`` runs the full static plan checker
    (:func:`repro.analysis.check_plan`, including the catalog checks
    against *db*) before interpretation and raises
    :class:`repro.analysis.PlanVerificationError` listing every violation
    — the belt-and-braces mode for exercising new optimizers.

    ``batch_size`` > 1 runs the Filter/Fetch operators block-at-a-time
    through the vectorized kernels; ``center_cache`` plugs in the
    engine's cross-query :class:`CenterCache` (consulted only in batch
    mode).  Results are identical to the scalar path row for row.

    ``workers`` > 1 runs the stages through the morsel-driven scheduler
    (:mod:`repro.query.physical.parallel`); ``parallel_backend`` picks
    the pool flavor, ``worker_pool`` reuses an engine-owned pool instead
    of building a transient one (its worker count wins when ``workers``
    is None).  The parallel path streams between stages instead of
    spilling temporal tables, so its I/O delta omits the temporal-table
    traffic — rows and per-operator counters still match the sequential
    oracle exactly.
    """
    if workers is None and worker_pool is not None:
        workers = worker_pool.workers
    ctx, operators, project, metrics = _prepare(
        db, plan, row_limit, verify, batch_size=batch_size,
        center_cache=center_cache, workers=workers,
        parallel_backend=parallel_backend, morsel_size=morsel_size,
        sanitize=sanitize,
    )
    io_before = db.stats.snapshot()
    started = time.perf_counter()

    if ctx.parallel:
        execution = _parallel_execution(
            db, plan, ctx, operators, project, worker_pool
        )
        try:
            rows = list(project.rows(execution.results()))
        finally:
            execution.finish()
        metrics.elapsed_seconds = time.perf_counter() - started
        io = db.stats.delta_since(io_before)
        io.add(execution.worker_io_delta())
        metrics.io = io
        metrics.peak_temporal_rows = max(
            (op.rows_out for op in metrics.operators), default=0
        )
        metrics.result_rows = len(rows)
        # the context's private recorder counts this run's own traffic
        # exactly (no global-counter deltas, so overlapping queries never
        # bleed into each other); worker-local cache counts fold on top
        metrics.center_cache = _merge_worker_cache(
            ctx.cache_stats if center_cache is not None else None,
            execution.cache_counts,
        )
        metrics.parallel = execution.stats
        return QueryResult(
            columns=tuple(plan.pattern.variables), rows=rows, plan=plan,
            metrics=metrics,
        )

    table: Optional[TemporalTable] = None
    for op in operators:
        source = table.scan() if table is not None else None
        output = TemporalTable.from_layout(db.pool, op.layout, name=temp_name(op.name))
        for row in op.rows(source):
            output.insert(row)
        table = output
        metrics.peak_temporal_rows = max(metrics.peak_temporal_rows, table.row_count)

    rows = list(project.rows(table.scan()))

    metrics.elapsed_seconds = time.perf_counter() - started
    metrics.io = db.stats.delta_since(io_before)
    metrics.result_rows = len(rows)
    metrics.center_cache = ctx.cache_stats if center_cache is not None else None
    return QueryResult(
        columns=tuple(plan.pattern.variables), rows=rows, plan=plan, metrics=metrics
    )


# ----------------------------------------------------------------------
# driver 2: streaming (pipelined, LIMIT pushdown)
# ----------------------------------------------------------------------
class StreamingResult:
    """Lazy row iterator with the same :class:`RunMetrics` as a full run.

    Nothing executes until the first row is pulled; ``metrics`` is
    populated incrementally by the operators and finalized (elapsed time,
    I/O delta, result count, peak intermediate size) when the stream is
    exhausted.  With a ``limit``, upstream operators stop early and the
    metrics cover only the work actually done.

    Under parallel execution ``parallel`` holds the run's
    :class:`~repro.query.physical.parallel.ParallelExecution`;
    :meth:`close` (or garbage collection of the iterator chain) cancels
    its outstanding morsels.  Call :meth:`close` to abandon any stream
    deterministically — it is safe on sequential streams too.
    """

    def __init__(
        self,
        rows: Iterator[Row],
        metrics: RunMetrics,
        db: GraphDatabase,
        cache_stats: Optional[CacheStats] = None,
        parallel: Optional[ParallelExecution] = None,
        columns: Tuple[str, ...] = (),
    ):
        self._rows = rows
        self._db = db
        self._io_before: Optional[IOStats] = None
        self._started: Optional[float] = None
        # the context's private recorder: exact per-run cache accounting
        # even while other queries hammer the same shared CenterCache
        self._cache_stats = cache_stats
        self._finalized = False
        self.metrics = metrics
        self.parallel = parallel
        #: projected output columns, in row order (pattern variables) —
        #: same contract as :attr:`QueryResult.columns`
        self.columns = columns

    def __iter__(self) -> "StreamingResult":
        return self

    def __next__(self) -> Row:
        if self._started is None:
            self._started = time.perf_counter()
            self._io_before = self._db.stats.snapshot()
        try:
            row = next(self._rows)
        except StopIteration:
            self._finalize()
            raise
        self.metrics.result_rows += 1
        return row

    def close(self) -> None:
        """Abandon the stream early: close the operator chain, cancel
        outstanding morsels, and finalize the metrics over the work
        actually performed.  A close before exhaustion marks the run
        ``truncated`` (``stop_reason="closed"`` unless the stream already
        stopped itself at a limit or deadline)."""
        if not self._finalized:
            self.metrics.truncated = True
            if self.metrics.stop_reason is None:
                self.metrics.stop_reason = "closed"
        self._rows.close()
        if self.parallel is not None:
            self.parallel.finish()
        if self._started is not None:
            self._finalize()

    def _finalize(self) -> None:
        if self._finalized:
            return
        self._finalized = True
        metrics = self.metrics
        metrics.elapsed_seconds = time.perf_counter() - (self._started or 0.0)
        if self._io_before is not None:
            metrics.io = self._db.stats.delta_since(self._io_before)
            if self.parallel is not None:
                metrics.io.add(self.parallel.worker_io_delta())
        metrics.peak_temporal_rows = max(
            (op.rows_out for op in metrics.operators), default=0
        )
        metrics.center_cache = self._cache_stats
        if self.parallel is not None:
            metrics.center_cache = _merge_worker_cache(
                metrics.center_cache, self.parallel.cache_counts
            )
            metrics.parallel = self.parallel.stats


def execute_plan_streaming(
    db: GraphDatabase,
    plan: Plan,
    limit: Optional[int] = None,
    row_limit: Optional[int] = None,
    verify: bool = False,
    batch_size: Optional[int] = None,
    center_cache: Optional[CenterCache] = None,
    workers: Optional[int] = None,
    parallel_backend: Optional[str] = None,
    morsel_size: Optional[int] = None,
    worker_pool: Optional[WorkerPool] = None,
    sanitize: bool = False,
    timeout: Optional[float] = None,
) -> StreamingResult:
    """Yield projected result rows lazily; stop early at *limit*.

    The plan is verified (optionally) and validated before any row is
    produced; ``row_limit`` guards every operator's output exactly as in
    :func:`execute_plan`, and the returned :class:`StreamingResult`
    carries per-operator metrics identical to the materializing driver's
    once the stream is fully drained.  ``batch_size``/``center_cache``
    select the vectorized substrate and
    ``workers``/``parallel_backend``/``morsel_size``/``worker_pool`` the
    morsel scheduler, exactly as in :func:`execute_plan`; under parallel
    execution the final stage's morsels are merged lazily, and stopping
    at *limit* (or :meth:`StreamingResult.close`) cancels the morsels
    that have not started yet.

    ``timeout`` is a per-query deadline in seconds, measured from the
    first row pull: once it expires the stream stops before the next
    pull, the outstanding morsels are cancelled, and the metrics are
    flagged ``truncated`` with ``stop_reason="timeout"``.  Cancellation
    is cooperative — the check runs between output rows, so a single
    long-running operator stage is bounded by ``row_limit``, not by the
    deadline.  Stopping at *limit* likewise flags the run truncated
    (``stop_reason="limit"``): the delivered rows are a prefix of the
    full result, which may or may not have had more rows.
    """
    if workers is None and worker_pool is not None:
        workers = worker_pool.workers
    ctx, operators, project, metrics = _prepare(
        db, plan, row_limit, verify, batch_size=batch_size,
        center_cache=center_cache, workers=workers,
        parallel_backend=parallel_backend, morsel_size=morsel_size,
        sanitize=sanitize,
    )

    execution: Optional[ParallelExecution] = None
    if ctx.parallel:
        execution = _parallel_execution(
            db, plan, ctx, operators, project, worker_pool
        )
        projected = project.rows(execution.results())
    else:
        source: Optional[Iterator[Row]] = None
        for op in operators:
            source = op.rows(source)
        projected = project.rows(source)

    def stop(reason: str) -> None:
        metrics.truncated = True
        metrics.stop_reason = reason

    def bounded() -> Iterator[Row]:
        try:
            if limit is not None and limit <= 0:
                stop("limit")
                return
            # the deadline clock starts at the first pull, matching the
            # wall clock StreamingResult reports in elapsed_seconds
            deadline = (
                time.perf_counter() + timeout if timeout is not None else None
            )
            emitted = 0
            while True:
                if deadline is not None and time.perf_counter() >= deadline:
                    stop("timeout")
                    return
                try:
                    row = next(projected)
                except StopIteration:
                    return
                yield row
                emitted += 1
                if limit is not None and emitted >= limit:
                    stop("limit")
                    return
        finally:
            # explicit teardown (not GC order): stopping at the limit or
            # closing the stream must cancel outstanding morsels now
            projected.close()
            if execution is not None:
                execution.finish()

    return StreamingResult(
        bounded(), metrics, db,
        cache_stats=ctx.cache_stats if center_cache is not None else None,
        parallel=execution,
        columns=tuple(plan.pattern.variables),
    )
