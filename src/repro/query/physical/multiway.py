"""Generic-join physical operators for cyclic patterns (multiway R-joins).

Left-deep plans eliminate one *condition* per step and must materialize
every binary R-join's intermediate; on cyclic patterns (triangles,
diamonds, cliques) those intermediates can be asymptotically larger than
the final output.  The worst-case-optimal alternative eliminates one
*variable* per step: for each candidate row, the new variable's value
set is the **intersection of its extension sets across every condition
touching it** — computed with the same sorted-array merge/gallop kernels
the batch path already uses, and never materializing a binary join.

Two operators implement one variable-elimination order:

* :class:`MultiwaySeedOp` — binds the first variable.  Its domain is the
  intersection, over the seed's incident conditions, of each condition's
  W-projection onto the variable (the union over ``w ∈ W(X, Y)`` of the
  center's labeled subcluster).  This is sound pruning — every value
  that can appear in any result survives — but enforces nothing by
  itself; each condition is *enforced* exactly once, at the step that
  eliminates its later endpoint.
* :class:`MultiwayIntersectOp` — binds one more variable ``v``.  Per
  input row, for every condition between ``v`` and an already-bound
  variable, the bound endpoint's centers (Eq. 6, ``code ∩ W``) are
  expanded to the union of their labeled subclusters (Eqs. 7-9); the
  row's extensions are the k-way intersection of those per-condition
  sets (:func:`~repro.query.physical.kernels.intersect_many` — the
  leapfrog core, folding smallest-first).

Both operators follow the established three-substrate discipline: the
scalar path probes the B+-tree index per center, the batched path runs
the sorted-array kernels with the shared
:class:`~repro.query.physical.cache.CenterCache`, and the mmap-native
path slices zero-copy W/code/subcluster views out of the snapshot —
emitted rows and every logical counter are byte-identical across the
three, which the wcoj differential suite pins.

Counter semantics (matching Filter/Fetch conventions):

* ``centers_probed`` — one per (row, condition, center) whose subcluster
  is expanded, memo hits included;
* ``nodes_fetched`` — pre-dedup subcluster volume examined, ditto;
* ``rows_in`` — candidate values examined before pruning: for the seed,
  the smallest per-condition projection (or the base extent when the
  seed has no constraints); for an intersect step, the input rows;
* ``rows_out`` — emitted rows, so ``rows_out`` summed *before* the
  projection is exactly the "intermediate rows" quantity the bench
  gates compare against left-deep plans.

Per-row extension sets are memoized on the tuple of scanned values (many
rows share bound prefixes on cyclic cores); counters are charged per row
even on memo hits, so memo state can never change the reported work —
the same replay discipline the batched Fetch uses, and what makes morsel
partitioning counter-neutral.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ...storage.snapshot import SIDE_F, SIDE_T
from ..algebra import FilterKey, Side
from . import kernels
from .context import ExecutionContext, RowLayout
from .operators import PhysicalOperator, Row

#: per-constraint resources resolved at open():
#: (x_label, y_label, side, fetch_label, snap_side, scan_position | None)
_ConstraintPlan = Tuple[str, str, Side, str, int, Optional[int]]


def _describe(constraints: Sequence[FilterKey]) -> str:
    return ",".join(f"{c[0]}->{c[1]}" for c, _ in constraints)


class _MultiwayBase(PhysicalOperator):
    """Shared substrate plumbing for the two multiway operators."""

    def __init__(
        self,
        ctx: ExecutionContext,
        name: str,
        layout: RowLayout,
        var: str,
        constraints: Tuple[FilterKey, ...],
    ) -> None:
        super().__init__(ctx, name, layout)
        self.var = var
        self.constraints = constraints
        # (x_label, y_label, side, fetch_label, snap_side) per constraint;
        # the fetched endpoint of every constraint is ``var``
        self._plans: List[Tuple[str, str, Side, str, int]] = []
        for condition, side in constraints:
            x_label, y_label = ctx.pattern.condition_labels(condition)
            fetch_label = y_label if side is Side.OUT else x_label
            snap_side = SIDE_T if side is Side.OUT else SIDE_F
            self._plans.append((x_label, y_label, side, fetch_label, snap_side))
        # per-op subcluster memo (scalar/batched; never holds views)
        self._subclusters: Dict[Tuple[int, str, bool], Sequence[int]] = {}

    def open(self) -> None:
        super().open()
        self._subclusters = {}

    def close(self) -> None:
        self._subclusters = {}

    # -- subclusters ---------------------------------------------------
    def _subcluster(
        self, center: int, fetch_label: str, side: Side, snap_side: int
    ) -> Sequence[int]:
        """One center's labeled subcluster, in the context's substrate.

        Mmap-native: a zero-copy run slice, no memo and no CenterCache —
        the slice is an O(1) re-address of the mapping, and holding views
        would pin it past ``Snapshot.close()``.  Otherwise: per-op memo,
        then the shared CenterCache (batch mode), then one B+-tree probe.
        Subclusters are stored sorted, so every representation feeds
        :func:`~repro.query.physical.kernels.union_sorted` directly.
        """
        if self.ctx.mmap_native:
            run = self.ctx.db.join_index.subcluster_view(
                center, fetch_label, snap_side
            )
            return () if run is None else run
        memo_key = (center, fetch_label, side is Side.OUT)
        partners = self._subclusters.get(memo_key)
        if partners is not None:
            return partners
        shared = self.ctx.center_cache if self.ctx.batched else None
        cached: Optional[Tuple[int, ...]] = None
        if shared is not None:
            cached = shared.get_subcluster(
                center, fetch_label, side, stats=self.ctx.cache_stats
            )
        if cached is None:
            index = self.ctx.db.join_index
            if side is Side.OUT:
                cached = index.get_t(center, fetch_label)
            else:
                cached = index.get_f(center, fetch_label)
            if shared is not None:
                shared.put_subcluster(
                    center, fetch_label, side, cached,
                    stats=self.ctx.cache_stats,
                )
        self._subclusters[memo_key] = cached
        return cached


class MultiwaySeedOp(_MultiwayBase):
    """Bind the elimination order's first variable from the join index.

    The variable's domain is the intersection over its constraints of
    each condition's W-projection onto it: for ``(condition, Side.OUT)``
    the union of ``getT(w, Y)`` over ``w ∈ W(X, Y)``, for ``Side.IN``
    the union of ``getF(w, X)``.  With no constraints (a degenerate
    single-variable core) it falls back to the base-table extent, like
    :class:`~repro.query.physical.operators.SeedScanOp`.

    Values are emitted in ascending node order — the deterministic
    enumeration the parallel scheduler and the differential suites rely
    on.  The parallel scheduler runs this operator inline in the
    coordinator (like ``SeedScanOp``) and partitions its *output* — the
    first eliminated variable's domain — into row morsels for the
    downstream :class:`MultiwayIntersectOp` stages.
    """

    def __init__(
        self,
        ctx: ExecutionContext,
        var: str,
        constraints: Tuple[FilterKey, ...] = (),
    ) -> None:
        super().__init__(ctx, f"mseed({var})", RowLayout((var,)), var, constraints)
        self.label = ctx.pattern.label(var)

    def _projection(
        self, plan: Tuple[str, str, Side, str, int]
    ) -> "kernels.array[int]":
        """One condition's W-projection onto the seed variable."""
        x_label, y_label, side, fetch_label, snap_side = plan
        index = self.ctx.db.join_index
        if self.ctx.mmap_native:
            centers: Iterable[int] = index.centers_view(x_label, y_label)
        elif self.ctx.batched:
            centers = index.centers_array(x_label, y_label)
        else:
            centers = index.centers(x_label, y_label)
        metrics = self.metrics
        metrics.centers_probed += len(centers)  # type: ignore[arg-type]
        subclusters = [
            self._subcluster(center, fetch_label, side, snap_side)
            for center in centers
        ]
        domain, volume = kernels.union_sorted(subclusters)
        metrics.nodes_fetched += volume
        return domain

    def _produce(self, source: Optional[Iterable[Row]]) -> Iterator[Row]:
        metrics = self.metrics
        if not self.constraints:
            # degenerate core: full extent, identical to SeedScanOp
            if self.ctx.mmap_native:
                for node in self.ctx.db.extent_view(self.label):
                    metrics.rows_in += 1
                    yield (node,)
                return
            for row in self.ctx.db.base_table(self.label).scan():
                metrics.rows_in += 1
                yield (row[0],)
            return
        domains: List["kernels.array[int]"] = []
        for plan in self._plans:
            domain = self._projection(plan)
            if not domain:
                return  # one empty projection proves an empty result
            domains.append(domain)
        # candidates examined = the smallest projection (intersect_many
        # folds smallest-first, so these are the values actually probed)
        metrics.rows_in += min(len(d) for d in domains)
        for node in kernels.intersect_many(domains):
            yield (node,)


class MultiwayIntersectOp(_MultiwayBase):
    """Eliminate one variable by k-way intersection of extension sets.

    Per input row, each constraint expands its bound endpoint through
    Eq. 6 (``centers = code ∩ W(X, Y)``) and Eqs. 7-9 (the union of the
    centers' labeled subclusters); the row's extensions are the
    intersection across all constraints, emitted in ascending order.  A
    row with an empty center set or an empty intersection is pruned —
    the condition is thereby *enforced*, not merely projected.

    Extension sets depend only on the tuple of scanned values, which is
    memoized; counters are charged per row even on memo hits, so the
    parallel scheduler's morsel boundaries cannot perturb them.
    """

    def __init__(
        self,
        ctx: ExecutionContext,
        input_layout: RowLayout,
        var: str,
        constraints: Tuple[FilterKey, ...],
    ) -> None:
        if not constraints:
            raise ValueError(f"multiway step for {var!r} needs >= 1 constraint")
        super().__init__(
            ctx,
            f"mjoin[{var}]({_describe(constraints)})",
            RowLayout(input_layout.variables + (var,), input_layout.pending),
            var,
            constraints,
        )
        # position of each constraint's bound (scanned) endpoint
        self.scan_positions = [
            input_layout.var_position(side.scanned_var(condition))
            for condition, side in constraints
        ]
        # scanned-values tuple -> (extensions | None, probes, volume)
        self._extensions_memo: Dict[
            Tuple[int, ...], Tuple[Optional[Tuple[int, ...]], int, int]
        ] = {}
        # batch-mode resources, resolved in open(): one (W-array,
        # pair-id, code accessor) per constraint
        self._batch_keys: List[tuple] = []

    def open(self) -> None:
        super().open()
        self._extensions_memo = {}
        self._batch_keys = []
        if self.ctx.batched:
            db = self.ctx.db
            native = self.ctx.mmap_native
            for x_label, y_label, side, _fetch_label, _snap in self._plans:
                if native:
                    w_entry = db.join_index.centers_view(x_label, y_label)
                    code_of: Callable[[int], Sequence[int]] = (
                        db.out_code_view if side is Side.OUT else db.in_code_view
                    )
                else:
                    w_entry = db.join_index.centers_array(x_label, y_label)
                    code_of = (
                        db.out_code_array if side is Side.OUT else db.in_code_array
                    )
                self._batch_keys.append(
                    (w_entry, kernels.intern_label_pair(x_label, y_label), code_of)
                )

    def close(self) -> None:
        super().close()
        self._extensions_memo = {}
        self._batch_keys = []

    def _centers(self, index: int, node: int) -> Tuple[int, ...]:
        """Eq. 6 for constraint *index*'s bound endpoint, sorted."""
        x_label, y_label, side, _fetch_label, _snap = self._plans[index]
        if not self.ctx.batched:
            db = self.ctx.db
            if side is Side.OUT:
                centers = db.get_centers(node, x_label, y_label)
            else:
                centers = db.get_centers_reverse(node, x_label, y_label)
            return tuple(sorted(centers))
        w_array, pair_id, code_of = self._batch_keys[index]
        cache = self.ctx.center_cache
        cached: Optional[Tuple[int, ...]] = None
        if cache is not None:
            cached = cache.get_centers(
                node, pair_id, side, stats=self.ctx.cache_stats
            )
        if cached is None:
            if w_array:
                cached = tuple(kernels.intersect(code_of(node), w_array))
            else:
                cached = ()
            if cache is not None:
                cache.put_centers(
                    node, pair_id, side, cached,
                    stats=self.ctx.cache_stats,
                )
        return cached

    def _compute_extensions(
        self, scanned: Tuple[int, ...]
    ) -> Tuple[Optional[Tuple[int, ...]], int, int]:
        """(extensions | None, centers probed, subcluster volume)."""
        probes = 0
        volume = 0
        per_condition: List[Sequence[int]] = []
        for index, (node, plan) in enumerate(zip(scanned, self._plans)):
            _x, _y, side, fetch_label, snap_side = plan
            centers = self._centers(index, node)
            if not centers:
                return None, probes, volume
            probes += len(centers)
            subclusters = [
                self._subcluster(center, fetch_label, side, snap_side)
                for center in centers
            ]
            extensions, vol = kernels.union_sorted(subclusters)
            volume += vol
            if not extensions:
                return None, probes, volume
            per_condition.append(extensions)
        return tuple(kernels.intersect_many(per_condition)), probes, volume

    def _produce(self, source: Optional[Iterable[Row]]) -> Iterator[Row]:
        metrics = self.metrics
        memo = self._extensions_memo
        positions = self.scan_positions
        for row in self._pull(source):
            scanned = tuple(row[p] for p in positions)
            entry = memo.get(scanned)
            if entry is None:
                entry = memo[scanned] = self._compute_extensions(scanned)
            extensions, probes, volume = entry
            # replay the counters on memo hits too: they describe the
            # algorithm's work per row, not the memoization shortcut
            metrics.centers_probed += probes
            metrics.nodes_fetched += volume
            if not extensions:
                continue
            base = tuple(row)
            for partner in extensions:
                yield base + (partner,)


__all__ = ["MultiwayIntersectOp", "MultiwaySeedOp"]
