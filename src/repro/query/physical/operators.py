"""The Volcano-style physical operators — Algorithms 1 and 2, once.

Every operator is a class with the classic ``open()/rows()/close()``
lifecycle over a shared :class:`~repro.query.physical.context.ExecutionContext`:

* :class:`SeedScanOp` — materialize one variable column from its base
  table extent (single-variable patterns).
* :class:`SeedJoinOp` — HPSJ, Algorithm 1: R-join two *base* tables
  entirely from the cluster-based R-join index (per center
  ``w ∈ W(X,Y)``, the Cartesian product ``getF(w,X) × getT(w,Y)``,
  unioned).  "There is no need to access base tables."
* :class:`SharedFilterOp` — the Filter procedure of Algorithm 2 = an
  R-semijoin: for each temporal tuple, ``X_i = getCenters(x_i, X, Y)``
  (Eq. 6); tuples with ``X_i = ∅`` are pruned, survivors carry their
  center sets forward.  One scan serves several conditions on the same
  scanned variable (Remark 3.1), and repeated node values hit a
  per-operator memo instead of re-probing and re-sorting.
* :class:`FetchOp` — the Fetch procedure: per surviving tuple and center,
  Cartesian-product with the center's labeled T-subcluster (or
  F-subcluster for the mirrored direction), deduplicating per tuple since
  several centers can witness the same partner node.
* :class:`SelectionOp` — the self R-join (Eq. 5): test
  ``out(x) ∩ in(y) ≠ ∅`` between two already-bound columns.
* :class:`ProjectOp` — project the pattern's variables in declaration
  order off the final intermediate.

The two drivers in :mod:`repro.query.physical.drivers` differ only in
how they move rows between these operators: the materializing driver
drains each ``rows()`` into a temporal table, the streaming driver chains
the generators.  Deduplication sets, the Remark 3.1 shared scan, the
per-center subcluster cache and all metric counting live here and
nowhere else, so the two execution modes cannot drift apart.

When the context reports ``mmap_native`` (batched execution over a
view-capable snapshot-backed database), every operator routes its reads
through the snapshot's blessed zero-copy view API instead of
materializing codes, W-entries and subclusters: the seed scan iterates
the per-label node column, HPSJ and Fetch slice subcluster runs, Filter
gallops code slices into W-slices, Selection intersects code slices
directly.  This changes only the *representation* handed to the kernels
— emitted rows and every per-op counter are byte-identical to the
materializing path, which the mmap-native differential suite pins.
Views are consumed and dropped within the call; only materialized
tuples enter any memo or cache, so nothing here can pin the mapping
past ``Snapshot.close()``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..algebra import (
    FetchStep,
    FilterKey,
    FilterStep,
    MultiwaySeed,
    MultiwayStep,
    Plan,
    RowLimitExceeded,
    SeedJoin,
    SeedScan,
    SelectionStep,
    Side,
)
from ...storage.snapshot import SIDE_F, SIDE_T
from ..pattern import Condition
from . import kernels
from .context import ExecutionContext, OperatorMetrics, RowLayout

Row = Tuple[int, ...]


class PhysicalOperator:
    """Base class: lifecycle, row accounting, and the row-limit guard.

    Subclasses implement :meth:`_produce`; the base wraps it so that

    * ``open()`` resets all per-execution state (dedup sets, memos and
      the metrics counters), making an operator instance reusable;
    * every emitted row is counted into ``metrics.rows_out`` and checked
      against the context's ``row_limit`` budget — the one enforcement
      point for both drivers;
    * ``close()`` releases per-execution state even when the consumer
      abandons the iterator early (LIMIT pushdown closes generators).
    """

    def __init__(self, ctx: ExecutionContext, name: str, layout: RowLayout):
        self.ctx = ctx
        self.name = name
        #: schema of the rows this operator emits
        self.layout = layout
        self.metrics = OperatorMetrics(operator=name)

    # -- lifecycle -----------------------------------------------------
    def open(self) -> None:
        """Reset per-execution state; called when ``rows()`` starts."""
        self.metrics.rows_in = 0
        self.metrics.rows_out = 0
        self.metrics.centers_probed = 0
        self.metrics.nodes_fetched = 0

    def rows(self, source: Optional[Iterable[Row]] = None) -> Iterator[Row]:
        """The operator's output stream (opens on first pull)."""
        self.open()
        limit = self.ctx.row_limit
        metrics = self.metrics
        try:
            for row in self._produce(source):
                metrics.rows_out += 1
                if limit is not None and metrics.rows_out > limit:
                    raise RowLimitExceeded(
                        f"operator {self.name} exceeded {limit} rows"
                    )
                yield row
        finally:
            self.close()

    def close(self) -> None:
        """Release per-execution state; called when the stream ends."""

    # -- helpers -------------------------------------------------------
    def _pull(self, source: Optional[Iterable[Row]]) -> Iterator[Row]:
        """Iterate the child's rows, counting them into ``rows_in``."""
        if source is None:
            raise TypeError(f"operator {self.name} requires an input stream")
        metrics = self.metrics
        for row in source:
            metrics.rows_in += 1
            yield row

    def _produce(self, source: Optional[Iterable[Row]]) -> Iterator[Row]:
        raise NotImplementedError


# ----------------------------------------------------------------------
# seeds
# ----------------------------------------------------------------------
class SeedScanOp(PhysicalOperator):
    """Scan one base table to seed a single-variable intermediate.

    Mmap-native mode reads the snapshot's per-label node column instead
    — same sorted node ids the primary-key scan yields, without ever
    materializing the base table's rows (the single largest allocation
    of a scan-seeded query).
    """

    def __init__(self, ctx: ExecutionContext, var: str):
        super().__init__(ctx, f"scan({var})", RowLayout((var,)))
        self.var = var
        self.label = ctx.pattern.label(var)

    def _produce(self, source: Optional[Iterable[Row]]) -> Iterator[Row]:
        metrics = self.metrics
        if self.ctx.mmap_native:
            for node in self.ctx.db.extent_view(self.label):
                metrics.rows_in += 1
                yield (node,)
            return
        for row in self.ctx.db.base_table(self.label).scan():
            metrics.rows_in += 1
            yield (row[0],)


class SeedJoinOp(PhysicalOperator):
    """HPSJ (Algorithm 1): R-join two base tables via the join index.

    ``rows_in`` counts the candidate pairs enumerated from the
    subcluster Cartesian products; ``rows_out`` the deduplicated pairs.
    """

    def __init__(self, ctx: ExecutionContext, condition: Condition):
        src, dst = condition
        super().__init__(ctx, f"hpsj({src}->{dst})", RowLayout(condition))
        self.condition = condition
        self.x_label, self.y_label = ctx.pattern.condition_labels(condition)
        self._seen: set = set()

    def open(self) -> None:
        super().open()
        self._seen = set()

    def close(self) -> None:
        self._seen = set()

    def center_worklist(self) -> List[int]:
        """The ``W(X, Y)`` worklist this seed iterates, in index order.

        The parallel scheduler partitions exactly this list into center
        morsels; keeping the enumeration order identical to
        :meth:`_produce` is what makes the morsel-merged output
        byte-identical to the sequential oracle.
        """
        return list(self.ctx.db.join_index.centers(self.x_label, self.y_label))

    def _enumerate(self, centers: Iterable[int]) -> Iterator[Row]:
        """Candidate pairs for a slice of the worklist, locally deduped."""
        db = self.ctx.db
        metrics = self.metrics
        seen = self._seen
        # mmap-native: each leaf read is a pair of dicts of zero-copy
        # run slices, consumed immediately below, never retained
        get_ft = (
            db.join_index.get_ft_views
            if self.ctx.mmap_native
            else db.join_index.get_ft
        )
        for center in centers:
            metrics.centers_probed += 1
            # one combined probe: both subcluster maps live in the same
            # leaf, so get_f + get_t would descend the tree twice for it
            f_sub, t_sub = get_ft(center)
            f_nodes = f_sub.get(self.x_label, ())
            t_nodes = t_sub.get(self.y_label, ())
            metrics.nodes_fetched += len(f_nodes) + len(t_nodes)
            for x in f_nodes:
                for y in t_nodes:
                    metrics.rows_in += 1
                    pair = (x, y)
                    if pair not in seen:
                        seen.add(pair)
                        yield pair

    def rows_for_centers(self, centers: Iterable[int]) -> Iterator[Row]:
        """Run the seed over one center morsel (worker-side entry point).

        Unlike :meth:`rows` this neither applies the row-limit guard nor
        owns the final ``rows_out`` count — deduplication across morsels
        happens in the scheduler, which recounts the merged output; the
        per-morsel candidate counters it *does* accumulate here sum to
        the sequential values exactly.
        """
        self.open()
        try:
            for pair in self._enumerate(centers):
                self.metrics.rows_out += 1
                yield pair
        finally:
            self.close()

    def _produce(self, source: Optional[Iterable[Row]]) -> Iterator[Row]:
        index = self.ctx.db.join_index
        if self.ctx.mmap_native:
            # W(X, Y) as a zero-copy slice — same ids, no decode/memoize
            centers: Iterable[int] = index.centers_view(
                self.x_label, self.y_label
            )
        else:
            centers = index.centers(self.x_label, self.y_label)
        yield from self._enumerate(centers)


# ----------------------------------------------------------------------
# HPSJ+ filter / fetch
# ----------------------------------------------------------------------
class SharedFilterOp(PhysicalOperator):
    """R-semijoin(s) in one shared scan (Filter of Algorithm 2).

    All *keys* must scan the same variable with the same code side
    (Remark 3.1); each surviving row gains one centers column per key.  A
    row survives only if *every* key yields a non-empty center set — any
    empty set proves the row can never satisfy that reachability
    condition.  Because the verdict depends only on the scanned node, a
    per-operator memo caches each node's computed center columns (or its
    pruning) so repeated values pay neither the index probes nor the
    per-key sort again.
    """

    def __init__(
        self,
        ctx: ExecutionContext,
        input_layout: RowLayout,
        keys: Sequence[FilterKey],
    ):
        keys = tuple(keys)
        scanned_vars = {side.scanned_var(cond) for cond, side in keys}
        if len(scanned_vars) != 1:
            raise ValueError(
                f"shared filter must scan one variable, got {scanned_vars}"
            )
        if len({side for _, side in keys}) != 1:
            raise ValueError(
                "shared filter must use one code side (Remark 3.1 sharing condition)"
            )
        scanned = next(iter(scanned_vars))
        names = ",".join(f"{c[0]}->{c[1]}" for c, _ in keys)
        super().__init__(
            ctx,
            f"filter[{scanned}]({names})",
            RowLayout(input_layout.variables, input_layout.pending + keys),
        )
        self.keys = keys
        self.position = input_layout.var_position(scanned)
        # label pairs are resolved once here, not per row
        self.label_pairs = [
            (ctx.pattern.condition_labels(cond), side) for cond, side in keys
        ]
        self._memo: Dict[int, Optional[Tuple[Tuple[int, ...], ...]]] = {}
        # batch-mode resources, resolved in open(): one (W-array,
        # pair-id, code-array accessor, side) per key
        self._batch_keys: List[tuple] = []

    def open(self) -> None:
        super().open()
        self._memo = {}
        self._batch_keys = []
        if self.ctx.batched:
            db = self.ctx.db
            native = self.ctx.mmap_native
            for (x_label, y_label), side in self.label_pairs:
                if native:
                    # zero-copy W-slice and per-node code slices; the
                    # intersection results entering the memo/cache are
                    # materialized tuples either way
                    w_entry = db.join_index.centers_view(x_label, y_label)
                    code_of = (
                        db.out_code_view if side is Side.OUT else db.in_code_view
                    )
                else:
                    w_entry = db.join_index.centers_array(x_label, y_label)
                    code_of = (
                        db.out_code_array if side is Side.OUT else db.in_code_array
                    )
                self._batch_keys.append(
                    (
                        w_entry,
                        kernels.intern_label_pair(x_label, y_label),
                        code_of,
                        side,
                    )
                )

    def close(self) -> None:
        self._memo = {}
        self._batch_keys = []

    def _centers_for(self, node: int) -> Optional[Tuple[Tuple[int, ...], ...]]:
        """The row suffix for *node*, or None if any key prunes it."""
        db = self.ctx.db
        center_sets: List[Tuple[int, ...]] = []
        for (x_label, y_label), side in self.label_pairs:
            if side is Side.OUT:
                centers = db.get_centers(node, x_label, y_label)
            else:
                centers = db.get_centers_reverse(node, x_label, y_label)
            if not centers:
                return None
            center_sets.append(tuple(sorted(centers)))
        return tuple(center_sets)

    def _centers_for_batched(self, node: int) -> Optional[Tuple[Tuple[int, ...], ...]]:
        """Kernel path for one fresh node: gallop each code into W(X, Y).

        Semantics match :meth:`_centers_for` exactly (sorted center
        tuples, None on any empty key) — the codes and W-entries are the
        same sets, only the representation (sorted arrays, interned pair
        ids, cross-query cache) differs.
        """
        cache = self.ctx.center_cache
        center_sets: List[Tuple[int, ...]] = []
        for w_array, pair_id, code_array_of, side in self._batch_keys:
            centers: Optional[Tuple[int, ...]] = None
            if cache is not None:
                centers = cache.get_centers(
                    node, pair_id, side, stats=self.ctx.cache_stats
                )
            if centers is None:
                if w_array:
                    centers = tuple(kernels.intersect(code_array_of(node), w_array))
                else:
                    centers = ()
                if cache is not None:
                    cache.put_centers(
                        node, pair_id, side, centers,
                        stats=self.ctx.cache_stats,
                    )
            if not centers:
                return None
            center_sets.append(centers)
        return tuple(center_sets)

    def _produce(self, source: Optional[Iterable[Row]]) -> Iterator[Row]:
        if self.ctx.batched:
            yield from self._produce_batched(source)
            return
        memo = self._memo
        position = self.position
        for row in self._pull(source):
            node = row[position]
            if node in memo:
                suffix = memo[node]
            else:
                suffix = memo[node] = self._centers_for(node)
            if suffix is not None:
                yield tuple(row) + suffix

    def _produce_batched(self, source: Optional[Iterable[Row]]) -> Iterator[Row]:
        """Block-at-a-time Filter: batched getCenters over distinct nodes.

        Rows are emitted in input order, so the output is identical to
        the scalar path's row for row, not just as a set.
        """
        memo = self._memo
        position = self.position
        centers_for = self._centers_for_batched
        for block in kernels.iter_blocks(self._pull(source), self.ctx.batch_size):
            # phase 1: resolve every distinct fresh node of the block
            for node in {row[position] for row in block} - memo.keys():
                memo[node] = centers_for(node)
            # phase 2: emit survivors in input order
            for row in block:
                suffix = memo[row[position]]
                if suffix is not None:
                    yield tuple(row) + suffix


class FetchOp(PhysicalOperator):
    """Fetch of Algorithm 2: materialize the condition's other variable.

    Consumes the pending centers column written by the matching Filter.
    Per row, the new column's values are the union over the row's centers
    of the center's labeled T-subcluster (``Side.OUT``) or F-subcluster
    (``Side.IN``); the union is deduplicated because one partner node may
    be witnessed by several centers.
    """

    def __init__(
        self,
        ctx: ExecutionContext,
        input_layout: RowLayout,
        condition: Condition,
        side: Side,
    ):
        src, dst = condition
        key: FilterKey = (condition, side)
        remaining = tuple(k for k in input_layout.pending if k != key)
        super().__init__(
            ctx,
            f"fetch({src}->{dst})[{side.value}]",
            RowLayout(
                input_layout.variables + (side.fetched_var(condition),),
                remaining,
            ),
        )
        self.condition = condition
        self.side = side
        self.centers_position = input_layout.pending_position(key)
        x_label, y_label = ctx.pattern.condition_labels(condition)
        self.fetch_label = y_label if side is Side.OUT else x_label
        # snapshot-side tag of the subcluster run the view path slices:
        # Side.OUT fetches the T-subcluster, Side.IN the F-subcluster
        self.snap_side = SIDE_T if side is Side.OUT else SIDE_F
        # positions of the surviving pending columns in the input rows
        self.keep_positions = [
            input_layout.pending_position(k) for k in remaining
        ]
        self.var_count = len(input_layout.variables)
        # Per-operator memo of subcluster contents: the paper's IO_rji is
        # an *average per retrieved node* precisely because a center's
        # leaf stays pinned while its subcluster is consumed —
        # re-descending the index for every (row, center) pair would
        # overcharge the fetch by the tree height.
        self._subclusters: Dict[int, Tuple[int, ...]] = {}
        # batch mode: the deduplicated Cartesian expansion per distinct
        # centers-tuple, (partners, pre-dedup volume) — many rows share a
        # centers column value, and the scalar path re-deduplicates the
        # same union for each of them
        self._partners_memo: Dict[Tuple[int, ...], Tuple[Tuple[int, ...], int]] = {}

    def open(self) -> None:
        super().open()
        self._subclusters = {}
        self._partners_memo = {}

    def close(self) -> None:
        self._subclusters = {}
        self._partners_memo = {}

    def _subcluster(self, center: int) -> Tuple[int, ...]:
        """One center's labeled subcluster: per-op memo, then the shared
        CenterCache (batch mode), then a single B+-tree probe."""
        partners = self._subclusters.get(center)
        if partners is not None:
            return partners
        shared = self.ctx.center_cache if self.ctx.batched else None
        if shared is not None:
            partners = shared.get_subcluster(
                center, self.fetch_label, self.side, stats=self.ctx.cache_stats
            )
        if partners is None:
            db = self.ctx.db
            if self.side is Side.OUT:
                partners = db.join_index.get_t(center, self.fetch_label)
            else:
                partners = db.join_index.get_f(center, self.fetch_label)
            if shared is not None:
                shared.put_subcluster(
                    center, self.fetch_label, self.side, partners,
                    stats=self.ctx.cache_stats,
                )
        self._subclusters[center] = partners
        return partners

    def _subcluster_view(self, center: int):
        """View twin of :meth:`_subcluster`: a zero-copy run slice.

        No memo and no CenterCache on purpose — the slice is an O(1)
        re-address of the mapping (there is no tree descent to amortize),
        and holding views in a memo or the cross-query cache would pin
        the mapping past ``Snapshot.close()``.  Only materialized tuples
        (the per-centers-set unions in ``_partners_memo``) are cached.
        """
        run = self.ctx.db.join_index.subcluster_view(
            center, self.fetch_label, self.snap_side
        )
        return () if run is None else run

    def _produce(self, source: Optional[Iterable[Row]]) -> Iterator[Row]:
        if self.ctx.batched:
            yield from self._produce_batched(source)
            return
        metrics = self.metrics
        subcluster = self._subcluster
        for row in self._pull(source):
            base = tuple(row[: self.var_count])
            carried = tuple(row[p] for p in self.keep_positions)
            seen_partners: set = set()
            for center in row[self.centers_position]:
                metrics.centers_probed += 1
                partners = subcluster(center)
                metrics.nodes_fetched += len(partners)
                for partner in partners:
                    if partner not in seen_partners:
                        seen_partners.add(partner)
                        yield base + (partner,) + carried

    def _produce_batched(self, source: Optional[Iterable[Row]]) -> Iterator[Row]:
        """Block-at-a-time Fetch: one dedup union per distinct centers set.

        The logical counters are charged per row exactly like the scalar
        path (``centers_probed`` per (row, center), ``nodes_fetched`` per
        subcluster node examined) even when the union itself comes from
        the memo — the counters describe Algorithm 2's work, not the
        memoization shortcut.
        """
        metrics = self.metrics
        memo = self._partners_memo
        centers_position = self.centers_position
        subcluster = (
            self._subcluster_view if self.ctx.mmap_native else self._subcluster
        )
        for block in kernels.iter_blocks(self._pull(source), self.ctx.batch_size):
            for row in block:
                centers = row[centers_position]
                entry = memo.get(centers)
                if entry is None:
                    entry = memo[centers] = kernels.gather_union(
                        [subcluster(center) for center in centers]
                    )
                partners, volume = entry
                metrics.centers_probed += len(centers)
                metrics.nodes_fetched += volume
                base = tuple(row[: self.var_count])
                carried = tuple(row[p] for p in self.keep_positions)
                for partner in partners:
                    yield base + (partner,) + carried


class SelectionOp(PhysicalOperator):
    """Self R-join (Eq. 5): keep rows with ``out(x) ∩ in(y) ≠ ∅``.

    Both variables are already bound; the check costs two graph-code
    retrievals per row (the ``2·(IO_B + IO_X)·|T_R|`` term of Section 4),
    amortized by the working cache.
    """

    def __init__(
        self,
        ctx: ExecutionContext,
        input_layout: RowLayout,
        condition: Condition,
    ):
        src, dst = condition
        super().__init__(
            ctx,
            f"select({src}->{dst})",
            RowLayout(input_layout.variables, input_layout.pending),
        )
        self.condition = condition
        self.src_position = input_layout.var_position(src)
        self.dst_position = input_layout.var_position(dst)

    def _produce(self, source: Optional[Iterable[Row]]) -> Iterator[Row]:
        db = self.ctx.db
        src_position = self.src_position
        dst_position = self.dst_position
        if self.ctx.mmap_native:
            # Eq. 5 on zero-copy code slices: non-empty intersection of
            # out(x) and in(y), no frozenset materialization per row
            out_view = db.out_code_view
            in_view = db.in_code_view
            for row in self._pull(source):
                if kernels.intersect(
                    out_view(row[src_position]), in_view(row[dst_position])
                ):
                    yield tuple(row)
            return
        for row in self._pull(source):
            if db.reaches(row[src_position], row[dst_position]):
                yield tuple(row)


class ProjectOp(PhysicalOperator):
    """Project the pattern's variables, in declaration order."""

    def __init__(self, ctx: ExecutionContext, input_layout: RowLayout):
        variables = tuple(ctx.pattern.variables)
        super().__init__(ctx, "project", RowLayout(variables))
        if input_layout.pending:
            raise RuntimeError(
                f"plan finished with unconsumed filters {input_layout.pending}"
            )
        self.positions = [input_layout.var_position(v) for v in variables]

    def _produce(self, source: Optional[Iterable[Row]]) -> Iterator[Row]:
        positions = self.positions
        for row in self._pull(source):
            yield tuple(row[p] for p in positions)


# ----------------------------------------------------------------------
# plan -> operator pipeline
# ----------------------------------------------------------------------
def build_pipeline(
    ctx: ExecutionContext, plan: Plan
) -> Tuple[List[PhysicalOperator], ProjectOp]:
    """Instantiate one operator per plan step, plus the final projection.

    The returned step operators line up index-for-index with
    ``plan.steps`` (so per-operator metrics report one entry per step);
    the :class:`ProjectOp` is returned separately because it is driver
    plumbing, not a costed plan step.
    """
    # imported here: the multiway module subclasses PhysicalOperator,
    # so the dependency must point from it to this module, not back
    from .multiway import MultiwayIntersectOp, MultiwaySeedOp

    operators: List[PhysicalOperator] = []
    layout: Optional[RowLayout] = None
    for step in plan.steps:
        op: PhysicalOperator
        if isinstance(step, SeedScan):
            op = SeedScanOp(ctx, step.var)
        elif isinstance(step, SeedJoin):
            op = SeedJoinOp(ctx, step.condition)
        elif isinstance(step, MultiwaySeed):
            op = MultiwaySeedOp(ctx, step.var, step.constraints)
        elif isinstance(step, FilterStep):
            op = SharedFilterOp(ctx, layout, step.keys)
        elif isinstance(step, FetchStep):
            op = FetchOp(ctx, layout, step.condition, step.side)
        elif isinstance(step, SelectionStep):
            op = SelectionOp(ctx, layout, step.condition)
        elif isinstance(step, MultiwayStep):
            op = MultiwayIntersectOp(ctx, layout, step.var, step.constraints)
        else:  # pragma: no cover - Plan.validate rejects unknown steps
            raise TypeError(f"unknown plan step {step!r}")
        operators.append(op)
        layout = op.layout
    return operators, ProjectOp(ctx, layout)
