"""Execution context shared by every physical operator.

One :class:`ExecutionContext` is built per plan execution and handed to
each operator: it carries the database handle, the row-limit budget that
guards every intermediate, and a factory for temporal-table names.  The
row *layout* (which variable columns a row currently has, plus one
centers column per pending Filter) travels separately as a
:class:`RowLayout`, because it changes operator by operator while the
context does not.

:class:`OperatorMetrics` lives here too — it is the per-operator half of
the run instrumentation, produced identically by both drivers because
the counting happens inside the operators themselves.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from ...db.database import GraphDatabase
from ..algebra import FilterKey
from ..pattern import GraphPattern, PatternError
from .cache import CenterCache

_name_counter = itertools.count()

#: default rows-per-block when a caller enables batching without a size
DEFAULT_BATCH_SIZE = 1024

#: default rows per parallel morsel (centers morsels are derived from it,
#: see :mod:`repro.query.physical.parallel`)
DEFAULT_MORSEL_SIZE = 1024


def temp_name(tag: str) -> str:
    """A unique name for one temporal table (materializing driver only)."""
    return f"{tag}#{next(_name_counter)}"


@dataclass
class OperatorMetrics:
    """Per-operator instrumentation.

    Invariants (asserted by the test suite): ``rows_out <= rows_in`` for
    every row-consuming operator (Filter, Selection), and
    ``rows_out <= rows_in`` on seeds too, where ``rows_in`` counts the
    candidate rows examined (base-table rows for a scan, candidate
    center-pairs for HPSJ) before deduplication or pruning.
    """

    operator: str
    rows_in: int = 0
    rows_out: int = 0
    centers_probed: int = 0
    nodes_fetched: int = 0

    @property
    def pruned(self) -> int:
        return max(0, self.rows_in - self.rows_out)


class RowLayout:
    """Schema of the rows flowing between two operators.

    Mirrors :class:`~repro.query.algebra.TemporalTable`'s column layout
    (variables first, then one centers column per pending filter) without
    any storage behind it — the streaming driver uses it bare, the
    materializing driver turns it into a real temporal table.
    """

    __slots__ = ("variables", "pending")

    def __init__(
        self, variables: Sequence[str], pending: Sequence[FilterKey] = ()
    ) -> None:
        self.variables: Tuple[str, ...] = tuple(variables)
        self.pending: Tuple[FilterKey, ...] = tuple(pending)

    def var_position(self, var: str) -> int:
        try:
            return self.variables.index(var)
        except ValueError:
            raise PatternError(
                f"variable {var!r} not bound; bound: {self.variables}"
            ) from None

    def pending_position(self, key: FilterKey) -> int:
        try:
            return len(self.variables) + self.pending.index(key)
        except ValueError:
            raise PatternError(f"no pending centers for filter {key}") from None


@dataclass
class CacheStats:
    """Per-run CenterCache activity (deltas over one plan execution)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class ExecutionContext:
    """Everything the operators need from the outside world.

    ``row_limit`` is the execution guard, not a LIMIT clause: any
    operator whose output outgrows it raises
    :class:`~repro.query.algebra.RowLimitExceeded`, under either driver.

    ``batch_size`` selects the vectorized substrate: ``None`` (default)
    runs the scalar tuple-at-a-time oracle; a value > 1 makes the Filter
    and Fetch operators process rows in blocks of that size through the
    sorted-array kernels (:mod:`repro.query.physical.kernels`).
    ``center_cache`` is the engine-owned cross-query LRU consulted by the
    batch kernels for center sets and subclusters.

    ``workers``/``parallel_backend``/``morsel_size`` select the
    morsel-driven parallel scheduler
    (:mod:`repro.query.physical.parallel`): with ``workers > 1`` the
    drivers partition center worklists and row blocks into morsels of
    ``morsel_size`` rows and execute them on a worker pool.  ``workers``
    of ``None``/``0``/``1`` keeps the sequential paths untouched — they
    are the differential oracles for the parallel ones.

    ``sanitize`` arms the runtime tripwires of
    :mod:`repro.analysis.sanitizer` (shared-state freeze checks in
    worker morsels, per-read cache-generation assertions); it defaults
    to the ``REPRO_SANITIZE`` environment switch, re-read on every
    context construction.

    Construction is also the **cache-sync choke point**: every context
    re-syncs its ``center_cache`` against ``db.index_generation``, so no
    driver — current or future — can read entries that predate an index
    rebuild.  The deep checker's ``contract/sync-choke-point`` rule
    pins this block in place.
    """

    db: GraphDatabase
    pattern: GraphPattern
    row_limit: Optional[int] = None
    batch_size: Optional[int] = None
    center_cache: Optional[CenterCache] = None
    workers: Optional[int] = None
    parallel_backend: Optional[str] = None
    morsel_size: int = DEFAULT_MORSEL_SIZE
    sanitize: bool = False
    #: this run's private CenterCache recorder — operators pass it into
    #: every shared-cache get, so concurrent queries over one engine get
    #: exact per-query hit/miss attribution (no global-counter deltas)
    cache_stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if not self.sanitize:
            # imported lazily: the analysis layer depends on the query
            # layer, not the other way around
            from ...analysis.sanitizer import sanitize_enabled

            self.sanitize = sanitize_enabled()
        if self.center_cache is not None:
            self.center_cache.sync(self.db.index_generation)
            if self.sanitize:
                from ...analysis.sanitizer import verify_shard_isolation

                self.center_cache.bind_sanitizer(self.db)
                # audit the striped tier at the same choke point: any
                # cross-shard write or ledger drift left by an earlier
                # (possibly concurrent) query trips before this run reads
                verify_shard_isolation(self.center_cache, where="cache sync")

    @property
    def batched(self) -> bool:
        return self.batch_size is not None and self.batch_size > 1

    @property
    def mmap_native(self) -> bool:
        """True when the batch operators should address zero-copy
        snapshot slices instead of materializing arrays and tuples.

        Requires both the vectorized substrate (the scalar oracle always
        runs on materialized codes) and a view-capable snapshot-backed
        database (``db.mmap_views``).  Every result and per-op counter is
        byte-identical either way — this picks a representation, never a
        semantics.
        """
        return self.batched and getattr(self.db, "mmap_views", False)

    @property
    def parallel(self) -> bool:
        return self.workers is not None and self.workers > 1
