"""Physical operator layer: one implementation, two drivers.

This package is the single home of the paper's online-phase algebra
(HPSJ, HPSJ+ Filter/Fetch, selections, projection) as Volcano-style
operator classes, plus the two drivers that interpret a validated plan
through them: :func:`execute_plan` (materializing, the paper's HPSJ+)
and :func:`execute_plan_streaming` (pipelined, LIMIT pushdown).

Layering rule (enforced by ``lint/physical-internals``): code outside
``repro.query`` must not import from this package — the supported entry
points are :func:`repro.query.execute_plan`,
:func:`repro.query.execute_plan_streaming` and
:class:`repro.GraphEngine`.
"""

from .cache import DEFAULT_CACHE_BYTES, CenterCache
from .context import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_MORSEL_SIZE,
    CacheStats,
    ExecutionContext,
    OperatorMetrics,
    RowLayout,
)
from .drivers import (
    QueryResult,
    RunMetrics,
    StreamingResult,
    execute_plan,
    execute_plan_streaming,
)
from .parallel import (
    BACKENDS,
    ParallelExecution,
    ParallelStats,
    WorkerPool,
    default_backend,
    fork_available,
)
from .operators import (
    FetchOp,
    PhysicalOperator,
    ProjectOp,
    SeedJoinOp,
    SeedScanOp,
    SelectionOp,
    SharedFilterOp,
    build_pipeline,
)
from .multiway import MultiwayIntersectOp, MultiwaySeedOp

__all__ = [
    "BACKENDS",
    "CacheStats",
    "CenterCache",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_CACHE_BYTES",
    "DEFAULT_MORSEL_SIZE",
    "ExecutionContext",
    "ParallelExecution",
    "ParallelStats",
    "WorkerPool",
    "default_backend",
    "fork_available",
    "OperatorMetrics",
    "RowLayout",
    "QueryResult",
    "RunMetrics",
    "StreamingResult",
    "execute_plan",
    "execute_plan_streaming",
    "FetchOp",
    "MultiwayIntersectOp",
    "MultiwaySeedOp",
    "PhysicalOperator",
    "ProjectOp",
    "SeedJoinOp",
    "SeedScanOp",
    "SelectionOp",
    "SharedFilterOp",
    "build_pipeline",
]
