"""Plan execution: interpret a left-deep plan against the database.

The executor walks the plan's steps, threading the temporal table through
the operators of :mod:`repro.query.operators`, and finally projects the
pattern's variables in declaration order.  It reports a
:class:`RunMetrics` with elapsed time, the I/O delta observed on the
database's shared counters, per-operator metrics, and the peak temporal
table size (the quantity whose growth separates DP from DPS at scale).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..db.database import GraphDatabase
from ..storage.stats import IOStats
from .algebra import (
    FetchStep,
    FilterStep,
    Plan,
    SeedJoin,
    SeedScan,
    SelectionStep,
    TemporalTable,
)
from .operators import (
    OperatorMetrics,
    apply_fetch,
    apply_filter,
    apply_selection,
    hpsj,
    seed_scan,
)


@dataclass
class RunMetrics:
    """Everything measured while executing one plan."""

    elapsed_seconds: float = 0.0
    io: Optional[IOStats] = None
    operators: List[OperatorMetrics] = field(default_factory=list)
    peak_temporal_rows: int = 0
    result_rows: int = 0

    @property
    def physical_io(self) -> int:
        return self.io.total_io() if self.io else 0

    @property
    def logical_io(self) -> int:
        return self.io.logical_reads if self.io else 0


@dataclass
class QueryResult:
    """Final matches plus the plan and metrics that produced them."""

    columns: Tuple[str, ...]
    rows: List[Tuple[int, ...]]
    plan: Plan
    metrics: RunMetrics

    def as_set(self) -> set:
        return set(self.rows)

    def __len__(self) -> int:
        return len(self.rows)


def execute_plan(
    db: GraphDatabase,
    plan: Plan,
    row_limit: Optional[int] = None,
    verify: bool = False,
) -> QueryResult:
    """Run *plan* and project the pattern's variables.

    ``row_limit`` caps every intermediate temporal table; exceeding it
    raises :class:`repro.query.algebra.RowLimitExceeded` (an execution
    guard for runaway patterns, not a LIMIT clause — no partial results
    are returned).

    ``verify=True`` runs the full static plan checker
    (:func:`repro.analysis.check_plan`, including the catalog checks
    against *db*) before interpretation and raises
    :class:`repro.analysis.PlanVerificationError` listing every violation
    — the belt-and-braces mode for exercising new optimizers.
    """
    if verify:
        # imported lazily: the analysis layer depends on the query layer,
        # not the other way around
        from ..analysis.diagnostics import errors
        from ..analysis.plancheck import PlanVerificationError, check_plan

        found = errors(check_plan(plan, db=db))
        if found:
            raise PlanVerificationError(found)
    plan.validate()
    pattern = plan.pattern
    metrics = RunMetrics()
    io_before = db.stats.snapshot()
    started = time.perf_counter()

    table: Optional[TemporalTable] = None
    for step in plan.steps:
        if isinstance(step, SeedScan):
            table, op = seed_scan(db, pattern, step.var, row_limit=row_limit)
        elif isinstance(step, SeedJoin):
            table, op = hpsj(db, pattern, step.condition, row_limit=row_limit)
        elif isinstance(step, FilterStep):
            table, op = apply_filter(
                db, pattern, table, step.keys, row_limit=row_limit
            )
        elif isinstance(step, FetchStep):
            table, op = apply_fetch(
                db, pattern, table, step.condition, step.side, row_limit=row_limit
            )
        elif isinstance(step, SelectionStep):
            table, op = apply_selection(
                db, pattern, table, step.condition, row_limit=row_limit
            )
        else:  # pragma: no cover - Plan.validate rejects unknown steps
            raise TypeError(f"unknown plan step {step!r}")
        metrics.operators.append(op)
        metrics.peak_temporal_rows = max(metrics.peak_temporal_rows, table.row_count)

    if table.pending:
        raise RuntimeError(f"plan finished with unconsumed filters {table.pending}")

    positions = [table.var_position(var) for var in pattern.variables]
    rows = [tuple(row[p] for p in positions) for row in table.table.scan()]

    metrics.elapsed_seconds = time.perf_counter() - started
    metrics.io = db.stats.delta_since(io_before)
    metrics.result_rows = len(rows)
    return QueryResult(
        columns=tuple(pattern.variables), rows=rows, plan=plan, metrics=metrics
    )
