"""Materializing plan execution (compatibility shim).

The materializing driver — interpret a left-deep plan by draining each
physical operator into a temporal table, then project the pattern's
variables — lives in :mod:`repro.query.physical.drivers` next to its
streaming twin.  This module preserves the historical import path
(``repro.query.executor``) for :func:`execute_plan` and the result
types; see the driver module for semantics (``row_limit`` guard,
``verify=True`` static checking, :class:`RunMetrics` contents).
"""

from .physical.drivers import QueryResult, RunMetrics, execute_plan

__all__ = ["QueryResult", "RunMetrics", "execute_plan"]
