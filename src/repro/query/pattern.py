"""Graph patterns — the query model (paper Section 2).

A pattern is "a connected directed node-labeled graph G_q = (V_q, E_q)"
whose edges are *reachability conditions*: ``X -> Y`` asks for nodes
``v_i, v_j`` with ``label(v_i) = X``, ``label(v_j) = Y`` and
``v_i ~> v_j``.  A result for an n-node pattern is an n-ary node tuple
satisfying all conditions conjunctively.

We generalize slightly: pattern nodes are named *variables*, each carrying
a label, so two pattern nodes may share a label (the paper's W-table even
has (B, B) and (C, C) entries, so same-label conditions are in scope).
When a pattern is written with bare labels ("A -> C"), the variable name
is the label itself — exactly the paper's formulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple


class PatternError(ValueError):
    """Raised for malformed graph patterns."""


Condition = Tuple[str, str]  # (source variable, target variable)


@dataclass(frozen=True)
class GraphPattern:
    """An immutable graph pattern over labeled variables.

    Attributes
    ----------
    variables:
        Pattern node names, in declaration order; result tuples follow
        this order.
    labels:
        Variable -> node label.
    conditions:
        Reachability conditions as (source var, target var) pairs.
    """

    variables: Tuple[str, ...]
    labels: Dict[str, str] = field(hash=False)
    conditions: Tuple[Condition, ...]

    # ------------------------------------------------------------------
    @staticmethod
    def build(
        nodes: Dict[str, str] | Sequence[Tuple[str, str]],
        edges: Iterable[Condition],
    ) -> "GraphPattern":
        """Construct and validate a pattern.

        ``nodes`` maps variable -> label (a dict or (var, label) pairs);
        ``edges`` lists (source var, target var) reachability conditions.
        """
        label_map = dict(nodes)
        variables = tuple(label_map)
        conditions: List[Condition] = []
        seen = set()
        for src, dst in edges:
            if src not in label_map or dst not in label_map:
                raise PatternError(
                    f"condition ({src!r}, {dst!r}) references an undeclared variable"
                )
            if src == dst:
                raise PatternError(
                    f"condition ({src!r} -> {dst!r}) is trivially true; "
                    "a node always reaches itself"
                )
            if (src, dst) not in seen:
                seen.add((src, dst))
                conditions.append((src, dst))
        pattern = GraphPattern(
            variables=variables,
            labels=label_map,
            conditions=tuple(conditions),
        )
        pattern.validate()
        return pattern

    def validate(self) -> None:
        if not self.variables:
            raise PatternError("pattern has no nodes")
        if not self.conditions and len(self.variables) > 1:
            raise PatternError("multi-node pattern has no reachability conditions")
        if not self.is_connected():
            raise PatternError("pattern graph must be connected (paper Section 2)")

    # ------------------------------------------------------------------
    def label(self, var: str) -> str:
        try:
            return self.labels[var]
        except KeyError:
            raise PatternError(f"unknown pattern variable {var!r}") from None

    def condition_labels(self, condition: Condition) -> Tuple[str, str]:
        """(X, Y) labels of a condition's (source, target) variables."""
        src, dst = condition
        return self.label(src), self.label(dst)

    @property
    def node_count(self) -> int:
        return len(self.variables)

    @property
    def edge_count(self) -> int:
        return len(self.conditions)

    def adjacent(self, var: str) -> FrozenSet[str]:
        """Variables joined to *var* by a condition (either direction)."""
        out = set()
        for src, dst in self.conditions:
            if src == var:
                out.add(dst)
            elif dst == var:
                out.add(src)
        return frozenset(out)

    def is_connected(self) -> bool:
        if len(self.variables) <= 1:
            return True
        remaining = set(self.variables)
        frontier = [self.variables[0]]
        remaining.discard(self.variables[0])
        while frontier:
            var = frontier.pop()
            for other in self.adjacent(var):
                if other in remaining:
                    remaining.discard(other)
                    frontier.append(other)
        return not remaining

    def is_path(self) -> bool:
        """True for linear chains v1 -> v2 -> ... -> vk."""
        if self.edge_count != self.node_count - 1:
            return False
        indeg = {v: 0 for v in self.variables}
        outdeg = {v: 0 for v in self.variables}
        for src, dst in self.conditions:
            outdeg[src] += 1
            indeg[dst] += 1
        starts = [v for v in self.variables if indeg[v] == 0]
        if len(starts) != 1:
            return False
        return all(outdeg[v] <= 1 and indeg[v] <= 1 for v in self.variables)

    def is_tree(self) -> bool:
        """True for rooted trees (every node except one has in-degree 1)."""
        if self.edge_count != self.node_count - 1:
            return False
        indeg = {v: 0 for v in self.variables}
        for _, dst in self.conditions:
            indeg[dst] += 1
        roots = [v for v in self.variables if indeg[v] == 0]
        return len(roots) == 1 and all(d <= 1 for d in indeg.values())

    def root(self) -> str:
        """The unique zero-in-degree variable of a tree/path pattern."""
        if not self.is_tree():
            raise PatternError("pattern is not a tree; it has no unique root")
        indeg = {v: 0 for v in self.variables}
        for _, dst in self.conditions:
            indeg[dst] += 1
        return next(v for v in self.variables if indeg[v] == 0)

    def children(self, var: str) -> Tuple[str, ...]:
        return tuple(dst for src, dst in self.conditions if src == var)

    def __str__(self) -> str:
        parts = []
        for src, dst in self.conditions:
            lhs = src if src == self.label(src) else f"{src}:{self.label(src)}"
            rhs = dst if dst == self.label(dst) else f"{dst}:{self.label(dst)}"
            parts.append(f"{lhs} -> {rhs}")
        if not parts:  # single-node pattern
            var = self.variables[0]
            parts.append(var if var == self.label(var) else f"{var}:{self.label(var)}")
        return ", ".join(parts)
