"""GraphEngine — the library's top-level public API.

Typical use::

    from repro import GraphEngine, parse_pattern

    engine = GraphEngine(graph)                  # builds codes + indexes
    result = engine.match("A -> C, B -> C, C -> D, D -> E")
    for row in result.rows:
        print(dict(zip(result.columns, row)))

``optimizer`` selects the paper's two approaches (and two extensions):

* ``"dps"`` (default) — DP interleaving R-joins with R-semijoins (§4.2);
* ``"dp"`` — R-join-only dynamic programming (§4.1);
* ``"greedy"`` — locally cheapest move, as a non-paper control;
* ``"wcoj"`` — worst-case-optimal multiway plan for cyclic join graphs
  (variable elimination + k-way intersection); acyclic patterns fall
  back to DPS unchanged;
* ``"auto"`` — route on join-graph shape: cyclic → wcoj, else dps.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple, Union

from ..db.database import GraphDatabase
from ..graph.digraph import DiGraph
from ..labeling.twohop import TwoHopLabeling
from ..storage.buffer import DEFAULT_BUFFER_BYTES
from .costmodel import CostModel, CostParams
from .physical.cache import (
    DEFAULT_CACHE_BYTES,
    DEFAULT_CACHE_SHARDS,
    CenterCache,
)
from .physical.drivers import (
    QueryResult,
    StreamingResult,
    execute_plan,
    execute_plan_streaming,
)
from .physical.parallel import WorkerPool
from .optimizer_dp import OptimizedPlan, optimize_dp, optimize_greedy
from .optimizer_dps import optimize_dps
from .optimizer_wcoj import optimize_auto, optimize_wcoj
from .parser import parse_pattern
from .pattern import GraphPattern

_OPTIMIZERS = {
    "dp": optimize_dp,
    "dps": optimize_dps,
    "greedy": optimize_greedy,
    "wcoj": optimize_wcoj,
    "auto": optimize_auto,
}

PatternLike = Union[str, GraphPattern]

#: guards lazy creation of per-engine locks: engines built through
#: ``__new__`` + attribute assignment (``from_database``, older callers)
#: have no ``__init__``-installed lock, so the first concurrent accessor
#: must not race the lock's own construction
_ENGINE_LOCK_GUARD = threading.Lock()


class GraphEngine:
    """Graph pattern matching over one data graph.

    Building the engine computes the 2-hop labeling, loads the base
    tables, and constructs the cluster-based R-join index and W-table —
    the offline phase of the paper.  :meth:`match` then answers patterns
    online via optimized R-join/R-semijoin plans.
    """

    def __init__(
        self,
        graph: DiGraph,
        labeling: Optional[TwoHopLabeling] = None,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
        cost_params: Optional[CostParams] = None,
        code_cache_enabled: bool = True,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        batch_size: Optional[int] = None,
        workers: Optional[int] = None,
        parallel_backend: Optional[str] = None,
        cache_shards: int = DEFAULT_CACHE_SHARDS,
    ) -> None:
        self.db = GraphDatabase(
            graph,
            labeling=labeling,
            buffer_bytes=buffer_bytes,
            code_cache_enabled=code_cache_enabled,
        )
        self.cost_params = cost_params or CostParams()
        # cross-query LRU of centers/subclusters; cache_bytes <= 0
        # keeps the object (counters still track misses) but stores
        # nothing.  cache_shards stripes the LRU into independently
        # locked shards so the service's concurrent queries contend per
        # stripe, not on one cache-wide lock.
        self._center_cache = CenterCache(
            capacity_bytes=cache_bytes, shards=cache_shards
        )
        #: default block size for :meth:`match`/:meth:`match_iter`;
        #: ``None`` keeps the scalar tuple-at-a-time oracle
        self.batch_size = batch_size
        #: default worker count / pool backend for queries; ``None``/1
        #: keeps the sequential drivers
        self.workers = workers
        self.parallel_backend = parallel_backend

    @classmethod
    def from_database(
        cls,
        db: GraphDatabase,
        cost_params: Optional[CostParams] = None,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        batch_size: Optional[int] = None,
        workers: Optional[int] = None,
        parallel_backend: Optional[str] = None,
        cache_shards: int = DEFAULT_CACHE_SHARDS,
    ) -> "GraphEngine":
        """Wrap an existing (e.g. reloaded) database without rebuilding it.

        Pairs with :func:`repro.db.persist.load_database` so a persisted
        offline phase can serve queries without recomputing anything.
        """
        engine = cls.__new__(cls)
        engine.db = db
        engine.cost_params = cost_params or CostParams()
        engine._center_cache = CenterCache(
            capacity_bytes=cache_bytes, shards=cache_shards
        )
        engine.batch_size = batch_size
        engine.workers = workers
        engine.parallel_backend = parallel_backend
        return engine

    @classmethod
    def from_snapshot(
        cls, path: str, use_views: Optional[bool] = None, **kwargs
    ) -> "GraphEngine":
        """Open a binary snapshot file and serve queries from it.

        The database constructs around the mmap-backed snapshot with no
        index rebuild (:meth:`GraphDatabase.from_snapshot`); keyword
        arguments are those of :meth:`from_database`.  ``use_views``
        selects the mmap-native read path (default: on when the file
        layout supports it) — see :meth:`GraphDatabase.from_snapshot`.
        The engine starts with a fresh :class:`CenterCache` and worker
        pool, both keyed on the new database's ``index_generation`` —
        nothing can leak from whatever engine wrote the snapshot.
        """
        from ..db.persist import load_database
        from ..storage.snapshot import SnapshotError, is_snapshot

        if not is_snapshot(path):
            raise SnapshotError(f"{path!r} is not a binary snapshot")
        return cls.from_database(
            load_database(path, use_views=use_views), **kwargs
        )

    #: class-level fallbacks so hand-wrapped engines (``__new__`` + attribute
    #: assignment, as older callers do) default to the scalar sequential path
    batch_size: Optional[int] = None
    workers: Optional[int] = None
    parallel_backend: Optional[str] = None

    @property
    def center_cache(self) -> CenterCache:
        """The engine-owned cross-query :class:`CenterCache` (lazy)."""
        cache = getattr(self, "_center_cache", None)
        if cache is None:
            cache = self._center_cache = CenterCache(
                shards=DEFAULT_CACHE_SHARDS
            )
        return cache

    # ------------------------------------------------------------------
    def _pool_guard(self) -> threading.Lock:
        """The engine's pool-lifecycle lock (created lazily, race-free)."""
        guard: Optional[threading.Lock] = getattr(self, "_pool_lock", None)
        if guard is None:
            with _ENGINE_LOCK_GUARD:
                guard = getattr(self, "_pool_lock", None)
                if guard is None:
                    guard = self._pool_lock = threading.Lock()
        return guard

    def worker_pool(self, workers: int, backend: Optional[str] = None) -> WorkerPool:
        """The engine-owned reusable morsel pool (lazy, one at a time).

        The pool is keyed by (worker count, backend, index generation):
        asking with different parameters — or after
        ``db.rebuild_join_index()`` bumped the generation, which makes
        forked index snapshots stale — shuts the old pool down and builds
        a fresh one.  Sequential queries never create a pool.

        The create/invalidate path is serialized on a per-engine lock so
        concurrent queries sharing one engine (the always-on query
        service's steady state) can never double-create a pool or leak a
        half-replaced one; both racers come back holding the same pool.
        """
        with self._pool_guard():
            pool: Optional[WorkerPool] = getattr(self, "_worker_pool", None)
            effective_backend = backend or self.parallel_backend
            if pool is not None and not (
                pool.compatible(self.db)
                and pool.workers == workers
                and (effective_backend is None or pool.backend == effective_backend)
            ):
                pool.shutdown()
                pool = None
            if pool is None:
                pool = WorkerPool(self.db, workers, effective_backend)
                self._worker_pool = pool
            return pool

    def close_pool(self) -> None:
        """Shut the engine-owned worker pool down (idempotent)."""
        with self._pool_guard():
            pool: Optional[WorkerPool] = getattr(self, "_worker_pool", None)
            if pool is not None:
                pool.shutdown()
                self._worker_pool = None

    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(pattern: PatternLike) -> GraphPattern:
        if isinstance(pattern, GraphPattern):
            return pattern
        return parse_pattern(pattern)

    #: plans are deterministic per (pattern, optimizer, catalog
    #: generation, execution settings), so repeated queries skip the
    #: optimizer entirely
    PLAN_CACHE_SIZE = 256

    def _plan_guard(self) -> threading.Lock:
        """The plan-cache mutation lock (created lazily, race-free)."""
        guard: Optional[threading.Lock] = getattr(self, "_plan_cache_lock", None)
        if guard is None:
            with _ENGINE_LOCK_GUARD:
                guard = getattr(self, "_plan_cache_lock", None)
                if guard is None:
                    guard = self._plan_cache_lock = threading.Lock()
        return guard

    def _execution_settings_key(
        self,
        batch_size: Optional[int] = None,
        workers: Optional[int] = None,
        parallel_backend: Optional[str] = None,
    ) -> Tuple[bool, bool, int, Optional[str]]:
        """Fingerprint of the execution settings a plan will run under.

        Plans are logical today — no current optimizer output depends on
        the substrate — but the cache key carries this fingerprint anyway
        so mixed-mode service traffic (scalar and batched, sequential and
        parallel queries interleaved on one shared engine) can never be
        served a plan memoized under different execution settings should
        an optimizer ever specialize for one.  Per-query overrides win
        over the engine defaults, exactly as they do at execution time.
        """
        effective_batch = self.batch_size if batch_size is None else batch_size
        effective_workers = self.workers if workers is None else workers
        batched = bool(effective_batch is not None and effective_batch > 1)
        parallel = bool(effective_workers is not None and effective_workers > 1)
        return (
            batched,
            batched and bool(getattr(self.db, "mmap_views", False)),
            effective_workers if parallel else 1,
            (parallel_backend or self.parallel_backend) if parallel else None,
        )

    def plan(
        self,
        pattern: PatternLike,
        optimizer: str = "dps",
        batch_size: Optional[int] = None,
        workers: Optional[int] = None,
        parallel_backend: Optional[str] = None,
    ) -> OptimizedPlan:
        """Optimize a pattern without executing it (memoized, LRU).

        The cache key is (pattern, optimizer, index generation,
        execution-settings fingerprint): an index rebuild — which changes
        the catalog the cost model priced against — or a different
        batch/mmap-native/worker configuration can never be served a plan
        memoized under the old settings.  Cache reads and writes are
        lock-guarded so concurrent service queries sharing one engine
        keep the LRU structure consistent; two racers optimizing the same
        key both store the identical deterministic plan.
        """
        parsed = self._coerce(pattern)
        self._check_labels(parsed)
        try:
            optimize = _OPTIMIZERS[optimizer]
        except KeyError:
            raise ValueError(
                f"unknown optimizer {optimizer!r}; choose from {sorted(_OPTIMIZERS)}"
            ) from None
        key = (
            str(parsed),
            optimizer,
            getattr(self.db, "index_generation", 0),
            self._execution_settings_key(batch_size, workers, parallel_backend),
        )
        with self._plan_guard():
            cache: Optional[OrderedDict[Tuple, OptimizedPlan]]
            cache = getattr(self, "_plan_cache", None)
            if not isinstance(cache, OrderedDict):
                # tolerate a plain dict planted by tests/older callers
                cache = self._plan_cache = OrderedDict(cache or {})
            cached = cache.get(key)
            if cached is not None:
                cache.move_to_end(key)  # LRU: a hit makes the entry youngest
                return cached
        model = CostModel(self.db.catalog, parsed, self.cost_params)
        optimized = optimize(parsed, model)
        with self._plan_guard():
            cache = self._plan_cache
            while len(cache) >= self.PLAN_CACHE_SIZE:
                cache.popitem(last=False)  # evict the least recently used plan
            cache[key] = optimized
        return optimized

    def match(
        self,
        pattern: PatternLike,
        optimizer: str = "dps",
        reset_counters: bool = True,
        row_limit: Optional[int] = None,
        verify: bool = False,
        batch_size: Optional[int] = None,
        workers: Optional[int] = None,
        parallel_backend: Optional[str] = None,
        morsel_size: Optional[int] = None,
    ) -> QueryResult:
        """Optimize and execute a pattern; returns matches + metrics.

        ``reset_counters`` cold-starts the I/O counters and the working
        cache before running (per-query accounting, as the paper measures
        query by query).  ``row_limit`` caps every intermediate result and
        raises :class:`~repro.query.algebra.RowLimitExceeded` beyond it.
        ``verify`` statically checks the optimized plan against this
        database (:func:`repro.analysis.check_plan`) before executing and
        raises :class:`repro.analysis.PlanVerificationError` on violations.
        ``batch_size`` overrides the engine default for this query: a
        value > 1 runs the vectorized Filter/Fetch substrate (results
        identical to scalar), ``0`` forces the scalar path, ``None``
        inherits the engine's ``batch_size``.  ``workers`` > 1 runs the
        morsel-driven parallel scheduler on the engine-owned pool
        (reused across queries); ``None`` inherits the engine's
        ``workers``.  Rows come back identical to the sequential path.
        """
        optimized = self.plan(
            pattern, optimizer=optimizer, batch_size=batch_size,
            workers=workers, parallel_backend=parallel_backend,
        )
        if reset_counters:
            self.db.reset_counters()
        effective = self.batch_size if batch_size is None else batch_size
        effective_workers = self.workers if workers is None else workers
        pool = None
        if effective_workers is not None and effective_workers > 1:
            pool = self.worker_pool(effective_workers, parallel_backend)
        return execute_plan(
            self.db,
            optimized.plan,
            row_limit=row_limit,
            verify=verify,
            batch_size=effective,
            center_cache=self.center_cache,
            workers=effective_workers,
            parallel_backend=parallel_backend or self.parallel_backend,
            morsel_size=morsel_size,
            worker_pool=pool,
        )

    def match_iter(
        self,
        pattern: PatternLike,
        optimizer: str = "dps",
        limit: Optional[int] = None,
        row_limit: Optional[int] = None,
        verify: bool = False,
        batch_size: Optional[int] = None,
        workers: Optional[int] = None,
        parallel_backend: Optional[str] = None,
        morsel_size: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> StreamingResult:
        """Stream matches lazily through the pipelined executor.

        No temporal tables are materialized; with ``limit`` the upstream
        operators stop as soon as enough rows exist — the cheap way to
        answer "give me a few examples" or EXISTS-style questions over
        patterns whose full result would be huge.  ``row_limit`` and
        ``verify`` behave exactly as in :meth:`match`; the returned
        :class:`~repro.query.StreamingResult` carries a ``metrics``
        attribute with the same per-operator counters as a full run.
        ``batch_size`` and ``workers``/``parallel_backend``/``morsel_size``
        behave exactly as in :meth:`match`; abandoning a parallel stream
        early (``limit`` reached or :meth:`StreamingResult.close`)
        cancels the morsels that have not started, while the engine-owned
        pool stays warm for the next query.  ``timeout`` is a per-query
        deadline in seconds: an expired deadline stops the stream
        cooperatively (between rows) and flags the run's metrics
        ``truncated`` with ``stop_reason="timeout"`` — the query service
        rides this for its admission-to-completion deadlines.
        """
        optimized = self.plan(
            pattern, optimizer=optimizer, batch_size=batch_size,
            workers=workers, parallel_backend=parallel_backend,
        )
        effective = self.batch_size if batch_size is None else batch_size
        effective_workers = self.workers if workers is None else workers
        pool = None
        if effective_workers is not None and effective_workers > 1:
            pool = self.worker_pool(effective_workers, parallel_backend)
        return execute_plan_streaming(
            self.db, optimized.plan, limit=limit, row_limit=row_limit,
            verify=verify, batch_size=effective,
            center_cache=self.center_cache,
            workers=effective_workers,
            parallel_backend=parallel_backend or self.parallel_backend,
            morsel_size=morsel_size,
            worker_pool=pool,
            timeout=timeout,
        )

    def explain(self, pattern: PatternLike, optimizer: str = "dps") -> str:
        """The chosen plan as text, with its cost/cardinality estimates."""
        optimized = self.plan(pattern, optimizer=optimizer)
        header = (
            f"-- optimizer={optimizer} est_cost={optimized.estimated_cost:.1f} "
            f"est_rows={optimized.estimated_rows:.1f}"
        )
        return header + "\n" + optimized.plan.describe()

    # ------------------------------------------------------------------
    def _check_labels(self, pattern: GraphPattern) -> None:
        known = set(self.db.labels())
        for var in pattern.variables:
            label = pattern.label(var)
            if label not in known:
                raise KeyError(
                    f"pattern variable {var!r} uses label {label!r} which has "
                    f"no base table; known labels: {sorted(known)}"
                )

    def stats_summary(self) -> Dict[str, float]:
        """Offline-structure sizes: the Table 2 row for this dataset."""
        labeling = self.db.labeling
        return {
            "nodes": self.db.graph.node_count,
            "edges": self.db.graph.edge_count,
            "cover_size": labeling.cover_size(),
            "cover_ratio": labeling.average_code_size(),
            "centers": self.db.join_index.center_count,
        }
