"""DPS — interleaving R-joins with R-semijoins (paper Section 4.2).

The key idea: an R-join ``⋈`` is ``⋉`` (Filter) followed by ``⋊`` (Fetch),
so the optimizer can schedule the two halves *independently* — running
several cheap Filters early shrinks the temporal table before any
expensive Fetch materializes new columns.  The paper formalizes this as a
dynamic program over statuses ``(E, L, B_in, B_out)``:

* ``E`` — conditions fully evaluated (both halves done, or selection);
* ``L`` — variables appearing in the temporal table or filtered on;
* ``B_in`` / ``B_out`` — variables whose in/out graph codes are cached by
  a previous Filter, making later code accesses on the same column cheap
  (the sharing of Remark 3.1);

with three moves: **Filter-move** (adds one or more R-semijoins sharing a
scanned column — "not only ⋉ on X->Y but also all other ⋉ on X, to
maximize the cost sharing"), **Fetch-move** (completes a filtered
condition, allowed once its scanned side is cached), and **R-join-move**
(HPSJ between the first two base tables, only from the initial status).
Figure 3 of the paper also seeds plans with a Filter-move directly from
S_0 — a base table reduced by a semijoin before anything is fetched —
which :func:`optimize_dps` supports via a SeedScan + FilterStep pair.

The implementation is a uniform-cost (Dijkstra) search over statuses,
which is equivalent to the paper's DP: statuses form a DAG (every move
adds work) and the first settlement of a status is its minimum cost.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import FrozenSet, List, Set, Tuple

from .algebra import (
    FetchStep,
    FilterKey,
    FilterStep,
    Plan,
    PlanStep,
    SeedJoin,
    SeedScan,
    SelectionStep,
    Side,
)
from .costmodel import CostModel
from .optimizer_dp import OptimizedPlan, optimize_dp
from .pattern import Condition, GraphPattern

Status = Tuple[
    FrozenSet[Condition],   # E: fully-evaluated conditions
    FrozenSet[FilterKey],   # pending: filtered, not yet fetched
    FrozenSet[str],         # B_in
    FrozenSet[str],         # B_out
    FrozenSet[str],         # L: bound variables (columns of the temporal table)
]


@dataclass(order=True)
class _SearchNode:
    cost: float
    tie: int
    status: Status = field(compare=False)
    rows: float = field(compare=False)
    steps: List[PlanStep] = field(compare=False)


def _applicable_filters(
    pattern: GraphPattern,
    var: str,
    side: Side,
    done: FrozenSet[Condition],
    pending: FrozenSet[FilterKey],
    bound: FrozenSet[str],
) -> Tuple[FilterKey, ...]:
    """All semijoins that a Filter-move on (var, side) batches together.

    A condition qualifies if this side scans *var*, it is not evaluated,
    not already filtered on either side, and its other endpoint is not yet
    bound (conditions between two bound variables go through
    Selection-moves instead).
    """
    keys = []
    filtered_conditions = {key[0] for key in pending}
    for condition in pattern.conditions:
        if condition in done or condition in filtered_conditions:
            continue
        if side.scanned_var(condition) != var:
            continue
        if side.fetched_var(condition) in bound:
            continue
        keys.append((condition, side))
    return tuple(keys)


def optimize_dps(pattern: GraphPattern, model: CostModel) -> OptimizedPlan:
    """Minimum-estimated-cost plan interleaving R-joins and R-semijoins.

    Invariant: every plan this function returns has passed
    :meth:`Plan.validate` — the single-variable case delegates to
    :func:`optimize_dp` (which validates at each of its returns) and the
    search's only exit validates before returning; there is no other way
    out besides the exhaustion ``RuntimeError``.  ``tests/test_plancheck``
    additionally runs the deep static checker over every DP/DPS plan of
    the workload suite.
    """
    if pattern.node_count == 1:
        # delegated plans are validated inside optimize_dp
        return optimize_dp(pattern, model)

    all_conditions = frozenset(pattern.conditions)
    counter = itertools.count()
    heap: List[_SearchNode] = []
    settled: Set[Status] = set()

    def push(cost: float, status: Status, rows: float, steps: List[PlanStep]) -> None:
        heapq.heappush(heap, _SearchNode(cost, next(counter), status, rows, steps))

    # ------------------------------------------------------------------
    # initial moves from S_0
    # ------------------------------------------------------------------
    # R-join-move: HPSJ between two base tables
    for condition in pattern.conditions:
        rows = model.base_join_size(condition)
        cost = model.hpsj_cost(condition) + model.materialize_cost(rows)
        status: Status = (
            frozenset([condition]),
            frozenset(),
            frozenset(),
            frozenset(),
            frozenset(condition),
        )
        push(cost, status, rows, [SeedJoin(condition)])

    # Filter-move from S_0: base table reduced by semijoin(s) (Figure 3's S_1)
    for var in pattern.variables:
        for side in (Side.OUT, Side.IN):
            keys = _applicable_filters(
                pattern, var, side, frozenset(), frozenset(), frozenset()
            )
            if not keys:
                continue
            rows = float(model.extent_size(var))
            survivors = rows
            for condition, key_side in keys:
                survivors *= model.filter_survival(
                    condition, key_side is Side.OUT
                )
            cost = model.filter_cost(rows, len(keys), code_cached=False)
            cost += model.materialize_cost(survivors)
            b_in = frozenset([var]) if side is Side.IN else frozenset()
            b_out = frozenset([var]) if side is Side.OUT else frozenset()
            status = (
                frozenset(),
                frozenset(keys),
                b_in,
                b_out,
                frozenset([var]),
            )
            push(cost, status, survivors, [SeedScan(var), FilterStep(keys)])

    # ------------------------------------------------------------------
    # uniform-cost search over statuses
    # ------------------------------------------------------------------
    while heap:
        node = heapq.heappop(heap)
        done, pending, b_in, b_out, bound = node.status
        if node.status in settled:
            continue
        settled.add(node.status)
        if done == all_conditions and not pending:
            # the search's only success exit: validate before emitting, so
            # every plan leaving this optimizer is structurally sound
            plan = Plan(pattern, node.steps)
            plan.validate()
            return OptimizedPlan(plan, node.cost, node.rows)

        rows = node.rows

        # Filter-moves: batch all applicable semijoins per (var, side)
        for var in bound:
            for side in (Side.OUT, Side.IN):
                keys = _applicable_filters(pattern, var, side, done, pending, bound)
                if not keys:
                    continue
                cached = var in (b_out if side is Side.OUT else b_in)
                survivors = rows
                for condition, key_side in keys:
                    survivors *= model.filter_survival(
                        condition, key_side is Side.OUT
                    )
                cost = model.filter_cost(rows, len(keys), code_cached=cached)
                cost += model.materialize_cost(survivors)
                new_b_in = b_in | ({var} if side is Side.IN else frozenset())
                new_b_out = b_out | ({var} if side is Side.OUT else frozenset())
                status = (done, pending | frozenset(keys), new_b_in, new_b_out, bound)
                if status not in settled:
                    push(
                        node.cost + cost,
                        status,
                        survivors,
                        node.steps + [FilterStep(keys)],
                    )

        # Fetch-moves: complete a filtered condition
        for key in pending:
            condition, side = key
            new_var = side.fetched_var(condition)
            if new_var in bound:
                continue  # stranded filter; this branch cannot complete
            survival = model.filter_survival(condition, side is Side.OUT)
            fanout = model.join_fanout(condition, side is Side.OUT)
            expansion = fanout / survival if survival > 0 else 0.0
            new_rows = rows * expansion
            cost = model.fetch_cost(rows, new_rows) + model.materialize_cost(new_rows)
            status = (
                done | {condition},
                pending - {key},
                b_in,
                b_out,
                bound | {new_var},
            )
            if status not in settled:
                push(
                    node.cost + cost,
                    status,
                    new_rows,
                    node.steps + [FetchStep(condition, side)],
                )

        # Selection-moves: conditions with both endpoints bound
        filtered_conditions = {key[0] for key in pending}
        for condition in all_conditions - done:
            src, dst = condition
            if src not in bound or dst not in bound:
                continue
            if condition in filtered_conditions:
                continue  # its Fetch will evaluate it
            cost = model.selection_cost(rows, src in b_out, dst in b_in)
            new_rows = rows * model.selection_selectivity(condition)
            cost += model.materialize_cost(new_rows)
            status = (done | {condition}, pending, b_in, b_out, bound)
            if status not in settled:
                push(
                    node.cost + cost,
                    status,
                    new_rows,
                    node.steps + [SelectionStep(condition)],
                )

    raise RuntimeError("DPS search exhausted without completing the pattern")
