"""Interval-based reachability codes for the two baselines.

Two coders live here:

* :class:`TreeIntervalCode` — classic XML-style pre/post intervals over a
  DFS *spanning tree* of a DAG.  ``u`` is a spanning-tree ancestor of ``v``
  iff ``interval(u)`` contains ``interval(v)``.  TwigStackD (paper
  Section 5.1) uses these for its first phase and falls back to the SSPI
  for reachability that the spanning tree misses.

* :class:`MultiIntervalCode` — the Agrawal-Borgida-Jagadish code [2] used
  by IGMJ (paper Section 5.2): each DAG node gets a postorder number and a
  *set of disjoint intervals* such that ``u ~> v`` iff ``post(v)`` falls
  inside one of ``u``'s intervals.  Built bottom-up in reverse topological
  order by merging successor interval sets.  For cyclic graphs, nodes of
  an SCC share the code of their condensed representative — exactly the
  paper's construction ("nodes in a strongly connected component share the
  same code assigned to the corresponding representative node").
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..graph.condensation import Condensation, condense
from ..graph.digraph import DiGraph, GraphError
from ..graph.traversal import topological_sort

Interval = Tuple[int, int]


def merge_intervals(intervals: List[Interval]) -> List[Interval]:
    """Merge overlapping / adjacent integer intervals into a disjoint list."""
    if not intervals:
        return []
    intervals.sort()
    merged = [intervals[0]]
    for lo, hi in intervals[1:]:
        last_lo, last_hi = merged[-1]
        if lo <= last_hi + 1:  # adjacent integers coalesce: [1,2]+[3,4] = [1,4]
            if hi > last_hi:
                merged[-1] = (last_lo, hi)
        else:
            merged.append((lo, hi))
    return merged


def point_in_intervals(intervals: Sequence[Interval], point: int) -> bool:
    """Membership test against a sorted disjoint interval list."""
    pos = bisect.bisect_right(intervals, (point, float("inf"))) - 1
    return pos >= 0 and intervals[pos][0] <= point <= intervals[pos][1]


# ----------------------------------------------------------------------
# spanning-tree pre/post intervals
# ----------------------------------------------------------------------
@dataclass
class TreeIntervalCode:
    """Pre/post intervals over a DFS spanning forest of a DAG.

    ``start[v]``/``end[v]`` delimit v's subtree in the spanning forest:
    ``tree_ancestor(u, v)`` iff ``start[u] <= start[v]`` and
    ``end[v] <= end[u]``.  ``tree_parent[v]`` is -1 for forest roots.
    ``non_tree_edges`` are the edges the DFS did not take ("remaining
    edges" in Chen et al.'s terminology) — the SSPI indexes them.
    """

    start: List[int]
    end: List[int]
    tree_parent: List[int]
    non_tree_edges: List[Tuple[int, int]]

    def tree_ancestor(self, u: int, v: int) -> bool:
        """True iff u is an ancestor of v (or u == v) in the spanning tree."""
        return self.start[u] <= self.start[v] and self.end[v] <= self.end[u]


def build_tree_intervals(dag: DiGraph) -> TreeIntervalCode:
    """DFS spanning forest + intervals; raises on cyclic input.

    Roots are taken in order of zero in-degree (then any unvisited node),
    and DFS follows adjacency order, so the code is deterministic.
    """
    topological_sort(dag)  # raises GraphError on a cycle
    n = dag.node_count
    start = [0] * n
    end = [0] * n
    parent = [-1] * n
    visited = bytearray(n)
    non_tree: List[Tuple[int, int]] = []
    clock = 0

    roots = [v for v in range(n) if dag.in_degree(v) == 0]
    roots.extend(v for v in range(n) if dag.in_degree(v) > 0)
    for root in roots:
        if visited[root]:
            continue
        visited[root] = 1
        stack: List[Tuple[int, int]] = [(root, 0)]
        start[root] = clock
        clock += 1
        while stack:
            node, child_pos = stack[-1]
            successors = dag.successors(node)
            advanced = False
            for pos in range(child_pos, len(successors)):
                child = successors[pos]
                if visited[child]:
                    non_tree.append((node, child))
                    continue
                visited[child] = 1
                parent[child] = node
                start[child] = clock
                clock += 1
                stack[-1] = (node, pos + 1)
                stack.append((child, 0))
                advanced = True
                break
            if not advanced:
                end[node] = clock
                clock += 1
                stack.pop()
    return TreeIntervalCode(
        start=start, end=end, tree_parent=parent, non_tree_edges=non_tree
    )


# ----------------------------------------------------------------------
# multi-interval DAG code (Agrawal et al.)
# ----------------------------------------------------------------------
@dataclass
class MultiIntervalCode:
    """Postorder numbers + disjoint interval sets over a digraph.

    ``post[v]`` and ``intervals[v]`` are defined for every *original*
    node; members of one SCC share their representative's values.  The
    reachability test is ``reaches(u, v) = post[v] in intervals[u]``.
    """

    post: List[int]
    intervals: List[List[Interval]]
    condensation: Condensation

    def reaches(self, u: int, v: int) -> bool:
        return point_in_intervals(self.intervals[u], self.post[v])

    def total_intervals(self) -> int:
        """Number of interval entries across all *condensed* nodes.

        This is the size of IGMJ's Xlist universe: each node contributes
        one Xlist entry per interval (paper Section 5.2).
        """
        seen = set()
        total = 0
        for scc, members in enumerate(self.condensation.members):
            if scc not in seen:
                seen.add(scc)
                total += len(self.intervals[members[0]])
        return total


def build_multi_interval(graph: DiGraph) -> MultiIntervalCode:
    """Build the multi-interval code for an arbitrary digraph.

    Steps (paper Section 5.2): condense SCCs to a DAG G'; assign each DAG
    node a postorder number from a DFS spanning forest; then, in reverse
    topological order, set ``I(v)`` to the merge of its own subtree
    interval and all successors' interval sets.  Using the DFS subtree
    interval ``[min_post_in_subtree, post(v)]`` (rather than the single
    point) is what makes the interval sets compact.
    """
    cond = condense(graph)
    dag = cond.dag
    n = dag.node_count

    tree = build_tree_intervals(dag)
    # postorder rank from DFS end-times: dense 0..n-1, subtree-contiguous
    order_by_end = sorted(range(n), key=lambda v: tree.end[v])
    post = [0] * n
    for rank, v in enumerate(order_by_end):
        post[v] = rank
    # lowest postorder within v's spanning subtree
    min_post = list(post)
    for v in sorted(range(n), key=lambda v: -tree.start[v]):
        parent = tree.tree_parent[v]
        if parent != -1 and min_post[v] < min_post[parent]:
            min_post[parent] = min_post[v]

    intervals: List[List[Interval]] = [[] for _ in range(n)]
    for v in reversed(topological_sort(dag)):
        collected: List[Interval] = [(min_post[v], post[v])]
        for child in dag.successors(v):
            collected.extend(intervals[child])
        intervals[v] = merge_intervals(collected)

    full_post = [0] * graph.node_count
    full_intervals: List[List[Interval]] = [[] for _ in range(graph.node_count)]
    for scc in range(n):
        for node in cond.members[scc]:
            full_post[node] = post[scc]
            full_intervals[node] = intervals[scc]
    return MultiIntervalCode(post=full_post, intervals=full_intervals, condensation=cond)
