"""Chain-cover reachability coding (Jagadish-style TC compression).

A third coding scheme from the reachability literature, alongside the
2-hop cover and the interval codes: partition the (condensed) DAG into
*chains* — paths where each element reaches the next — give every node a
``(chain, position)`` coordinate, and store per node a vector ``best[c]``
= the smallest position in chain ``c`` that the node can reach.  Then

    u ~> v   iff   best[u][chain(v)] <= position(v)

Construction is one reverse-topological sweep (``best[v]`` = elementwise
min over successors, plus v's own coordinate).  Queries are O(1).

The catch — and the historical reason 2-hop superseded chain covers —
is the O(n·k) index size for k chains: wide graphs (like XMark documents,
whose leaves are mutually unordered) need many chains, while 2-hop stays
near-linear.  :meth:`ChainCover.index_entries` exposes the size so the
micro-benchmarks can plot exactly that trade-off.

The greedy chain construction is not a *minimum* chain cover (that needs
bipartite matching, Dilworth-style); correctness holds for any chain
partition, only the constant k suffers — which is fine for a comparison
substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..graph.condensation import Condensation, condense
from ..graph.digraph import DiGraph
from ..graph.traversal import topological_sort

_INF = float("inf")


@dataclass
class ChainCover:
    """Chain coordinates + per-node reach vectors over a digraph.

    All attributes are indexed by *original* node id; SCC members share
    their component's values.
    """

    chain_of: List[int]
    position_of: List[int]
    best: List[List[float]]           # best[v][c] = min reachable position
    chain_count: int
    condensation: Condensation

    def reaches(self, u: int, v: int) -> bool:
        return self.best[u][self.chain_of[v]] <= self.position_of[v]

    def index_entries(self) -> int:
        """Finite entries across all condensed nodes — the O(n·k) cost."""
        counted = set()
        total = 0
        for scc, members in enumerate(self.condensation.members):
            if scc in counted:
                continue
            counted.add(scc)
            representative = members[0]
            total += sum(1 for value in self.best[representative] if value != _INF)
        return total


def build_chain_cover(graph: DiGraph) -> ChainCover:
    """Build a chain-cover reachability index for an arbitrary digraph."""
    cond = condense(graph)
    dag = cond.dag
    n = dag.node_count
    order = topological_sort(dag)

    # greedy chain decomposition: append each node (in topo order) to a
    # chain whose current tail has a direct edge to it, else open a chain
    chain_of = [-1] * n
    position_of = [0] * n
    tails: List[int] = []  # tails[c] = last node of chain c
    tail_lookup: Dict[int, List[int]] = {}  # node -> chains it currently tails
    for v in order:
        assigned = False
        for u in dag.predecessors(v):
            for c in tail_lookup.get(u, ()):
                chain_of[v] = c
                position_of[v] = position_of[u] + 1
                tail_lookup[u].remove(c)
                tails[c] = v
                tail_lookup.setdefault(v, []).append(c)
                assigned = True
                break
            if assigned:
                break
        if not assigned:
            c = len(tails)
            tails.append(v)
            chain_of[v] = c
            position_of[v] = 0
            tail_lookup.setdefault(v, []).append(c)
    chain_count = len(tails)

    # reverse topological sweep: best[v] = min over successors, own coord
    best: List[List[float]] = [[_INF] * chain_count for _ in range(n)]
    for v in reversed(order):
        row = best[v]
        for w in dag.successors(v):
            other = best[w]
            for c in range(chain_count):
                if other[c] < row[c]:
                    row[c] = other[c]
        own_chain = chain_of[v]
        if position_of[v] < row[own_chain]:
            row[own_chain] = position_of[v]

    # expand to original node ids (SCC members share)
    full_chain = [0] * graph.node_count
    full_position = [0] * graph.node_count
    full_best: List[List[float]] = [[] for _ in range(graph.node_count)]
    for scc in range(n):
        for node in cond.members[scc]:
            full_chain[node] = chain_of[scc]
            full_position[node] = position_of[scc]
            full_best[node] = best[scc]
    return ChainCover(
        chain_of=full_chain,
        position_of=full_position,
        best=full_best,
        chain_count=chain_count,
        condensation=cond,
    )
