"""SSPI — Surrogate and Surplus Predecessor Index (for TwigStackD).

Chen et al.'s TwigStackD [11] tests reachability over a DAG in two phases
(paper Section 5.1): first against the pre/post intervals of a DFS
spanning tree, and second — for the relationships the spanning tree cannot
witness — through the *SSPI*, which "keeps all non-tree edges (named
remaining edges) and all nodes being incident with any such non-tree
edges".

:class:`SSPI` reconstructs that machinery:

* per node ``v``, ``predecessors_of(v)`` lists the sources of non-tree
  edges entering ``v`` (its *surrogate predecessors*);
* a full reachability test :meth:`reaches` that first tries interval
  containment and then chases chains of non-tree edges, memoizing the
  transitive relation *between non-tree-edge endpoints* as it goes.

The memoized endpoint-to-endpoint closure is exactly the "edge transitive
closure" whose access cost makes TwigStackD "degrade noticeably when the
DAG becomes dense" — the behaviour Figure 5 exercises: the denser the
DAG, the more remaining edges, the bigger (and hotter) this structure.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Set

from ..graph.digraph import DiGraph
from .interval import TreeIntervalCode, build_tree_intervals


class SSPI:
    """Two-phase reachability oracle for a DAG: intervals + remaining edges."""

    def __init__(self, dag: DiGraph, tree: Optional[TreeIntervalCode] = None) -> None:
        self.dag = dag
        self.tree = tree if tree is not None else build_tree_intervals(dag)
        self.non_tree_edges = list(self.tree.non_tree_edges)
        # surrogate predecessors: non-tree in-edges per node
        self._pred: Dict[int, List[int]] = {}
        for u, v in self.non_tree_edges:
            self._pred.setdefault(v, []).append(u)
        # non-tree edge *sources* sorted by preorder start, so that "which
        # remaining edges leave my subtree" is a binary-searchable range
        self._sources_by_start = sorted(
            {u for u, _ in self.non_tree_edges}, key=lambda u: self.tree.start[u]
        )
        self._source_starts = [self.tree.start[u] for u in self._sources_by_start]
        self._targets_of: Dict[int, List[int]] = {}
        for u, v in self.non_tree_edges:
            self._targets_of.setdefault(u, []).append(v)
        # memoized closure between non-tree endpoints ("edge transitive
        # closure"); grows while queries run — TwigStackD's density cost
        self._closure_cache: Dict[int, Set[int]] = {}
        self.closure_probes = 0  # instrumentation for the ablation bench

    # ------------------------------------------------------------------
    def predecessors_of(self, v: int) -> List[int]:
        """Surrogate predecessors of *v*: sources of non-tree edges into it."""
        return self._pred.get(v, [])

    def remaining_edge_count(self) -> int:
        return len(self.non_tree_edges)

    # ------------------------------------------------------------------
    def _sources_in_subtree(self, u: int) -> List[int]:
        """Non-tree-edge sources inside u's spanning subtree (incl. u)."""
        lo = bisect.bisect_left(self._source_starts, self.tree.start[u])
        hi = bisect.bisect_right(self._source_starts, self.tree.end[u])
        # end[] times interleave with start[] times on the same clock, so
        # the range is conservative; filter precisely by containment
        return [
            s
            for s in self._sources_by_start[lo:hi]
            if self.tree.tree_ancestor(u, s)
        ]

    def _reachable_targets(self, u: int) -> Set[int]:
        """All non-tree-edge *targets* reachable from u.

        Chases: sources within u's subtree -> their targets -> (recursively)
        targets reachable from those targets.  Memoized per node.
        """
        cached = self._closure_cache.get(u)
        if cached is not None:
            return cached
        self.closure_probes += 1
        result: Set[int] = set()
        frontier: List[int] = []
        for source in self._sources_in_subtree(u):
            for target in self._targets_of.get(source, ()):
                if target not in result:
                    result.add(target)
                    frontier.append(target)
        while frontier:
            node = frontier.pop()
            for source in self._sources_in_subtree(node):
                for target in self._targets_of.get(source, ()):
                    if target not in result:
                        result.add(target)
                        frontier.append(target)
        self._closure_cache[u] = result
        return result

    def reaches(self, u: int, v: int) -> bool:
        """Full DAG reachability: spanning tree first, then SSPI chase."""
        if self.tree.tree_ancestor(u, v):
            return True
        return any(
            self.tree.tree_ancestor(t, v) for t in self._reachable_targets(u)
        )
