"""2-hop reachability labeling (the paper's graph codes).

Section 3 of the paper builds everything on a *2-hop cover* [Cohen et al.,
SODA'02]: every node ``v`` gets ``L(v) = (L_in(v), L_out(v))`` such that
``u ~> v`` iff ``L_out(u) ∩ L_in(v) ≠ ∅``.  The cover is a set of triples
``S(U_w, w, V_w)`` — every node in ``U_w`` reaches the *center* ``w`` and
``w`` reaches every node in ``V_w``.  After the compaction of Example 3.1
the *graph code* of node ``x`` is ``in(x) = X_in ∪ {x}`` and
``out(x) = X_out ∪ {x}`` — i.e. every node implicitly belongs to its own
clusters.

The paper computes its cover with the authors' earlier algorithm [15]
(EDBT'06), which is not specified in this paper.  We substitute a
*pruned-BFS* construction (the reachability variant of pruned landmark
labeling): process vertices from "most central" to least; for vertex ``w``
run a forward BFS adding ``w`` to ``in(v)`` of every visited ``v`` — but
prune any ``v`` whose reachability from ``w`` is already witnessed by the
labels built so far — and symmetrically a backward BFS for ``out``.  This
produces a valid (and small) 2-hop cover; any valid cover yields identical
R-join semantics, so the substitution is behaviour-preserving (DESIGN.md
Section 4).

Cyclic graphs are handled the way every 2-hop system does it: condense to
the SCC DAG, label the DAG, and give each node the labels of its SCC
(centers are mapped back to the SCC representative's node id).

A direct greedy set-cover construction (:func:`greedy_two_hop`) is also
provided; it follows Cohen et al.'s formulation literally and is useful as
an oracle on small graphs, but costs O(n^2) space.
"""

from __future__ import annotations

import multiprocessing
from array import array
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..graph.condensation import condense
from ..graph.digraph import DiGraph
from ..graph.traversal import TransitiveClosure


class _LazyCodes:
    """A code column decoded on demand from an external array source.

    Snapshot-loaded labelings don't hold materialized frozensets — they
    hold a fetch function returning the sorted ``array('q')`` row for a
    node (ultimately a delta decode of an mmap slice).  This sequence
    presents the classic ``in_codes``/``out_codes`` interface on top of
    that source: ``[node]`` builds (and memoizes) the frozenset only for
    the rows actually touched, and ``append`` keeps the dynamic
    maintenance layer working — inserted nodes live in a plain overflow
    list past the snapshot's row count.
    """

    __slots__ = ("_count", "_fetch", "_memo", "_extra")

    def __init__(self, count: int, fetch) -> None:
        self._count = count
        self._fetch = fetch
        self._memo: Dict[int, FrozenSet[int]] = {}
        self._extra: List[FrozenSet[int]] = []

    def __len__(self) -> int:
        return self._count + len(self._extra)

    def __getitem__(self, node: int) -> FrozenSet[int]:
        if node < 0:
            node += len(self)
        if not 0 <= node < len(self):
            raise IndexError(node)
        if node >= self._count:
            return self._extra[node - self._count]
        code = self._memo.get(node)
        if code is None:
            code = self._memo[node] = frozenset(self._fetch(node))
        return code

    def __iter__(self):
        for node in range(len(self)):
            yield self[node]

    def append(self, code: FrozenSet[int]) -> None:
        self._extra.append(code)

    def __eq__(self, other: object) -> bool:
        # supports dataclass equality against a plain-list labeling
        if isinstance(other, (list, _LazyCodes)):
            return list(self) == list(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_LazyCodes(count={len(self)}, decoded={len(self._memo)})"


@dataclass
class TwoHopLabeling:
    """Graph codes ``in(x)``/``out(x)`` for every node of a digraph.

    Both codes *include the node itself* (the compact form of Example 3.1
    reconstructs ``in(x) = X_in ∪ {x}``), so ``reaches`` needs no special
    case for ``u == v``.
    """

    in_codes: List[FrozenSet[int]]
    out_codes: List[FrozenSet[int]]
    # lazily-built caches (derived, so excluded from equality/repr):
    # sorted-array codes for the batch kernels and the centers() result
    _in_arrays: List[Optional["array[int]"]] = field(
        default_factory=list, init=False, repr=False, compare=False
    )
    _out_arrays: List[Optional["array[int]"]] = field(
        default_factory=list, init=False, repr=False, compare=False
    )
    _centers: Optional[FrozenSet[int]] = field(
        default=None, init=False, repr=False, compare=False
    )
    # optional external array sources (snapshot adoption): fetch functions
    # returning the sorted array('q') code row for nodes < _source_count
    _in_source: Optional[object] = field(
        default=None, init=False, repr=False, compare=False
    )
    _out_source: Optional[object] = field(
        default=None, init=False, repr=False, compare=False
    )
    _source_count: int = field(default=0, init=False, repr=False, compare=False)
    # optional zero-copy view sources (raw-runs snapshots): fetch functions
    # returning the sorted memoryview('q') slice for nodes < _source_count
    _in_view_source: Optional[object] = field(
        default=None, init=False, repr=False, compare=False
    )
    _out_view_source: Optional[object] = field(
        default=None, init=False, repr=False, compare=False
    )

    @classmethod
    def from_array_source(
        cls, count: int, in_fetch, out_fetch,
        in_view_fetch=None, out_view_fetch=None,
    ) -> "TwoHopLabeling":
        """Adopt externally-stored codes without copying them.

        *in_fetch* / *out_fetch* map a node id to its sorted
        ``array('q')`` code row (e.g. a lazy delta decode out of an
        mmap-backed snapshot).  ``in_code_array``/``out_code_array``
        serve straight from the source, and the ``in_codes``/
        ``out_codes`` sequences build frozensets per node only when a
        caller actually asks for set semantics.

        *in_view_fetch* / *out_view_fetch* (raw-runs snapshots only)
        additionally map a node id to the zero-copy ``memoryview('q')``
        slice of the same row, which :meth:`in_code_view`/
        :meth:`out_code_view` serve to the mmap-native batch path.
        """
        labeling = cls(in_codes=[], out_codes=[])
        labeling._in_source = in_fetch
        labeling._out_source = out_fetch
        labeling._source_count = count
        labeling._in_view_source = in_view_fetch
        labeling._out_view_source = out_view_fetch
        labeling.in_codes = _LazyCodes(count, in_fetch)  # type: ignore[assignment]
        labeling.out_codes = _LazyCodes(count, out_fetch)  # type: ignore[assignment]
        return labeling

    def reaches(self, u: int, v: int) -> bool:
        """``u ~> v`` iff ``out(u) ∩ in(v) ≠ ∅`` (paper Example 3.1)."""
        return not self.out_codes[u].isdisjoint(self.in_codes[v])

    def invalidate_caches(self) -> None:
        """Drop the derived memos after an in-place code mutation.

        ``centers()`` and the sorted code-array views are cached under the
        assumption that the codes are immutable; anything that mutates
        ``in_codes``/``out_codes`` after construction (the dynamic
        maintenance layer in :mod:`repro.labeling.dynamic` appends
        self-labels for inserted nodes) must call this, or stale memos
        would under-report centers and index code arrays sized for the
        old node count.
        """
        self._centers = None
        del self._in_arrays[:]
        del self._out_arrays[:]

    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        return len(self.in_codes)

    def centers(self) -> FrozenSet[int]:
        """All nodes that appear as a center in some other node's code.

        Computed once and cached on the instance — the codes are immutable
        after construction, and callers (the index auditor, catalog
        consumers) used to pay a full scan of every code per call.
        """
        if self._centers is None:
            found: Set[int] = set()
            for v in range(self.node_count):
                found.update(self.in_codes[v])
                found.update(self.out_codes[v])
            self._centers = frozenset(found)
        return self._centers

    # ------------------------------------------------------------------
    # sorted-array views (the batch kernels' representation)
    # ------------------------------------------------------------------
    def in_code_array(self, node: int) -> "array[int]":
        """``in(x)`` as a sorted ``array('q')``, built lazily and cached."""
        arrays = self._in_arrays
        if not arrays:
            arrays.extend([None] * self.node_count)
        code = arrays[node]
        if code is None:
            if self._in_source is not None and node < self._source_count:
                code = arrays[node] = self._in_source(node)  # type: ignore[operator]
            else:
                code = arrays[node] = array("q", sorted(self.in_codes[node]))
        return code

    def out_code_array(self, node: int) -> "array[int]":
        """``out(x)`` as a sorted ``array('q')``, built lazily and cached."""
        arrays = self._out_arrays
        if not arrays:
            arrays.extend([None] * self.node_count)
        code = arrays[node]
        if code is None:
            if self._out_source is not None and node < self._source_count:
                code = arrays[node] = self._out_source(node)  # type: ignore[operator]
            else:
                code = arrays[node] = array("q", sorted(self.out_codes[node]))
        return code

    def in_code_view(self, node: int):
        """``in(x)`` as a zero-copy sorted slice when the backing snapshot
        supports views, else the memoized ``array('q')`` row.

        Un-memoized on the view path by design: the slice is a constant-
        time re-address of the mapping, and holding slices on the
        labeling would pin the mapping past ``Snapshot.close()``.
        Overflow nodes appended after adoption (``node >=`` the snapshot
        node count) always take the array fallback.
        """
        if self._in_view_source is not None and node < self._source_count:
            return self._in_view_source(node)  # type: ignore[operator]
        return self.in_code_array(node)

    def out_code_view(self, node: int):
        """``out(x)`` view twin of :meth:`in_code_view`."""
        if self._out_view_source is not None and node < self._source_count:
            return self._out_view_source(node)  # type: ignore[operator]
        return self.out_code_array(node)

    def cover_size(self) -> int:
        """Total 2-hop cover size ``|H|`` = Σ_w (|U_w| + |V_w|).

        Each non-self entry ``w ∈ in(v)`` puts ``v`` in ``V_w`` and each
        non-self ``w ∈ out(u)`` puts ``u`` in ``U_w``, so the cover size is
        the total number of non-self label entries.  This is the quantity
        the paper's Table 2 reports (|H|, with |H|/|V| around 3.5 on
        XMark graphs).
        """
        total = 0
        for v in range(self.node_count):
            total += len(self.in_codes[v]) - (1 if v in self.in_codes[v] else 0)
            total += len(self.out_codes[v]) - (1 if v in self.out_codes[v] else 0)
        return total

    def average_code_size(self) -> float:
        """Average of |in(x)| + |out(x)| per node (Table 2's last column)."""
        if self.node_count == 0:
            return 0.0
        return self.cover_size() / self.node_count

    def clusters(self) -> Dict[int, Tuple[List[int], List[int]]]:
        """Per-center (F-cluster, T-cluster) pairs.

        ``F-cluster(w) = {u : w ∈ out(u)}`` — nodes that can reach ``w``;
        ``T-cluster(w) = {v : w ∈ in(v)}`` — nodes ``w`` can reach.  These
        are exactly the clusters materialized by the cluster-based R-join
        index (paper Section 3.2).
        """
        f_cluster: Dict[int, List[int]] = {}
        t_cluster: Dict[int, List[int]] = {}
        for v in range(self.node_count):
            for w in self.out_codes[v]:
                f_cluster.setdefault(w, []).append(v)
            for w in self.in_codes[v]:
                t_cluster.setdefault(w, []).append(v)
        return {
            w: (sorted(f_cluster.get(w, [])), sorted(t_cluster.get(w, [])))
            for w in set(f_cluster) | set(t_cluster)
        }


def _degree_order(graph: DiGraph) -> List[int]:
    """Vertices ordered by (in+1)(out+1) degree product, descending.

    High-degree "hub" vertices make the best centers: they lie on many
    paths, so labeling them first lets the pruned BFS cut off early.
    """
    def score(v: int) -> Tuple[int, int]:
        return ((graph.in_degree(v) + 1) * (graph.out_degree(v) + 1), -v)

    return sorted(graph.nodes(), key=score, reverse=True)


def _random_order(graph: DiGraph, seed: int = 0) -> List[int]:
    """A seeded shuffle — the no-heuristic control for center selection."""
    import random

    order = list(graph.nodes())
    random.Random(seed).shuffle(order)
    return order


def _reach_estimate_order(graph: DiGraph, samples: int = 24) -> List[int]:
    """Order by estimated coverage: sampled 2-hop neighborhood product.

    A cheap stand-in for Cohen et al.'s densest-subgraph criterion: a
    center's value is roughly |ancestors| x |descendants|, estimated here
    by the product of 2-step in/out neighborhood sizes (exact degrees
    alone miss long funnels).
    """
    scores = []
    for v in graph.nodes():
        two_out = {w for s in graph.successors(v) for w in graph.successors(s)}
        two_in = {w for p in graph.predecessors(v) for w in graph.predecessors(p)}
        out_size = graph.out_degree(v) + len(two_out)
        in_size = graph.in_degree(v) + len(two_in)
        scores.append(((in_size + 1) * (out_size + 1), -v, v))
    scores.sort(reverse=True)
    return [v for _, _, v in scores]


CENTER_ORDERS = {
    "degree": _degree_order,
    "random": _random_order,
    "reach": _reach_estimate_order,
}


def _label_dag(dag: DiGraph, order: Sequence[int]) -> Tuple[List[Set[int]], List[Set[int]]]:
    """Pruned-BFS 2-hop labeling of a DAG; returns (in_codes, out_codes).

    Codes are keyed by DAG node id and include the node itself.
    """
    n = dag.node_count
    in_codes: List[Set[int]] = [set() for _ in range(n)]
    out_codes: List[Set[int]] = [set() for _ in range(n)]
    for v in range(n):
        in_codes[v].add(v)
        out_codes[v].add(v)

    def covered(u: int, v: int) -> bool:
        return not out_codes[u].isdisjoint(in_codes[v])

    for w in order:
        # forward BFS: w becomes an in-label of nodes it reaches
        queue = deque(dag.successors(w))
        seen = {w}
        while queue:
            v = queue.popleft()
            if v in seen:
                continue
            seen.add(v)
            if covered(w, v):
                continue  # prune: some earlier center already witnesses w ~> v
            in_codes[v].add(w)
            queue.extend(dag.successors(v))
        # backward BFS: w becomes an out-label of nodes that reach it
        queue = deque(dag.predecessors(w))
        seen = {w}
        while queue:
            u = queue.popleft()
            if u in seen:
                continue
            seen.add(u)
            if covered(u, w):
                continue
            out_codes[u].add(w)
            queue.extend(dag.predecessors(u))
    return in_codes, out_codes


# ----------------------------------------------------------------------
# parallel candidate generation (the offline-phase prong of the
# morsel-parallel work; see DESIGN.md §2.3)
# ----------------------------------------------------------------------
#: centers labeled per parallel round.  A *constant* (independent of the
#: worker count and backend) so that the produced labeling is a pure
#: function of (graph, center order, round size) — the same codes come
#: out for workers=2 and workers=8, process or thread pool.
PARALLEL_LABEL_ROUND = 128

#: worker-side snapshot (dag, in_codes, out_codes), installed by the fork
#: pool initializer via memory inheritance (never pickled)
_LABEL_STATE: Optional[tuple] = None


def _init_label_worker(dag: DiGraph, in_codes: list, out_codes: list) -> None:
    global _LABEL_STATE
    _LABEL_STATE = (dag, in_codes, out_codes)


def _forward_candidates(
    dag: DiGraph, in_codes: Sequence[Set[int]], out_codes: Sequence[Set[int]], w: int
) -> List[int]:
    """Nodes the forward pruned BFS from *w* would label, against a
    label snapshot.  Pruning with a snapshot that misses the current
    round's earlier centers prunes *less* than the sequential pass — the
    merge re-checks every candidate, so the extra candidates cost a
    little BFS work, never correctness."""
    candidates: List[int] = []
    queue = deque(dag.successors(w))
    seen = {w}
    while queue:
        v = queue.popleft()
        if v in seen:
            continue
        seen.add(v)
        if not out_codes[w].isdisjoint(in_codes[v]):
            continue  # already witnessed by an earlier-round center
        candidates.append(v)
        queue.extend(dag.successors(v))
    return candidates


def _backward_candidates(
    dag: DiGraph, in_codes: Sequence[Set[int]], out_codes: Sequence[Set[int]], w: int
) -> List[int]:
    """Mirror of :func:`_forward_candidates` for the backward BFS."""
    candidates: List[int] = []
    queue = deque(dag.predecessors(w))
    seen = {w}
    while queue:
        u = queue.popleft()
        if u in seen:
            continue
        seen.add(u)
        if not out_codes[u].isdisjoint(in_codes[w]):
            continue
        candidates.append(u)
        queue.extend(dag.predecessors(u))
    return candidates


def _candidate_batch(
    centers: Sequence[int], state: Optional[tuple] = None
) -> List[Tuple[int, List[int], List[int]]]:
    """Worker task: per center, its (forward, backward) candidate lists."""
    if state is None:
        state = _LABEL_STATE
    if state is None:  # pragma: no cover - defensive: initializer not run
        raise RuntimeError("label worker has no snapshot")
    dag, in_codes, out_codes = state
    return [
        (
            w,
            _forward_candidates(dag, in_codes, out_codes, w),
            _backward_candidates(dag, in_codes, out_codes, w),
        )
        for w in centers
    ]


def _label_dag_parallel(
    dag: DiGraph,
    order: Sequence[int],
    workers: int,
    backend: Optional[str] = None,
) -> Tuple[List[Set[int]], List[Set[int]]]:
    """Round-based parallel pruned-BFS labeling of a DAG.

    Rounds of :data:`PARALLEL_LABEL_ROUND` centers fan their candidate
    BFS out across the pool (pruned against the labels as of the round
    start); the greedy cover selection itself — adding ``w`` to a
    candidate's code unless the *current* labels already witness the
    pair — stays sequential, in center-rank order.  That re-check is
    exactly the sequential prune condition, so the result is a correct
    2-hop cover (the standard pruned-landmark argument: for the
    highest-ranked center on any u→v path, no witness can exist in
    either phase); it may be slightly larger than the sequential cover
    because stale-snapshot BFS prunes later.  The process backend forks
    a fresh pool per round so workers inherit the current labels
    copy-on-write; the thread backend reads them live, which is safe
    because no merge runs while a round is in flight.
    """
    n = dag.node_count
    in_codes: List[Set[int]] = [{v} for v in range(n)]
    out_codes: List[Set[int]] = [{v} for v in range(n)]
    fork_ok = "fork" in multiprocessing.get_all_start_methods()
    if backend is None:
        backend = "process" if fork_ok else "thread"
    if backend not in ("process", "thread"):
        raise ValueError(f"unknown labeling backend {backend!r}")
    if backend == "process" and not fork_ok:
        raise ValueError(
            "the process backend needs the fork start method; "
            "use backend='thread' on this platform"
        )
    workers = max(1, int(workers))
    for start in range(0, len(order), PARALLEL_LABEL_ROUND):
        round_centers = order[start : start + PARALLEL_LABEL_ROUND]
        chunk = max(1, (len(round_centers) + workers - 1) // workers)
        chunks = [
            round_centers[i : i + chunk]
            for i in range(0, len(round_centers), chunk)
        ]
        if backend == "process" and len(chunks) > 1:
            ctx = multiprocessing.get_context("fork")
            with ProcessPoolExecutor(
                max_workers=len(chunks),
                mp_context=ctx,
                initializer=_init_label_worker,
                initargs=(dag, in_codes, out_codes),
            ) as pool:
                results = list(pool.map(_candidate_batch, chunks))
        elif len(chunks) > 1:
            state = (dag, in_codes, out_codes)
            with ThreadPoolExecutor(max_workers=len(chunks)) as pool:
                results = list(
                    pool.map(lambda c: _candidate_batch(c, state), chunks)
                )
        else:
            results = [_candidate_batch(chunks[0], (dag, in_codes, out_codes))]
        # sequential merge in center-rank order: the current-label
        # re-check below is the same `covered` predicate _label_dag uses
        for batch in results:
            for w, forward, backward in batch:
                for v in forward:
                    if out_codes[w].isdisjoint(in_codes[v]):
                        in_codes[v].add(w)
                for u in backward:
                    if out_codes[u].isdisjoint(in_codes[w]):
                        out_codes[u].add(w)
    return in_codes, out_codes


def build_two_hop(
    graph: DiGraph,
    center_order: str = "degree",
    workers: Optional[int] = None,
    backend: Optional[str] = None,
) -> TwoHopLabeling:
    """Compute a 2-hop reachability labeling for an arbitrary digraph.

    Cycles are handled by SCC condensation: all members of an SCC share
    the labels of their component, with center ids mapped back to each
    component's representative (smallest member id).

    ``center_order`` selects the vertex-processing heuristic — the knob
    that determines cover size (Table 2's |H|): ``"degree"`` (default,
    hubs first), ``"reach"`` (sampled 2-step coverage estimate, closer to
    Cohen et al.'s criterion, slower to compute) or ``"random"`` (the
    no-heuristic control).  Any order yields a *correct* labeling.

    ``workers`` > 1 fans the per-center candidate BFS out across a pool
    (:func:`_label_dag_parallel`): same reachability semantics, cover
    possibly a few entries larger than sequential, output deterministic
    for a given graph/order regardless of worker count or ``backend``
    (``"process"``/``"thread"``; default process where fork exists).
    ``workers`` of ``None``/``0``/``1`` is the sequential reference
    implementation, byte-for-byte unchanged.
    """
    try:
        order_fn = CENTER_ORDERS[center_order]
    except KeyError:
        raise ValueError(
            f"unknown center order {center_order!r}; "
            f"choose from {sorted(CENTER_ORDERS)}"
        ) from None
    cond = condense(graph)
    dag = cond.dag
    order = order_fn(dag)
    if workers is not None and workers > 1:
        dag_in, dag_out = _label_dag_parallel(
            dag, order, workers=workers, backend=backend
        )
    else:
        dag_in, dag_out = _label_dag(dag, order)

    representative = [cond.representative(scc) for scc in range(dag.node_count)]
    in_codes: List[FrozenSet[int]] = [frozenset()] * graph.node_count
    out_codes: List[FrozenSet[int]] = [frozenset()] * graph.node_count
    for scc in range(dag.node_count):
        ins = frozenset(representative[c] for c in dag_in[scc])
        outs = frozenset(representative[c] for c in dag_out[scc])
        for v in cond.members[scc]:
            # each node also carries itself (compact-form convention)
            in_codes[v] = ins | {v}
            out_codes[v] = outs | {v}
    return TwoHopLabeling(in_codes=in_codes, out_codes=out_codes)


def greedy_two_hop(graph: DiGraph) -> TwoHopLabeling:
    """Literal greedy set-cover 2-hop construction (Cohen et al.).

    Repeatedly picks the center ``w`` whose cluster pair
    ``Anc(w) x Desc(w)`` covers the most still-uncovered reachable pairs
    per unit of label cost, until every reachable pair is covered.
    O(n^2)-space (uses the transitive closure) — small graphs only; used
    as a second, independently-derived labeling in tests.
    """
    cond = condense(graph)
    dag = cond.dag
    n = dag.node_count
    closure = TransitiveClosure(dag)
    ancestors: List[Set[int]] = [set() for _ in range(n)]
    for u in range(n):
        for v in closure.successors_closure(u):
            ancestors[v].add(u)

    # self pairs (u, u) are covered for free by the self-labels below
    uncovered: Set[Tuple[int, int]] = {
        (u, v) for u in range(n) for v in closure.successors_closure(u) if u != v
    }
    in_codes: List[Set[int]] = [{v} for v in range(n)]
    out_codes: List[Set[int]] = [{v} for v in range(n)]

    while uncovered:
        best_w, best_gain, best_cost = -1, -1, 1
        for w in range(n):
            anc = ancestors[w]
            desc = closure.successors_closure(w)
            gain = sum(1 for u in anc for v in desc if (u, v) in uncovered)
            cost = len(anc) + len(desc)
            if gain * best_cost > best_gain * cost:  # gain/cost comparison
                best_w, best_gain, best_cost = w, gain, cost
        if best_gain <= 0:
            break
        w = best_w
        for u in ancestors[w]:
            out_codes[u].add(w)
        for v in closure.successors_closure(w):
            in_codes[v].add(w)
        uncovered -= {
            (u, v)
            for u in ancestors[w]
            for v in closure.successors_closure(w)
            if (u, v) in uncovered
        }

    representative = [cond.representative(scc) for scc in range(n)]
    full_in: List[FrozenSet[int]] = [frozenset()] * graph.node_count
    full_out: List[FrozenSet[int]] = [frozenset()] * graph.node_count
    for scc in range(n):
        ins = frozenset(representative[c] for c in in_codes[scc])
        outs = frozenset(representative[c] for c in out_codes[scc])
        for v in cond.members[scc]:
            full_in[v] = ins | {v}
            full_out[v] = outs | {v}
    return TwoHopLabeling(in_codes=full_in, out_codes=full_out)
