"""Incremental reachability on top of a static 2-hop labeling.

The paper builds its codes offline and cites the *2-hop cover update
problem* [24] for maintenance under graph changes.  This module provides
the standard practical answer: a hybrid oracle that keeps the static
labeling for the bulk of the graph and handles a (small) set of *patch
edges* added since the last build.

``u ~> v`` holds in the updated graph iff there is a chain

    u  ~>_static  a_1  ->patch  b_1  ~>_static  a_2  ->patch ...  ~>_static  v

i.e. static reachability interleaved with patch edges.  The oracle
searches that chain over the patch-edge endpoints only, so queries stay
fast while the patch set is small; :meth:`DynamicReachability.rebuild`
folds patches into a fresh static labeling when they accumulate (the
amortized strategy incremental-maintenance systems use in practice).

Deletions are intentionally unsupported: removing an edge can invalidate
arbitrarily many cover entries (the hard direction of [24]); a rebuild is
the honest answer at this library's scale.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..graph.digraph import DiGraph
from .twohop import TwoHopLabeling, build_two_hop


class DynamicReachability:
    """Reachability over a mutable digraph: static 2-hop + patch edges.

    Parameters
    ----------
    graph:
        The data graph; mutated in place by :meth:`add_edge` /
        :meth:`add_node`.
    labeling:
        Optional prebuilt static labeling for *graph*.
    auto_rebuild_after:
        Fold patches into a fresh static labeling once this many patch
        edges accumulate (None disables auto-rebuild).
    """

    def __init__(
        self,
        graph: DiGraph,
        labeling: Optional[TwoHopLabeling] = None,
        auto_rebuild_after: Optional[int] = 256,
    ) -> None:
        self.graph = graph
        self.labeling = labeling if labeling is not None else build_two_hop(graph)
        self.auto_rebuild_after = auto_rebuild_after
        self._patch_edges: List[Tuple[int, int]] = []
        # patch sources grouped for the chain search
        self._patch_from: Dict[int, List[int]] = {}
        self._new_nodes: Set[int] = set()
        self.rebuild_count = 0

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_node(self, label: str) -> int:
        """Add a labeled node; it is immediately queryable.

        The static labeling is extended in place with the node's
        self-labels (an inserted node is statically isolated, so
        ``in(v) = out(v) = {v}`` is its exact code), and the labeling's
        derived memos — the cached ``centers()`` set and the sorted
        code-array views, both sized/computed for the pre-insert node
        count — are invalidated.  Without that invalidation a labeling
        consumer that warmed the caches before the insert would miss the
        new node in ``centers()`` and index out of bounds in
        ``in_code_array``/``out_code_array``.
        """
        node = self.graph.add_node(label)
        self._new_nodes.add(node)
        labeling = self.labeling
        while len(labeling.in_codes) <= node:
            missing = len(labeling.in_codes)
            labeling.in_codes.append(frozenset({missing}))
            labeling.out_codes.append(frozenset({missing}))
        labeling.invalidate_caches()
        return node

    def add_edge(self, u: int, v: int) -> None:
        """Add edge ``u -> v``; reachability reflects it immediately."""
        self.graph.add_edge(u, v)
        self._patch_edges.append((u, v))
        self._patch_from.setdefault(u, []).append(v)
        if (
            self.auto_rebuild_after is not None
            and len(self._patch_edges) >= self.auto_rebuild_after
        ):
            self.rebuild()

    def rebuild(self) -> None:
        """Recompute the static labeling; clears the patch set."""
        self.labeling = build_two_hop(self.graph)
        self._patch_edges.clear()
        self._patch_from.clear()
        self._new_nodes.clear()
        self.rebuild_count += 1

    @property
    def patch_size(self) -> int:
        return len(self._patch_edges)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _static_reaches(self, u: int, v: int) -> bool:
        """Static-labeling reachability, treating post-build nodes as
        isolated (they reach only themselves statically)."""
        if u == v:
            return True
        if u in self._new_nodes or v in self._new_nodes:
            return False
        return self.labeling.reaches(u, v)

    def reaches(self, u: int, v: int) -> bool:
        """``u ~> v`` in the *current* graph (static + patch edges)."""
        if self._static_reaches(u, v):
            return True
        if not self._patch_edges:
            return False
        # BFS over patch-edge hops: frontier holds patch-edge *targets*
        # (plus u itself) whose static closure has been explored
        visited: Set[int] = set()
        frontier = [u]
        while frontier:
            node = frontier.pop()
            for source, targets in self._patch_from.items():
                if source in visited:
                    continue
                if self._static_reaches(node, source):
                    visited.add(source)
                    for target in targets:
                        if target == v or self._static_reaches(target, v):
                            return True
                        frontier.append(target)
        return False

    def reachable_pairs_added(self) -> int:  # pragma: no cover - diagnostics
        """Patch edges currently outstanding (diagnostic alias)."""
        return len(self._patch_edges)
