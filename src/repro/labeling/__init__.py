"""Reachability labelings: 2-hop graph codes, interval codes, SSPI."""

from .interval import (
    Interval,
    MultiIntervalCode,
    TreeIntervalCode,
    build_multi_interval,
    build_tree_intervals,
    merge_intervals,
    point_in_intervals,
)
from .chaincover import ChainCover, build_chain_cover
from .dynamic import DynamicReachability
from .sspi import SSPI
from .twohop import TwoHopLabeling, build_two_hop, greedy_two_hop

__all__ = [
    "Interval",
    "MultiIntervalCode",
    "TreeIntervalCode",
    "build_multi_interval",
    "build_tree_intervals",
    "merge_intervals",
    "point_in_intervals",
    "ChainCover",
    "build_chain_cover",
    "DynamicReachability",
    "SSPI",
    "TwoHopLabeling",
    "build_two_hop",
    "greedy_two_hop",
]
