"""Cross-query admission control for the always-on service.

Two bounded stages, nothing unbounded anywhere:

* **in-flight slots** — at most ``max_inflight`` queries execute
  concurrently.  Slots map 1:1 onto the server's executor threads, so
  admission is the *only* queue in the system; ``run_in_executor`` never
  buffers behind it.
* **admission queue** — at most ``queue_depth`` queries wait for a
  slot, ordered by (priority desc, arrival order).  A query arriving to
  a full queue is **shed** immediately (:class:`Overloaded`, the wire
  protocol's 429-style ``overloaded`` reject) — under overload the
  server's latency tail stays bounded by ``queue_depth`` × service
  time instead of collapsing under an ever-growing backlog.

The scheduler is deliberately loop-confined: every method must be
called from the event-loop thread (the server does), so the state
machine needs no locks of its own.  Waiters are whatever future-like
object the caller supplies (``loop.create_future`` in the server, a
stub in unit tests); a waiter whose ``done()`` is already true when its
turn comes (connection dropped, task cancelled) is skipped and the slot
passes to the next in line.
"""

from __future__ import annotations

import threading
from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple


class Overloaded(Exception):
    """Both the in-flight slots and the admission queue are full."""


class AdmissionScheduler:
    """Bounded slots + bounded priority queue; sheds beyond both."""

    def __init__(self, max_inflight: int = 2, queue_depth: int = 16) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if queue_depth < 0:
            raise ValueError("queue_depth must be >= 0")
        self.max_inflight = max_inflight
        self.queue_depth = queue_depth
        self.inflight = 0
        self._seq = 0
        #: (-priority, seq, waiter): max-priority first, FIFO within one
        self._waiting: List[Tuple[int, int, Any]] = []

    @property
    def queued(self) -> int:
        return len(self._waiting)

    def try_acquire(
        self, priority: int = 0, waiter_factory: Optional[Callable[[], Any]] = None
    ) -> Optional[Any]:
        """Claim a slot now (returns ``None``) or join the queue.

        Returns the waiter produced by ``waiter_factory`` when queued —
        the caller awaits it; when it resolves the slot is already
        transferred (do **not** call :meth:`try_acquire` again).  Raises
        :class:`Overloaded` when the queue is at depth: the shed path
        allocates nothing and must stay O(1).
        """
        if self.inflight < self.max_inflight:
            self.inflight += 1
            return None
        if len(self._waiting) >= self.queue_depth or waiter_factory is None:
            raise Overloaded(
                f"{self.inflight} in flight, {len(self._waiting)} queued "
                f"(depth {self.queue_depth})"
            )
        waiter = waiter_factory()
        self._seq += 1
        heappush(self._waiting, (-priority, self._seq, waiter))
        return waiter

    def release(self) -> None:
        """Free one slot; hand it to the best live waiter, if any."""
        while self._waiting:
            _, _, waiter = heappop(self._waiting)
            if waiter.done():  # abandoned while queued: skip, try next
                continue
            waiter.set_result(None)  # slot transfers; inflight unchanged
            return
        self.inflight -= 1

    def drain(self) -> List[Any]:
        """Remove every live waiter (shutdown); caller bounces them."""
        live = [w for _, _, w in self._waiting if not w.done()]
        self._waiting.clear()
        return live


def percentile(values: List[float], q: float) -> float:
    """Linear-interpolation percentile (q in [0, 100]) of raw samples."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


#: per-query latency samples kept for percentile estimation; bounded so
#: a long-lived server never grows without limit
SAMPLE_WINDOW = 4096


class ServiceStats:
    """Aggregate counters + a bounded latency sample window.

    Recording happens on the event loop; snapshots may be taken from any
    thread (embedding API, tests), so mutation and snapshot share one
    lock.  Latency percentiles are computed over the most recent
    :data:`SAMPLE_WINDOW` served queries — a sliding window, which is
    what an operator dashboards anyway.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.received = 0
        self.served = 0
        self.shed = 0
        self.timeouts = 0
        self.errors = 0
        self.truncated = 0
        self.rows_returned = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self._queue_wait_ms: Deque[float] = deque(maxlen=SAMPLE_WINDOW)
        self._exec_ms: Deque[float] = deque(maxlen=SAMPLE_WINDOW)
        self._total_ms: Deque[float] = deque(maxlen=SAMPLE_WINDOW)

    def mark_received(self) -> None:
        with self._lock:
            self.received += 1

    def mark_shed(self) -> None:
        with self._lock:
            self.shed += 1

    def mark_timeout(self) -> None:
        with self._lock:
            self.timeouts += 1

    def mark_error(self) -> None:
        with self._lock:
            self.errors += 1

    def mark_served(
        self,
        queue_wait_ms: float,
        exec_ms: float,
        rows: int,
        truncated: bool,
        cache_hits: int = 0,
        cache_misses: int = 0,
    ) -> None:
        with self._lock:
            self.served += 1
            self.rows_returned += rows
            if truncated:
                self.truncated += 1
            self.cache_hits += cache_hits
            self.cache_misses += cache_misses
            self._queue_wait_ms.append(queue_wait_ms)
            self._exec_ms.append(exec_ms)
            self._total_ms.append(queue_wait_ms + exec_ms)

    def snapshot(self) -> Dict[str, Any]:
        # one consistent cut of counters + windows is taken under the
        # lock (cheap list copies), then the percentile sorts run with
        # the lock *released* — concurrent slot threads recording
        # mark_served never stall behind an O(n log n) snapshot
        with self._lock:
            total = list(self._total_ms)
            queue_wait = list(self._queue_wait_ms)
            exec_ms = list(self._exec_ms)
            received = self.received
            served = self.served
            shed = self.shed
            timeouts = self.timeouts
            errors = self.errors
            truncated = self.truncated
            rows_returned = self.rows_returned
            cache_hits = self.cache_hits
            cache_misses = self.cache_misses
        cache_lookups = cache_hits + cache_misses
        return {
            "received": received,
            "served": served,
            "shed": shed,
            "timeouts": timeouts,
            "errors": errors,
            "truncated": truncated,
            "rows_returned": rows_returned,
            "shed_rate": shed / received if received else 0.0,
            "cache_hit_rate": (
                cache_hits / cache_lookups if cache_lookups else 0.0
            ),
            "latency_ms": {
                "p50": percentile(total, 50),
                "p95": percentile(total, 95),
                "p99": percentile(total, 99),
            },
            "queue_wait_ms": {
                "p50": percentile(queue_wait, 50),
                "p99": percentile(queue_wait, 99),
            },
            "exec_ms": {
                "p50": percentile(exec_ms, 50),
                "p99": percentile(exec_ms, 99),
            },
        }
