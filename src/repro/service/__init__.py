"""Always-on query service: one shared engine, many concurrent clients.

The engine's expensive state — 2-hop labeling, R-join index, plan
cache, :class:`CenterCache`, generation-keyed worker pool, hot buffer
pool — is paid for once and amortized across every query the server
answers, instead of once *per query* as in invoke-per-query use.  See
:mod:`repro.service.server` for the concurrency model and
:mod:`repro.service.protocol` for the wire format.

Start a server::

    repro serve --db snapshot.bin --port 7437

or embed one::

    from repro.service import QueryService, ServiceConfig, start_in_thread

    handle = start_in_thread(engine, ServiceConfig(max_inflight=2))
    host, port = handle.address
"""

from .client import AsyncServiceClient, ServiceClient, ServiceError, rows_as_tuples
from .protocol import (
    ERROR_CODES,
    MAX_LINE_BYTES,
    ProtocolError,
    Request,
    encode,
    error_response,
    ok_response,
    parse_request,
)
from .scheduler import AdmissionScheduler, Overloaded, ServiceStats, percentile
from .server import QueryService, ServiceConfig, ServiceHandle, start_in_thread

__all__ = [
    "AdmissionScheduler",
    "AsyncServiceClient",
    "ERROR_CODES",
    "MAX_LINE_BYTES",
    "Overloaded",
    "ProtocolError",
    "QueryService",
    "Request",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceHandle",
    "ServiceStats",
    "encode",
    "error_response",
    "ok_response",
    "parse_request",
    "percentile",
    "rows_as_tuples",
    "start_in_thread",
]
