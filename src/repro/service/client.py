"""Clients for the query service's line-delimited JSON protocol.

:class:`ServiceClient` is the simple blocking client: one socket, one
request in flight at a time — what a CLI, a test, or the closed-loop
half of the benchmark wants.  :class:`AsyncServiceClient` pipelines:
it keeps a map of in-flight request ids to futures and matches
responses as they arrive, which is what the open-loop load harness
needs to issue queries on a fixed schedule regardless of when earlier
answers come back.
"""

from __future__ import annotations

import asyncio
import json
import socket
from typing import Any, Dict, List, Optional, Tuple

from .protocol import MAX_LINE_BYTES, encode


class ServiceError(RuntimeError):
    """An error response from the service, with its wire ``code``."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


def _raise_on_error(response: Dict[str, Any]) -> Dict[str, Any]:
    if not response.get("ok"):
        error = response.get("error") or {}
        raise ServiceError(
            error.get("code", "internal"), error.get("message", "unknown error")
        )
    return response


def _query_payload(
    request_id: Any,
    pattern: str,
    optimizer: str,
    limit: Optional[int],
    row_limit: Optional[int],
    timeout_ms: Optional[float],
    priority: int,
) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "op": "query",
        "id": request_id,
        "pattern": pattern,
        "optimizer": optimizer,
        "priority": priority,
    }
    if limit is not None:
        payload["limit"] = limit
    if row_limit is not None:
        payload["row_limit"] = row_limit
    if timeout_ms is not None:
        payload["timeout_ms"] = timeout_ms
    return payload


def rows_as_tuples(response: Dict[str, Any]) -> List[Tuple[int, ...]]:
    """The response's rows in the library's native shape (tuples)."""
    return [tuple(row) for row in response.get("rows", ())]


class ServiceClient:
    """Blocking request/response client (one in flight at a time)."""

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")
        self._next_id = 0

    def _call(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        self._sock.sendall(encode(payload))
        line = self._reader.readline(MAX_LINE_BYTES + 1)
        if not line:
            raise ConnectionError("service closed the connection")
        return json.loads(line)

    def query(
        self,
        pattern: str,
        optimizer: str = "dps",
        limit: Optional[int] = None,
        row_limit: Optional[int] = None,
        timeout_ms: Optional[float] = None,
        priority: int = 0,
    ) -> Dict[str, Any]:
        """Run one pattern query; raises :class:`ServiceError` on failure."""
        self._next_id += 1
        payload = _query_payload(
            self._next_id, pattern, optimizer, limit, row_limit,
            timeout_ms, priority,
        )
        return _raise_on_error(self._call(payload))

    def stats(self) -> Dict[str, Any]:
        self._next_id += 1
        return _raise_on_error(self._call({"op": "stats", "id": self._next_id}))

    def ping(self) -> bool:
        self._next_id += 1
        response = self._call({"op": "ping", "id": self._next_id})
        return bool(response.get("pong"))

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class AsyncServiceClient:
    """Pipelining client: many requests in flight, matched by id."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._pending: Dict[Any, asyncio.Future] = {}
        self._next_id = 0
        self._closed = False
        self._read_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "AsyncServiceClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_LINE_BYTES
        )
        return cls(reader, writer)

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                response = json.loads(line)
                future = self._pending.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (asyncio.CancelledError, ConnectionError, OSError):
            pass
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ConnectionError("service connection closed")
                    )
            self._pending.clear()

    async def submit(self, payload: Dict[str, Any]) -> "asyncio.Future":
        """Send one request; returns the future its response resolves."""
        if self._closed:
            raise ConnectionError("client closed")
        self._next_id += 1
        request_id = f"q{self._next_id}"
        payload = dict(payload, id=request_id)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(encode(payload))
        await self._writer.drain()
        return future

    async def query(
        self,
        pattern: str,
        optimizer: str = "dps",
        limit: Optional[int] = None,
        row_limit: Optional[int] = None,
        timeout_ms: Optional[float] = None,
        priority: int = 0,
    ) -> Dict[str, Any]:
        future = await self.submit(
            _query_payload(
                None, pattern, optimizer, limit, row_limit, timeout_ms, priority
            )
        )
        return _raise_on_error(await future)

    async def stats(self) -> Dict[str, Any]:
        future = await self.submit({"op": "stats"})
        return _raise_on_error(await future)

    async def close(self) -> None:
        self._closed = True
        self._read_task.cancel()
        try:
            await self._read_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
