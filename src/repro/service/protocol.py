"""Wire protocol for the always-on query service.

Line-delimited JSON over a byte stream: every request and every
response is one JSON object on one ``\\n``-terminated line, so the
protocol works identically over a raw TCP socket, an SSH tunnel, or
``nc`` by hand.  Requests carry an ``op``:

``query``
    ``{"op": "query", "id": 7, "pattern": "A -> C, C -> D",
    "optimizer": "dps", "limit": 100, "row_limit": 500000,
    "timeout_ms": 2000, "priority": 0}`` — everything after ``pattern``
    is optional.  ``id`` is echoed verbatim on the response so clients
    may pipeline requests and match answers out of band.
``stats``
    aggregate service counters + latency percentiles.
``ping``
    liveness probe; answers ``{"ok": true, "pong": true}``.

Successful query responses carry ``columns`` (pattern variables in row
order), ``rows`` (arrays of node ids, byte-identical to what the
library's own drivers produce), ``truncated``/``stop_reason`` (the
streaming driver's partial-result flags), and a ``metrics`` object
(queue wait, execution wall, cache hit rate).  Failures carry
``{"ok": false, "error": {"code": ..., "message": ...}}`` with ``code``
from :data:`ERROR_CODES`; ``overloaded`` is the fast 429-style
load-shed reject — the server answers it without queueing any work.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence

#: hard ceiling on one request/response line; longer lines are a
#: protocol error, never an unbounded buffer
MAX_LINE_BYTES = 8 * 1024 * 1024

#: every ``error.code`` a response may carry
ERROR_CODES = (
    "bad_request",   # malformed JSON / unknown op / invalid field
    "overloaded",    # admission queue full: request shed, retry later
    "timeout",       # deadline expired before any rows were produced
    "row_limit",     # intermediate-result guard tripped mid-query
    "internal",      # unexpected server-side failure
    "shutdown",      # server stopping; in-queue work is bounced
)

OPS = ("query", "stats", "ping")


class ProtocolError(ValueError):
    """A request the server refuses to act on, with its error code."""

    def __init__(self, message: str, code: str = "bad_request") -> None:
        super().__init__(message)
        self.code = code


@dataclass(frozen=True)
class Request:
    """One parsed, validated request line."""

    op: str
    id: Any = None
    pattern: str = ""
    optimizer: str = "dps"
    limit: Optional[int] = None
    row_limit: Optional[int] = None
    timeout_ms: Optional[float] = None
    priority: int = 0


def _optional_count(raw: Dict[str, Any], field: str) -> Optional[int]:
    value = raw.get(field)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int) or value < 0:
        raise ProtocolError(f"{field!r} must be a non-negative integer")
    return value


def parse_request(line: bytes) -> Request:
    """Parse and validate one request line (raises :class:`ProtocolError`)."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError("request line exceeds MAX_LINE_BYTES")
    try:
        raw = json.loads(line)
    except (ValueError, UnicodeDecodeError) as err:
        raise ProtocolError(f"request is not valid JSON: {err}") from None
    if not isinstance(raw, dict):
        raise ProtocolError("request must be a JSON object")
    op = raw.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; choose from {list(OPS)}")
    request_id = raw.get("id")
    if op != "query":
        return Request(op=op, id=request_id)
    pattern = raw.get("pattern")
    if not isinstance(pattern, str) or not pattern.strip():
        raise ProtocolError("'pattern' must be a non-empty string")
    optimizer = raw.get("optimizer", "dps")
    if not isinstance(optimizer, str):
        raise ProtocolError("'optimizer' must be a string")
    timeout_ms = raw.get("timeout_ms")
    if timeout_ms is not None and (
        isinstance(timeout_ms, bool)
        or not isinstance(timeout_ms, (int, float))
        or timeout_ms < 0
    ):
        raise ProtocolError("'timeout_ms' must be a non-negative number")
    priority = raw.get("priority", 0)
    if isinstance(priority, bool) or not isinstance(priority, int):
        raise ProtocolError("'priority' must be an integer")
    return Request(
        op="query",
        id=request_id,
        pattern=pattern,
        optimizer=optimizer,
        limit=_optional_count(raw, "limit"),
        row_limit=_optional_count(raw, "row_limit"),
        timeout_ms=timeout_ms,
        priority=priority,
    )


def encode(payload: Dict[str, Any]) -> bytes:
    """One response object as a compact ``\\n``-terminated JSON line."""
    return json.dumps(payload, separators=(",", ":")).encode() + b"\n"


def ok_response(
    request_id: Any,
    columns: Sequence[str],
    rows: Sequence[Sequence[int]],
    truncated: bool,
    stop_reason: Optional[str],
    metrics: Dict[str, Any],
) -> Dict[str, Any]:
    return {
        "id": request_id,
        "ok": True,
        "columns": list(columns),
        "rows": [list(row) for row in rows],
        "truncated": truncated,
        "stop_reason": stop_reason,
        "metrics": metrics,
    }


def error_response(request_id: Any, code: str, message: str) -> Dict[str, Any]:
    if code not in ERROR_CODES:  # defensive: never emit an unknown code
        code = "internal"
    return {
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message},
    }
