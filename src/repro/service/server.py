"""The always-on asyncio query service.

One long-running process owns one :class:`~repro.query.engine.GraphEngine`
— its indexes, plan cache, :class:`CenterCache`, and generation-keyed
worker pool — and serves concurrent pattern queries over the
line-delimited JSON protocol (:mod:`repro.service.protocol`).  Clients
connect over TCP, pipeline requests, and get responses matched by
``id``.

Concurrency model
-----------------
Admitted queries run **concurrently with no engine-wide lock**.  The
shared structures each carry their own discipline instead:

* the engine's :class:`CenterCache` is striped into independently
  locked shards (per-shard LRU + counters), so concurrent queries
  contend only when they hash to the same shard;
* the plan cache and worker-pool handoff take short per-engine locks
  around dictionary bumps only — never around execution;
* the storage read path is tiered per engine.  **Snapshot tier**
  (mmap-backed databases): reads address an immutable mapping, so
  execution takes no storage locks at all.  **Live tier** (B+-tree
  databases): the buffer pool's page table and the index memos take
  fine-grained per-structure locks around individual lookups;
* per-query accounting is exact, not delta-of-globals: each execution
  context carries its own cache recorder, and each slot thread runs
  under a thread-local :func:`~repro.storage.stats.use_stats` override,
  so overlapping queries never bleed counters into each other.

``dispatch="process"`` (snapshot tier only) goes further: each admitted
query is shipped whole to a generation-keyed process
:class:`~repro.query.physical.parallel.WorkerPool` whose workers
re-opened the snapshot by descriptor — nothing index-sized crosses the
process boundary, and ``max_inflight=4`` occupies four *cores* instead
of four threads sharing one GIL.  The default ``dispatch="auto"``
resolves to in-process slot threads, which still overlap all I/O waits
and, on the snapshot tier, all mmap page faults.

What overlaps in every mode: protocol parsing, admission, response
serialization, socket I/O (all on the event loop) and the engine's
amortized state (plan cache, CenterCache, warm pools, hot buffer pool)
— which is where the service's throughput win over per-query cold
process invocations comes from.

Admission control (:class:`AdmissionScheduler`) bounds the system:
``max_inflight`` executor slots, ``queue_depth`` waiting queries,
everything beyond shed with a fast ``overloaded`` reject.  The executor
is sized exactly to ``max_inflight`` so ``run_in_executor`` can never
buffer work behind the scheduler's back.

Deadlines ride the streaming driver: a query's ``timeout_ms`` is
measured from *admission* (queue wait included, as a client experiences
it); whatever remains when a slot opens is handed to
``GraphEngine.match_iter(timeout=...)``, whose cooperative deadline
stops the stream between rows and flags the response ``truncated`` with
``stop_reason="timeout"``.  A deadline that expires while still queued
is answered with a ``timeout`` error without touching the engine.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Optional, Set, Tuple

from ..query import PatternError, RowLimitExceeded, WorkerPool
from ..query.engine import GraphEngine
from ..storage.stats import IOStats, use_stats
from .protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    Request,
    encode,
    error_response,
    ok_response,
    parse_request,
)
from .scheduler import AdmissionScheduler, Overloaded, ServiceStats


@dataclass
class ServiceConfig:
    """Tunables for one :class:`QueryService` instance."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral: read the bound port off ``address``
    #: concurrent query slots; admitted queries execute in parallel
    #: (no engine-wide lock — see the module docstring's tier model)
    max_inflight: int = 2
    #: admission queue depth; arrivals beyond it are shed
    queue_depth: int = 16
    #: where admitted queries execute: ``"auto"`` (in-process slot
    #: threads), ``"inline"`` (same, explicitly), or ``"process"`` —
    #: ship each query whole to a process worker pool (snapshot-backed
    #: engines only; raises ``ValueError`` otherwise)
    dispatch: str = "auto"
    #: deadline applied when a query carries no ``timeout_ms`` (seconds;
    #: ``None`` = no default deadline)
    default_timeout_s: Optional[float] = None
    #: hard cap on rows returned per query, applied as a stream limit
    #: even when the client asks for more (or for everything)
    max_result_rows: int = 1_000_000


class QueryService:
    """Serve concurrent pattern queries against one shared engine."""

    def __init__(
        self, engine: GraphEngine, config: Optional[ServiceConfig] = None
    ) -> None:
        self.engine = engine
        self.config = config or ServiceConfig()
        self.stats = ServiceStats()
        self.scheduler = AdmissionScheduler(
            self.config.max_inflight, self.config.queue_depth
        )
        dispatch = self.config.dispatch
        if dispatch not in ("auto", "inline", "process"):
            raise ValueError(
                f"dispatch must be 'auto', 'inline' or 'process', "
                f"got {dispatch!r}"
            )
        if dispatch == "auto":
            dispatch = "inline"
        #: resolved execution mode: ``"inline"`` or ``"process"``
        self.dispatch = dispatch
        self._pool: Optional[WorkerPool] = None
        if dispatch == "process":
            if engine.db.snapshot_descriptor() is None:
                raise ValueError(
                    "dispatch='process' needs a snapshot-backed engine: "
                    "workers re-open the snapshot by descriptor"
                )
            self._pool = WorkerPool(
                engine.db, self.config.max_inflight, backend="process"
            )
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_inflight,
            thread_name_prefix="repro-query",
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._tasks: Set[asyncio.Task] = set()
        self._started_at = time.perf_counter()
        self._stopping = False

    @property
    def tier(self) -> str:
        """Which concurrency tier this engine runs in (module docstring):
        ``"snapshot-lockfree"`` for mmap-backed engines (reads take no
        storage locks), ``"live-finegrained"`` for B+-tree engines
        (per-structure locks on the buffer pool and index memos)."""
        if self.engine.db.snapshot_descriptor() is not None:
            return "snapshot-lockfree"
        return "live-finegrained"

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting connections; returns (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=MAX_LINE_BYTES,
        )
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        assert self._server is not None, "service not started"
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def serve_forever(self) -> None:
        assert self._server is not None, "service not started"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, bounce queued work, finish in-flight queries."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for waiter in self.scheduler.drain():
            if not waiter.done():
                waiter.set_exception(Overloaded("service stopping"))
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._executor.shutdown(wait=True)
        if self._pool is not None:
            self._pool.shutdown()

    # ------------------------------------------------------------------
    # connection / request handling (event loop)
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()  # responses interleave whole lines only
        requests: Set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(
                        writer, write_lock,
                        error_response(None, "bad_request", "request line too long"),
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                # one task per request: queries must not block the read
                # loop, so pipelined requests overlap
                task = asyncio.ensure_future(
                    self._handle_request(line, writer, write_lock)
                )
                requests.add(task)
                self._tasks.add(task)
                task.add_done_callback(requests.discard)
                task.add_done_callback(self._tasks.discard)
        finally:
            for task in requests:
                task.cancel()
            if requests:
                await asyncio.gather(*requests, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        payload: Dict[str, Any],
    ) -> None:
        data = encode(payload)
        async with write_lock:
            writer.write(data)
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                pass  # peer went away; the read loop will notice

    async def _handle_request(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        try:
            request = parse_request(line)
        except ProtocolError as err:
            self.stats.mark_error()
            await self._send(
                writer, write_lock, error_response(None, err.code, str(err))
            )
            return
        try:
            if request.op == "ping":
                payload: Dict[str, Any] = {
                    "id": request.id, "ok": True, "pong": True,
                }
            elif request.op == "stats":
                payload = self._stats_payload(request.id)
            else:
                payload = await self._run_query(request)
        except asyncio.CancelledError:
            raise
        except Exception as err:  # noqa: BLE001 - every request gets an answer
            self.stats.mark_error()
            payload = error_response(
                request.id, "internal", f"{type(err).__name__}: {err}"
            )
        await self._send(writer, write_lock, payload)

    def _stats_payload(self, request_id: Any) -> Dict[str, Any]:
        snapshot = self.stats.snapshot()
        cache = self.engine.center_cache
        snapshot.update(
            {
                "id": request_id,
                "ok": True,
                "uptime_s": time.perf_counter() - self._started_at,
                "inflight": self.scheduler.inflight,
                "queued": self.scheduler.queued,
                "tier": self.tier,
                "dispatch": self.dispatch,
                "engine": {
                    "plan_cache_entries": len(getattr(self.engine, "_plan_cache", ())),
                    "center_cache_entries": cache.entry_count,
                    "center_cache_hit_rate": cache.hit_rate,
                    "index_generation": getattr(self.engine.db, "index_generation", 0),
                },
            }
        )
        return snapshot

    # ------------------------------------------------------------------
    # the query path
    # ------------------------------------------------------------------
    async def _run_query(self, request: Request) -> Dict[str, Any]:
        self.stats.mark_received()
        if self._stopping:
            self.stats.mark_shed()
            return error_response(request.id, "shutdown", "service stopping")
        loop = asyncio.get_running_loop()
        admitted = time.perf_counter()
        timeout_s = (
            request.timeout_ms / 1000.0
            if request.timeout_ms is not None
            else self.config.default_timeout_s
        )
        deadline = admitted + timeout_s if timeout_s is not None else None
        try:
            waiter = self.scheduler.try_acquire(
                priority=request.priority, waiter_factory=loop.create_future
            )
        except Overloaded as err:
            self.stats.mark_shed()
            return error_response(request.id, "overloaded", str(err))
        if waiter is not None:
            try:
                await waiter  # slot transfers on resolution
            except Overloaded as err:
                self.stats.mark_shed()
                return error_response(request.id, "shutdown", str(err))
            except asyncio.CancelledError:
                # dropped while queued: release() skips the done waiter —
                # unless the slot already transferred in the same tick,
                # in which case it is ours to give back
                if (
                    waiter.done()
                    and not waiter.cancelled()
                    and waiter.exception() is None
                ):
                    self.scheduler.release()
                raise
        # from here on we hold a slot and must release it exactly once
        try:
            queue_wait_s = time.perf_counter() - admitted
            remaining: Optional[float] = None
            if deadline is not None:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    self.stats.mark_timeout()
                    return error_response(
                        request.id, "timeout",
                        "deadline expired while queued for admission",
                    )
            try:
                result = await loop.run_in_executor(
                    self._executor, self._execute, request, remaining
                )
            except RowLimitExceeded as err:
                self.stats.mark_error()
                return error_response(request.id, "row_limit", str(err))
            except (PatternError, KeyError, ValueError) as err:
                self.stats.mark_error()
                return error_response(request.id, "bad_request", str(err))
            except Exception as err:  # noqa: BLE001 - the wire needs an answer
                self.stats.mark_error()
                return error_response(
                    request.id, "internal", f"{type(err).__name__}: {err}"
                )
            self.stats.mark_served(
                queue_wait_ms=queue_wait_s * 1000.0,
                exec_ms=result["exec_s"] * 1000.0,
                rows=len(result["rows"]),
                truncated=result["truncated"],
                cache_hits=result["cache_hits"],
                cache_misses=result["cache_misses"],
            )
            if result["stop_reason"] == "timeout":
                self.stats.mark_timeout()
            return ok_response(
                request.id,
                columns=result["columns"],
                rows=result["rows"],
                truncated=result["truncated"],
                stop_reason=result["stop_reason"],
                metrics={
                    "queue_ms": round(queue_wait_s * 1000.0, 3),
                    "exec_ms": round(result["exec_s"] * 1000.0, 3),
                    # monotonic (start, end) of the execution window —
                    # comparable across concurrent responses, so clients
                    # (and the differential suite) can prove overlap
                    "exec_span": list(result["exec_span"]),
                    "rows": len(result["rows"]),
                    "cache_hit_rate": result["cache_hit_rate"],
                },
            )
        finally:
            self.scheduler.release()

    def _execute(
        self, request: Request, timeout_s: Optional[float]
    ) -> Dict[str, Any]:
        """Run one admitted query (executor thread — no engine lock).

        Overlapping slot threads share the engine's caches but keep
        exact private accounting: cache counts come from the execution
        context's own recorder, and I/O is charged to a thread-local
        :class:`IOStats` override for the duration of the query.  The
        execution span is measured on ``time.monotonic`` so spans from
        inline slots and process workers are directly comparable.
        """
        limit = self.config.max_result_rows
        if request.limit is not None:
            limit = min(limit, request.limit)
        if self._pool is not None:
            payload = (
                request.pattern,
                request.optimizer,
                limit,
                request.row_limit,
                None,
                timeout_s,
            )
            columns, rows, truncated, stop_reason, counts, span = (
                self._pool.submit_query(payload).result()
            )
            hits, misses, _evictions = counts
            lookups = hits + misses
            return {
                "columns": columns,
                "rows": rows,
                "truncated": truncated,
                "stop_reason": stop_reason,
                "exec_s": span[1] - span[0],
                "exec_span": span,
                "cache_hits": hits,
                "cache_misses": misses,
                "cache_hit_rate": hits / lookups if lookups else 0.0,
            }
        started = time.monotonic()
        with use_stats(IOStats()):
            stream = self.engine.match_iter(
                request.pattern,
                optimizer=request.optimizer,
                limit=limit,
                row_limit=request.row_limit,
                timeout=timeout_s,
            )
            try:
                rows = list(stream)
            finally:
                stream.close()
        ended = time.monotonic()
        cache = stream.metrics.center_cache
        hits = cache.hits if cache is not None else 0
        misses = cache.misses if cache is not None else 0
        return {
            "columns": stream.columns,
            "rows": rows,
            "truncated": stream.metrics.truncated,
            "stop_reason": stream.metrics.stop_reason,
            "exec_s": ended - started,
            "exec_span": (started, ended),
            "cache_hits": hits,
            "cache_misses": misses,
            "cache_hit_rate": cache.hit_rate if cache is not None else 0.0,
        }


# ----------------------------------------------------------------------
# embedding: run the service on a background thread (tests, harness)
# ----------------------------------------------------------------------
class ServiceHandle:
    """A running service on its own event-loop thread."""

    def __init__(
        self,
        service: QueryService,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self.service = service
        self._loop = loop
        self._thread = thread

    @property
    def address(self) -> Tuple[str, int]:
        return self.service.address

    def stop(self) -> None:
        """Stop the service and join its thread (idempotent)."""
        if not self._thread.is_alive():
            return
        asyncio.run_coroutine_threadsafe(self.service.stop(), self._loop).result(
            timeout=30
        )
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def start_in_thread(
    engine: GraphEngine, config: Optional[ServiceConfig] = None
) -> ServiceHandle:
    """Start a :class:`QueryService` on a daemon thread and wait for bind."""
    ready = threading.Event()
    holder: Dict[str, Any] = {}

    def runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        service = QueryService(engine, config)
        try:
            loop.run_until_complete(service.start())
        except Exception as err:  # noqa: BLE001 - surface bind failures
            holder["error"] = err
            ready.set()
            loop.close()
            return
        holder["service"] = service
        holder["loop"] = loop
        ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    thread = threading.Thread(target=runner, name="repro-service", daemon=True)
    thread.start()
    ready.wait(timeout=30)
    if "error" in holder:
        raise holder["error"]
    return ServiceHandle(holder["service"], holder["loop"], thread)
