"""Benchmark workloads: Figure 4 pattern shapes and the experiment runner."""

from .patterns import CYCLIC_SHAPES, PatternFactory
from .runner import (
    ExperimentRecord,
    band_validator,
    row_limit_validator,
    check_agreement,
    format_records,
    run_igmj,
    run_rjoin,
    run_tsd,
)

__all__ = [
    "CYCLIC_SHAPES",
    "PatternFactory",
    "ExperimentRecord",
    "band_validator",
    "row_limit_validator",
    "check_agreement",
    "format_records",
    "run_igmj",
    "run_rjoin",
    "run_tsd",
]
