"""Experiment runner: execute one pattern on every competitor, uniformly.

The benchmark harness (benchmarks/) and EXPERIMENTS.md generation both
drive competitors through these helpers so that all engines are measured
the same way: elapsed seconds include optimization + execution (the paper
reports "both query optimization time and query processing time"), and
result counts are cross-checked whenever two engines run the same query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..baselines.igmj import IGMJEngine
from ..baselines.twigstackd import TwigStackD
from ..query.algebra import RowLimitExceeded
from ..query.engine import GraphEngine
from ..query.pattern import GraphPattern


# Modeled latency of one physical page transfer on the paper's hardware
# (a 2006 desktop disk: ~5 ms average random service time).  Our storage
# engine counts page transfers but does not sleep for them, so CPU-bound
# Python wall-clock alone understates I/O-heavy competitors; the modeled
# time  wall + physical_io * MODELED_IO_SECONDS  restores the paper's
# I/O-dominated regime for cross-engine comparison.
MODELED_IO_SECONDS = 0.005


@dataclass
class ExperimentRecord:
    """One (engine, query) measurement."""

    engine: str
    query: str
    elapsed_seconds: float
    result_rows: int
    physical_io: int = 0
    logical_io: int = 0
    extra: Optional[Dict[str, float]] = None

    @property
    def modeled_seconds(self) -> float:
        """Wall-clock plus modeled disk latency for counted physical I/O."""
        return self.elapsed_seconds + self.physical_io * MODELED_IO_SECONDS


def run_rjoin(
    engine: GraphEngine, name: str, pattern: GraphPattern, optimizer: str
) -> ExperimentRecord:
    """Run DP or DPS (per *optimizer*) and record metrics."""
    result = engine.match(pattern, optimizer=optimizer)
    return ExperimentRecord(
        engine=optimizer.upper(),
        query=name,
        elapsed_seconds=result.metrics.elapsed_seconds,
        result_rows=len(result),
        physical_io=result.metrics.physical_io,
        logical_io=result.metrics.logical_io,
        extra={"peak_temporal_rows": result.metrics.peak_temporal_rows},
    )


def run_rjoin_streaming(
    engine: GraphEngine, name: str, pattern: GraphPattern, optimizer: str
) -> ExperimentRecord:
    """Run DP or DPS through the *streaming* driver and record metrics.

    Engine tag ``DP-S``/``DPS-S`` so :func:`check_agreement` cross-checks
    the drained row count against the materializing run of the same
    query.  The per-operator metrics come from the
    :class:`~repro.query.StreamingResult`, which the physical-operator
    layer prices identically to the materializing driver (minus the
    temporal-table I/O it never performs).
    """
    engine.db.reset_counters()
    stream = engine.match_iter(pattern, optimizer=optimizer)
    rows = sum(1 for _ in stream)
    metrics = stream.metrics
    return ExperimentRecord(
        engine=f"{optimizer.upper()}-S",
        query=name,
        elapsed_seconds=metrics.elapsed_seconds,
        result_rows=rows,
        physical_io=metrics.physical_io,
        logical_io=metrics.logical_io,
        extra={"peak_temporal_rows": metrics.peak_temporal_rows},
    )


def run_tsd(tsd: TwigStackD, name: str, pattern: GraphPattern) -> ExperimentRecord:
    rows, metrics = tsd.match(pattern)
    return ExperimentRecord(
        engine="TSD",
        query=name,
        elapsed_seconds=metrics.elapsed_seconds,
        result_rows=len(rows),
        extra={
            "buffered_nodes": metrics.buffered_nodes,
            "closure_probes": metrics.closure_probes,
        },
    )


def run_igmj(igmj: IGMJEngine, name: str, pattern: GraphPattern) -> ExperimentRecord:
    rows, metrics = igmj.match(pattern)
    return ExperimentRecord(
        engine="INT-DP",
        query=name,
        elapsed_seconds=metrics.elapsed_seconds,
        result_rows=len(rows),
        physical_io=metrics.io.total_io() if metrics.io else 0,
        logical_io=metrics.io.logical_reads if metrics.io else 0,
        extra={"sorts": metrics.sorts, "sorted_entries": metrics.sorted_entries},
    )


def format_records(records: Sequence[ExperimentRecord]) -> str:
    """Plain-text table, one row per (engine, query) measurement."""
    header = f"{'query':<12} {'engine':<8} {'rows':>10} {'elapsed(s)':>12} " \
             f"{'phys I/O':>10} {'logical I/O':>12} {'modeled(s)':>12}"
    lines = [header, "-" * len(header)]
    for rec in records:
        lines.append(
            f"{rec.query:<12} {rec.engine:<8} {rec.result_rows:>10} "
            f"{rec.elapsed_seconds:>12.4f} {rec.physical_io:>10} "
            f"{rec.logical_io:>12} {rec.modeled_seconds:>12.4f}"
        )
    return "\n".join(lines)


def check_agreement(records: Iterable[ExperimentRecord]) -> List[str]:
    """Row-count cross-check per query across engines.

    Returns a list of human-readable mismatch descriptions (empty = all
    engines agree) — benchmarks assert on this so a performance number is
    never reported off an incorrect answer.
    """
    by_query: Dict[str, Dict[str, int]] = {}
    for rec in records:
        by_query.setdefault(rec.query, {})[rec.engine] = rec.result_rows
    mismatches = []
    for query, counts in sorted(by_query.items()):
        if len(set(counts.values())) > 1:
            mismatches.append(f"{query}: {counts}")
    return mismatches


def band_validator(engine: GraphEngine, lower: int, upper: int):
    """A PatternFactory validator selecting the *heavy-intermediate* regime.

    Accepts a pattern only if its DPS execution peaks between *lower* and
    *upper* temporal rows.  This is the regime the paper's Figure 6 lives
    in (queries running tens of seconds on 1.7M-node graphs): large
    intermediates are exactly where interleaved R-semijoins pay off, so a
    reproduction of the "DP spends over five times the I/O" claim must
    sample from it rather than from quick lookups.
    """

    def validate(pattern: GraphPattern) -> bool:
        try:
            result = engine.match(pattern, optimizer="dps", row_limit=upper)
        except RowLimitExceeded:
            return False
        return result.metrics.peak_temporal_rows >= lower

    return validate


def row_limit_validator(engine: GraphEngine, row_limit: int = 200_000):
    """A PatternFactory validator: accept a pattern only if executing it
    keeps every intermediate below *row_limit* rows.

    Statistics-based screening (Eq. 10-12 style estimates) assumes
    independence and misses skew-driven blowups; this runs the actual DPS
    plan under the executor's row-limit guard, so accepted workload
    patterns are guaranteed benchmark-safe.
    """

    def validate(pattern: GraphPattern) -> bool:
        try:
            engine.match(pattern, optimizer="dps", row_limit=row_limit)
            return True
        except RowLimitExceeded:
            return False

    return validate
