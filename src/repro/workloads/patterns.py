"""Workload generator: the Figure 4 pattern shapes over a dataset.

The paper's evaluation queries (Figure 4) come in three families:

* nine *path* patterns — P1-P3 with 3 nodes, P4-P6 with 4, P7-P9 with 5;
* nine *tree* patterns — T1-T3 (3-node), T4-T6 (4-node), T7-T9 (5-node);
* general *graph* patterns Q1-Q5 at |V_q| = 4 and 5 (shapes with shared
  descendants/ancestors — diamonds, fans and their 5-node extensions),
  used in Figures 6 and 7.

The exact label assignments in the paper are not published, only the
shapes; Section 6.2 says the authors "enumerat[ed] all possible patterns
with different labels".  :class:`PatternFactory` reconstructs that: given
a dataset's catalog it assigns labels to a shape by walking the *label
graph* (label pairs whose estimated base R-join is non-empty), using
rejection sampling so generated patterns are satisfiable-by-estimate and
therefore exercise real join work rather than empty scans.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..db.catalog import Catalog
from ..query.pattern import GraphPattern

Shape = Tuple[Tuple[int, int], ...]  # edges over variable indexes 0..k-1

# --- the Figure 4 shape catalog (edges over k variable slots) -----------
PATH_3: Shape = ((0, 1), (1, 2))
PATH_4: Shape = ((0, 1), (1, 2), (2, 3))
PATH_5: Shape = ((0, 1), (1, 2), (2, 3), (3, 4))

TREE_3: Shape = ((0, 1), (0, 2))                       # Fig. 4(d): root + 2
TREE_4_STAR: Shape = ((0, 1), (0, 2), (0, 3))          # Fig. 4(j): root + 3
TREE_4_DEEP: Shape = ((0, 1), (0, 2), (1, 3))          # Fig. 4(k): mixed depth
TREE_5: Shape = ((0, 1), (0, 2), (1, 3), (1, 4))       # Fig. 4(l): 5 nodes

DIAMOND_4: Shape = ((0, 1), (0, 2), (1, 3), (2, 3))    # shared descendant
FAN_IN_4: Shape = ((0, 2), (1, 2), (2, 3))             # Fig. 1(b)-like core
CROSS_4: Shape = ((0, 1), (0, 2), (1, 3), (2, 3), (0, 3))
DIAMOND_5: Shape = ((0, 1), (0, 2), (1, 3), (2, 3), (3, 4))
FAN_IN_5: Shape = ((0, 2), (1, 2), (2, 3), (2, 4))
DOUBLE_5: Shape = ((0, 1), (0, 2), (1, 3), (2, 3), (1, 4), (2, 4))

GRAPH_SHAPES_4: Tuple[Shape, ...] = (DIAMOND_4, FAN_IN_4, CROSS_4, DIAMOND_4, FAN_IN_4)
GRAPH_SHAPES_5: Tuple[Shape, ...] = (DIAMOND_5, FAN_IN_5, DOUBLE_5, DIAMOND_5, FAN_IN_5)

# --- cyclic shapes (join graph has cycle rank > 0) -----------------------
# These are the worst-case-optimal workload: left-deep plans must
# materialize a binary join before the closing condition prunes it, while
# the multiway path intersects all constraints per variable.  (DIAMOND_4,
# CROSS_4 and DOUBLE_5 above are cyclic too and ride along in
# ``cyclic_patterns``.)
TRIANGLE: Shape = ((0, 1), (0, 2), (1, 2))
CLIQUE_4: Shape = ((0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3))
TRIANGLE_TAIL: Shape = ((0, 1), (0, 2), (1, 2), (2, 3))  # cycle-with-tail

CYCLIC_SHAPES: Dict[str, Shape] = {
    "triangle": TRIANGLE,
    "diamond": DIAMOND_4,
    "clique4": CLIQUE_4,
    "cycle-tail": TRIANGLE_TAIL,
    "cross": CROSS_4,
    "double-diamond": DOUBLE_5,
}


class PatternFactory:
    """Assigns satisfiable-by-estimate labels to Figure 4 shapes."""

    def __init__(
        self,
        catalog: Catalog,
        seed: int = 11,
        attempts: int = 400,
        max_edge_estimate: int = 150_000,
        max_result_estimate: int = 50_000,
        validator: Optional[Callable[[GraphPattern], bool]] = None,
        validated_attempts: int = 12,
        min_selective_edges: int = 1,
    ) -> None:
        self.catalog = catalog
        self.rng = random.Random(seed)
        self.attempts = attempts
        self.max_edge_estimate = max_edge_estimate
        self.max_result_estimate = max_result_estimate
        self.validator = validator
        self.validated_attempts = validated_attempts
        self.min_selective_edges = min_selective_edges
        self.labels = sorted(
            label for label, size in catalog.extent_sizes.items() if size > 0
        )
        # successors[x] = labels y with a non-empty estimated R-join x -> y
        self.successors: Dict[str, List[str]] = {label: [] for label in self.labels}
        self.predecessors: Dict[str, List[str]] = {label: [] for label in self.labels}
        for (x_label, y_label), stats in catalog.all_pairs().items():
            if stats.pair_estimate > 0:
                self.successors[x_label].append(y_label)
                self.predecessors[y_label].append(x_label)

    # ------------------------------------------------------------------
    def _estimate_result(self, assignment: Sequence[str], shape: Shape) -> float:
        """Rough pattern-result cardinality, Eq. 10/11-style.

        Chains the shape's edges in declaration order: the first edge
        contributes its base join size; an edge binding a new slot
        multiplies by its per-tuple fan-out (Eq. 11/12); an edge between
        two bound slots multiplies by its selectivity (Eq. 10).
        """
        rows = 0.0
        bound: set = set()
        for a, b in shape:
            x_label, y_label = assignment[a], assignment[b]
            join = self.catalog.join_size(x_label, y_label)
            if not bound:
                rows = float(join)
                bound.update((a, b))
            elif a in bound and b in bound:
                rows *= self.catalog.join_selectivity(x_label, y_label)
            elif a in bound:
                rows *= self.catalog.reduction_factor(x_label, y_label)
                bound.add(b)
            else:
                size = self.catalog.extent_size(y_label)
                rows *= join / size if size else 0.0
                bound.add(a)
        return rows

    def _selective_edges(self, assignment: Sequence[str], shape: Shape) -> int:
        """Edges whose semijoin would prune a real fraction of tuples.

        The paper's workloads clearly contain selective reachability
        conditions (their queries run for tens of seconds and R-semijoins
        pay off); purely hierarchy-following conditions on XMark have
        survival ≈ 1 and make every optimizer look identical.  An edge
        counts as selective when either side's semijoin survival is below
        0.6.
        """
        count = 0
        for a, b in shape:
            x_label, y_label = assignment[a], assignment[b]
            forward = self.catalog.semijoin_survival(x_label, y_label)
            size = self.catalog.extent_size(y_label)
            backward = (
                min(1.0, self.catalog.join_size(x_label, y_label) / size)
                if size
                else 0.0
            )
            if forward <= 0.6 or backward <= 0.6:
                count += 1
        return count

    def _score(
        self, assignment: Sequence[str], shape: Shape
    ) -> Tuple[int, int, int, int]:
        """(satisfiable, within-caps, selective-edges, min estimate).

        Lexicographic quality: satisfiable means every edge has a
        non-zero estimated base join; within-caps rejects degenerate
        assignments whose largest edge or whose estimated full result
        would blow up the intermediates (e.g. a 6-row ``regions`` extent
        fanning out to the whole document); selective-edges (capped at 2)
        prefers workloads where R-semijoins have something to prune.
        """
        estimates = [
            self.catalog.join_size(assignment[a], assignment[b]) for a, b in shape
        ]
        low, high = min(estimates), max(estimates)
        within = (
            high <= self.max_edge_estimate
            and self._estimate_result(assignment, shape) <= self.max_result_estimate
        )
        selective = min(2, self._selective_edges(assignment, shape))
        return (int(low > 0), int(within), selective, low)

    def instantiate(self, shape: Shape, name_prefix: str = "v") -> GraphPattern:
        """Label a shape; keeps the best-scoring assignment found.

        Variables get distinct names ``v0..v(k-1)`` so one label may
        appear several times in a pattern (as in real workloads where
        e.g. two ``person`` variables are related through an auction).

        Statistics-based caps alone cannot catch every skew-driven blowup
        (the Eq. 10-12 estimates assume independence), so when a
        ``validator`` is configured, estimate-passing candidates are also
        *executed* under a row-limit guard; up to ``validated_attempts``
        candidates are tried before falling back to the best
        estimate-passing assignment.
        """
        k = 1 + max(max(a, b) for a, b in shape)

        def build(assignment: Sequence[str]) -> GraphPattern:
            nodes = {f"{name_prefix}{i}": label for i, label in enumerate(assignment)}
            edges = [(f"{name_prefix}{a}", f"{name_prefix}{b}") for a, b in shape]
            return GraphPattern.build(nodes, edges)

        best: Optional[List[str]] = None
        best_score = (-1, -1, -1, -1)
        accept = (1, 1, min(2, self.min_selective_edges), 1)
        validations_left = self.validated_attempts
        for _ in range(self.attempts):
            assignment = self._sample_assignment(shape, k)
            if assignment is None:
                continue
            score = self._score(assignment, shape)
            if score >= accept and self.validator is not None and validations_left:
                validations_left -= 1
                if self.validator(build(assignment)):
                    return build(assignment)
                continue  # estimate lied; keep sampling
            if score > best_score:
                best, best_score = assignment, score
                if score >= accept and self.validator is None:
                    break
        if best is None:
            raise ValueError(
                "could not label the shape; the dataset's label graph is too sparse"
            )
        return build(best)

    def _sample_assignment(self, shape: Shape, k: int) -> Optional[List[str]]:
        """Greedy constrained sampling along the shape's edges."""
        assignment: List[Optional[str]] = [None] * k
        order = list(shape)
        self.rng.shuffle(order)
        for a, b in order:
            if assignment[a] is None and assignment[b] is None:
                label = self.rng.choice(self.labels)
                succs = self.successors.get(label, [])
                if not succs:
                    return None
                assignment[a] = label
                assignment[b] = self.rng.choice(succs)
            elif assignment[a] is None:
                preds = self.predecessors.get(assignment[b], [])
                if not preds:
                    return None
                assignment[a] = self.rng.choice(preds)
            elif assignment[b] is None:
                succs = self.successors.get(assignment[a], [])
                if not succs:
                    return None
                assignment[b] = self.rng.choice(succs)
        for i in range(k):
            if assignment[i] is None:  # isolated slot cannot occur in our shapes
                assignment[i] = self.rng.choice(self.labels)
        return assignment  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # the named Figure 4 workloads
    # ------------------------------------------------------------------
    def figure4_paths(self) -> Dict[str, GraphPattern]:
        """P1-P9: three patterns per path length 3, 4 and 5."""
        shapes = [PATH_3] * 3 + [PATH_4] * 3 + [PATH_5] * 3
        return {
            f"P{i + 1}": self.instantiate(shape) for i, shape in enumerate(shapes)
        }

    def figure4_trees(self) -> Dict[str, GraphPattern]:
        """T1-T9: three 3-node, three 4-node and three 5-node trees."""
        shapes = [TREE_3] * 3 + [TREE_4_STAR, TREE_4_DEEP, TREE_4_DEEP] + [TREE_5] * 3
        return {
            f"T{i + 1}": self.instantiate(shape) for i, shape in enumerate(shapes)
        }

    def figure4_queries(self, size: int) -> Dict[str, GraphPattern]:
        """Q1-Q5 graph patterns with |V_q| = 4 or 5 (Figures 6 and 7)."""
        if size == 4:
            shapes = GRAPH_SHAPES_4
        elif size == 5:
            shapes = GRAPH_SHAPES_5
        else:
            raise ValueError("the paper's Q workloads use |V_q| in {4, 5}")
        return {
            f"Q{i + 1}": self.instantiate(shape) for i, shape in enumerate(shapes)
        }

    def scalability_patterns(self) -> Dict[str, GraphPattern]:
        """The three Figure 7 shapes: a path (4a), a tree (4d), a graph (4i)."""
        return {
            "fig4a-path": self.instantiate(PATH_3),
            "fig4d-tree": self.instantiate(TREE_3),
            "fig4i-graph": self.instantiate(FAN_IN_5),
        }

    def cyclic_patterns(
        self, shapes: Optional[Sequence[str]] = None
    ) -> Dict[str, GraphPattern]:
        """The cyclic workload: triangle, diamond, 4-clique, cycle-with-tail.

        Label assignment reuses the same rejection sampling as the
        Figure 4 workloads, so the factory's knobs (``seed``,
        ``max_edge_estimate``/``max_result_estimate`` caps,
        ``min_selective_edges``, the execution ``validator``) tune label
        choice and selectivity here exactly as there.  *shapes* selects a
        subset of :data:`CYCLIC_SHAPES` by name (default: all of them —
        the four canonical cyclic cores plus the cyclic Figure 4 graph
        shapes ``cross`` and ``double-diamond``).
        """
        selected = shapes if shapes is not None else tuple(CYCLIC_SHAPES)
        patterns: Dict[str, GraphPattern] = {}
        for name in selected:
            try:
                shape = CYCLIC_SHAPES[name]
            except KeyError:
                raise ValueError(
                    f"unknown cyclic shape {name!r}; "
                    f"choose from {sorted(CYCLIC_SHAPES)}"
                ) from None
            patterns[name] = self.instantiate(shape)
        return patterns
