"""Command-line interface: build, persist, query and inspect graph databases.

Usage (also via ``python -m repro``)::

    repro build --factor 0.2 --out auctions.db.json     # offline phase
    repro stats auctions.db.json                         # Table 2-style row
    repro query auctions.db.json "person -> watch, watch -> open_auction"
    repro query auctions.db.json "A -> B" --explain --optimizer dp
    repro query auctions.db.json "A -> B" --limit 5      # streamed probe
    repro snapshot save auctions.db.json auctions.snap   # binary snapshot
    repro snapshot load auctions.snap                    # timed reload
    repro snapshot info auctions.snap                    # header + sections
    repro serve auctions.snap --port 7437                # always-on service
    repro bench --budget 800                             # mini comparison

The CLI wraps the library's public API one-to-one; anything it prints can
be reproduced programmatically with :class:`repro.GraphEngine`.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from . import xmark
from .db.persist import load_database, save_database
from .query.engine import GraphEngine
from .workloads.runner import format_records, run_igmj, run_rjoin, run_tsd


def _cmd_build(args: argparse.Namespace) -> int:
    started = time.perf_counter()
    if args.nodes or args.edges:
        if not (args.nodes and args.edges):
            print("--nodes and --edges must be given together", file=sys.stderr)
            return 2
        from .graph.io import load_edge_list

        graph = load_edge_list(args.nodes, args.edges)
        print(f"loaded graph from {args.nodes} + {args.edges}: "
              f"{graph.node_count} nodes, {graph.edge_count} edges, "
              f"{len(graph.alphabet())} labels")
    else:
        if args.dataset:
            data = xmark.dataset(
                args.dataset, entity_budget=args.budget, seed=args.seed
            )
        else:
            data = xmark.generate(
                factor=args.factor, entity_budget=args.budget, seed=args.seed
            )
        graph = data.graph
        print(f"generated XMark-like graph: {graph.node_count} nodes, "
              f"{graph.edge_count} edges, {len(graph.alphabet())} labels")
    labeling = None
    if args.workers is not None and args.workers > 1:
        from .labeling.twohop import build_two_hop

        label_started = time.perf_counter()
        labeling = build_two_hop(
            graph, workers=args.workers, backend=args.parallel_backend
        )
        print(f"2-hop labeling built with {args.workers} workers "
              f"({time.perf_counter() - label_started:.2f}s)")
    engine = GraphEngine(graph, labeling=labeling)
    summary = engine.stats_summary()
    print(f"2-hop cover: |H|={summary['cover_size']} "
          f"(|H|/|V|={summary['cover_ratio']:.3f})")
    save_database(engine.db, args.out)
    print(f"saved database to {args.out} "
          f"({time.perf_counter() - started:.2f}s total)")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    engine = GraphEngine.from_database(load_database(args.database))
    summary = engine.stats_summary()
    print(f"{'nodes':>12}: {summary['nodes']}")
    print(f"{'edges':>12}: {summary['edges']}")
    print(f"{'|H|':>12}: {summary['cover_size']}")
    print(f"{'|H|/|V|':>12}: {summary['cover_ratio']:.3f}")
    print(f"{'centers':>12}: {summary['centers']}")
    print(f"{'labels':>12}: {len(engine.db.labels())}")
    if args.labels:
        print("\nextent sizes:")
        catalog = engine.db.catalog
        for label in engine.db.labels():
            print(f"  {label:>20}: {catalog.extent_size(label)}")
    if args.storage:
        print("\nstorage footprint:")
        for name, info in engine.db.storage_report().items():
            print(f"  {name:>24}: {info['rows']:>8} rows {info['pages']:>6} pages")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from .query import DEFAULT_CACHE_BYTES

    engine = GraphEngine.from_database(
        load_database(args.database),
        cache_bytes=0 if args.no_center_cache else DEFAULT_CACHE_BYTES,
        workers=args.workers,
        parallel_backend=args.parallel_backend,
    )
    if args.explain:
        print(engine.explain(args.pattern, optimizer=args.optimizer))
        return 0
    try:
        if args.limit is not None:
            count = 0
            for row in engine.match_iter(
                args.pattern, optimizer=args.optimizer, limit=args.limit,
                row_limit=args.row_limit, verify=args.verify,
                batch_size=args.batch_size,
            ):
                print("\t".join(str(v) for v in row))
                count += 1
            print(f"-- {count} row(s) (limit {args.limit}, streamed)",
                  file=sys.stderr)
            return 0
        result = engine.match(
            args.pattern, optimizer=args.optimizer,
            row_limit=args.row_limit, verify=args.verify,
            batch_size=args.batch_size,
        )
    finally:
        engine.close_pool()
    print("\t".join(result.columns))
    shown = result.rows if args.all else result.rows[:args.head]
    for row in shown:
        print("\t".join(str(v) for v in row))
    if not args.all and len(result) > args.head:
        print(f"... ({len(result) - args.head} more rows; use --all)",
              file=sys.stderr)
    metrics = result.metrics
    print(
        f"-- {len(result)} row(s) in {metrics.elapsed_seconds * 1e3:.1f} ms, "
        f"{metrics.physical_io} physical / {metrics.logical_io} logical page I/O",
        file=sys.stderr,
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .baselines.igmj import IGMJEngine
    from .baselines.twigstackd import TwigStackD
    from .workloads.patterns import PatternFactory
    from .workloads.runner import check_agreement

    data = xmark.generate(
        factor=0.3, entity_budget=args.budget, seed=args.seed,
        watches_per_person=0.0, catgraph_edges_per_category=0.0,
    )
    graph = data.graph
    print(f"DAG dataset: {graph.node_count} nodes, {graph.edge_count} edges")
    engine = GraphEngine(graph)
    tsd = TwigStackD(graph)
    igmj = IGMJEngine(graph)
    factory = PatternFactory(engine.db.catalog, seed=args.seed + 4)

    records = []
    workload = dict(list(factory.figure4_paths().items())[: args.queries])
    for name, pattern in workload.items():
        records.append(run_tsd(tsd, name, pattern))
        records.append(run_igmj(igmj, name, pattern))
        records.append(run_rjoin(engine, name, pattern, "dp"))
        records.append(run_rjoin(engine, name, pattern, "dps"))
    mismatches = check_agreement(records)
    if mismatches:
        print(f"ENGINE DISAGREEMENT: {mismatches}", file=sys.stderr)
        return 1
    print(format_records(records))
    print("all engines agree on every query")
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from .storage.snapshot import Snapshot, SnapshotError

    if args.action == "save":
        db = load_database(args.source)
        started = time.perf_counter()
        save_database(db, args.out, format="snapshot")
        elapsed = (time.perf_counter() - started) * 1e3
        with_snapshot = Snapshot.open(args.out)
        try:
            print(f"wrote {args.out}: {with_snapshot.file_size()} bytes "
                  f"in {elapsed:.1f} ms "
                  f"({with_snapshot.node_count} nodes, "
                  f"{with_snapshot.center_count} centers, "
                  f"{len(with_snapshot.section_table())} sections)")
        finally:
            with_snapshot.close()
        return 0

    if args.action == "load":
        started = time.perf_counter()
        try:
            engine = GraphEngine.from_snapshot(args.file)
        except SnapshotError as exc:
            print(f"snapshot error: {exc}", file=sys.stderr)
            return 1
        elapsed = (time.perf_counter() - started) * 1e3
        db = engine.db
        print(f"loaded {args.file} in {elapsed:.1f} ms")
        print(f"{'nodes':>12}: {db.graph.node_count}")
        print(f"{'edges':>12}: {db.graph.edge_count}")
        print(f"{'centers':>12}: {db.join_index.center_count}")
        print(f"{'labels':>12}: {len(db.labels())}")
        return 0

    # info
    try:
        snapshot = Snapshot.open(args.file)
    except SnapshotError as exc:
        print(f"snapshot error: {exc}", file=sys.stderr)
        return 1
    try:
        layout = "raw runs (view-capable)" if snapshot.raw_runs else "delta runs"
        print(
            f"{args.file}: snapshot v1, {snapshot.file_size()} bytes, {layout}"
        )
        print(f"{'nodes':>12}: {snapshot.node_count}")
        print(f"{'edges':>12}: {snapshot.edge_count}")
        print(f"{'labels':>12}: {snapshot.label_count}")
        print(f"{'centers':>12}: {snapshot.center_count}")
        print(f"{'W pairs':>12}: {snapshot.wtable_pair_count}")
        print(f"{'sub runs':>12}: {snapshot.subcluster_runs}")
        print("\nsection table:")
        print(f"  {'name':<12} {'offset':>10} {'bytes':>10}")
        for name, offset, length in snapshot.section_table():
            print(f"  {name:<12} {offset:>10} {length:>10}")
    finally:
        snapshot.close()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .query import DEFAULT_CACHE_BYTES
    from .service import QueryService, ServiceConfig

    engine = GraphEngine.from_database(
        load_database(args.database),
        cache_bytes=0 if args.no_center_cache else DEFAULT_CACHE_BYTES,
        workers=args.workers,
        parallel_backend=args.parallel_backend,
        batch_size=args.batch_size,
    )
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        queue_depth=args.queue_depth,
        default_timeout_s=(
            args.default_timeout_ms / 1000.0
            if args.default_timeout_ms is not None else None
        ),
        max_result_rows=args.max_result_rows,
        dispatch=args.dispatch,
    )
    service = QueryService(engine, config)

    async def run() -> None:
        host, port = await service.start()
        print(f"serving {args.database} on {host}:{port} "
              f"(max_inflight={config.max_inflight}, "
              f"queue_depth={config.queue_depth}, "
              f"tier={service.tier}, dispatch={service.dispatch})",
              flush=True)
        try:
            await service.serve_forever()
        except asyncio.CancelledError:
            pass

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        engine.close_pool()
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from .analysis import (
        audit_database,
        audit_snapshot,
        check_plan,
        deep_check,
        errors,
        format_report,
        has_errors,
        lint_project,
    )
    from .storage.snapshot import is_snapshot

    if args.patterns and args.database is None:
        print("--pattern requires a database to plan against", file=sys.stderr)
        return 2
    if args.database is None and not (args.self_lint or args.deep):
        print("nothing to check: give a database, --self, and/or --deep",
              file=sys.stderr)
        return 2

    all_diags = []

    def section(title: str, diagnostics) -> None:
        all_diags.extend(diagnostics)
        print(f"== {title} ==")
        print(format_report(diagnostics) if diagnostics else "ok")

    if args.database is not None:
        if is_snapshot(args.database):
            # file-level checks first: CRC/geometry plus the decoded-column
            # invariants the lazy read path assumes (offline, no database)
            snapshot_diags = audit_snapshot(args.database)
            section(f"snapshotaudit {args.database}", snapshot_diags)
            if has_errors(snapshot_diags):
                # an unreadable or inconsistent file cannot back the
                # database-level passes; report what was found and stop
                error_count = len(errors(all_diags))
                warning_count = len(all_diags) - error_count
                print(
                    f"-- {error_count} error(s), {warning_count} warning(s)",
                    file=sys.stderr,
                )
                return 1
        engine = GraphEngine.from_database(load_database(args.database))
        section(
            f"indexaudit {args.database}",
            audit_database(
                engine.db,
                exact_threshold=args.exact_threshold,
                sample_rows=args.sample_rows,
                seed=args.seed,
            ),
        )
        optimizers = (
            ("dp", "dps", "wcoj") if args.optimizer == "all" else (args.optimizer,)
        )
        for text in args.patterns or ():
            for optimizer in optimizers:
                plan = engine.plan(text, optimizer=optimizer).plan
                section(
                    f"plancheck [{optimizer}] {text!r}",
                    check_plan(
                        plan, db=engine.db, source=f"plan[{optimizer}]"
                    ),
                )
    if args.self_lint:
        section("lint src/repro", lint_project())
    if args.deep:
        project, deep_diags = deep_check()
        section(
            f"deepcheck {project.package} "
            f"({len(project.functions)} functions, "
            f"{len(project.worker_roots)} worker roots)",
            deep_diags,
        )

    failed = has_errors(all_diags)
    error_count = len(errors(all_diags))
    warning_count = len(all_diags) - error_count
    print(f"-- {error_count} error(s), {warning_count} warning(s)",
          file=sys.stderr)

    if args.report:
        rule_counts: dict = {}
        for diag in all_diags:
            rule_counts[diag.rule] = rule_counts.get(diag.rule, 0) + 1
        payload = {
            "errors": error_count,
            "warnings": warning_count,
            "rules": dict(sorted(rule_counts.items())),
        }
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"rule-count report written to {args.report}", file=sys.stderr)
    return 1 if failed else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fast Graph Pattern Matching (ICDE 2008) — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_build = sub.add_parser("build", help="generate data + build + save a database")
    p_build.add_argument("--factor", type=float, default=0.2,
                         help="XMark scaling factor (default 0.2)")
    p_build.add_argument("--dataset", choices=sorted(xmark.DATASET_FACTORS),
                         help="use a named dataset of the benchmark ladder instead")
    p_build.add_argument("--budget", type=int, default=1500,
                         help="entity budget at factor 1.0 (default 1500)")
    p_build.add_argument("--seed", type=int, default=7)
    p_build.add_argument("--nodes", help="load a custom graph: nodes TSV (id<TAB>label)")
    p_build.add_argument("--edges", help="load a custom graph: edges TSV (src<TAB>dst)")
    p_build.add_argument("--workers", type=int, default=None,
                         help="parallelize the 2-hop labeling's candidate "
                              "BFS over this many workers (default: "
                              "sequential)")
    p_build.add_argument("--parallel-backend", choices=("process", "thread"),
                         default=None,
                         help="pool backend for --workers (default: process "
                              "where fork exists)")
    p_build.add_argument("--out", required=True,
                         help="output path (.snap writes a binary snapshot, "
                              "anything else JSON)")
    p_build.set_defaults(func=_cmd_build)

    p_stats = sub.add_parser("stats", help="show a saved database's statistics")
    p_stats.add_argument("database")
    p_stats.add_argument("--labels", action="store_true",
                         help="also list per-label extent sizes")
    p_stats.add_argument("--storage", action="store_true",
                         help="also show the page footprint per structure")
    p_stats.set_defaults(func=_cmd_stats)

    p_query = sub.add_parser("query", help="match a pattern against a database")
    p_query.add_argument("database")
    p_query.add_argument("pattern", help='e.g. "A -> B, B -> C" or "x:A -> y:B"')
    p_query.add_argument("--optimizer",
                         choices=("dp", "dps", "greedy", "wcoj", "auto"),
                         default="auto",
                         help="plan family: left-deep dp/dps/greedy, "
                              "multiway wcoj, or auto (cyclic join graph "
                              "-> wcoj, else dps; default)")
    p_query.add_argument("--explain", action="store_true",
                         help="print the plan instead of executing")
    p_query.add_argument("--limit", type=int, default=None,
                         help="stream at most N rows (pipelined execution)")
    p_query.add_argument("--row-limit", type=int, default=None,
                         help="abort if any intermediate exceeds N rows "
                              "(execution guard, either executor)")
    p_query.add_argument("--verify", action="store_true",
                         help="statically check the optimized plan before "
                              "executing (repro.analysis plan checker)")
    p_query.add_argument("--batch-size", type=int, default=None,
                         help="run Filter/Fetch through the vectorized batch "
                              "substrate in blocks of this size (>1; 0 forces "
                              "the scalar path, default scalar)")
    p_query.add_argument("--no-center-cache", action="store_true",
                         help="disable the cross-query center/subcluster "
                              "cache (batch mode only; ablation)")
    p_query.add_argument("--workers", type=int, default=None,
                         help="execute through the morsel-driven parallel "
                              "scheduler with this many workers (>1; "
                              "default sequential; rows are identical "
                              "either way)")
    p_query.add_argument("--parallel-backend",
                         choices=("process", "thread", "spawn"),
                         default=None,
                         help="pool backend for --workers (default: process "
                              "where fork exists)")
    p_query.add_argument("--head", type=int, default=20,
                         help="rows to print without --all (default 20)")
    p_query.add_argument("--all", action="store_true", help="print every row")
    p_query.set_defaults(func=_cmd_query)

    p_snapshot = sub.add_parser(
        "snapshot",
        help="binary snapshot tools: save, timed load, file inspection",
    )
    snap_sub = p_snapshot.add_subparsers(dest="action", required=True)
    p_snap_save = snap_sub.add_parser(
        "save", help="convert a saved database (either format) to a snapshot"
    )
    p_snap_save.add_argument("source", help="existing database file (.json or .snap)")
    p_snap_save.add_argument("out", help="output snapshot path")
    p_snap_save.set_defaults(func=_cmd_snapshot)
    p_snap_load = snap_sub.add_parser(
        "load", help="open a snapshot, report load time and structure sizes"
    )
    p_snap_load.add_argument("file")
    p_snap_load.set_defaults(func=_cmd_snapshot)
    p_snap_info = snap_sub.add_parser(
        "info", help="print a snapshot's header counters and section table"
    )
    p_snap_info.add_argument("file")
    p_snap_info.set_defaults(func=_cmd_snapshot)

    p_serve = sub.add_parser(
        "serve",
        help="always-on query service: share one engine across concurrent "
             "clients (line-delimited JSON over TCP)",
    )
    p_serve.add_argument("database", help="saved database (.json or .snap)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=7437,
                         help="TCP port (0 = ephemeral; default 7437)")
    p_serve.add_argument("--max-inflight", type=int, default=2,
                         help="concurrent query slots (default 2)")
    p_serve.add_argument("--queue-depth", type=int, default=16,
                         help="admission queue depth; arrivals beyond it "
                              "are shed with an 'overloaded' reject "
                              "(default 16)")
    p_serve.add_argument("--default-timeout-ms", type=float, default=None,
                         help="deadline for queries that carry no "
                              "timeout_ms (default: none)")
    p_serve.add_argument("--max-result-rows", type=int, default=1_000_000,
                         help="hard cap on rows returned per query")
    p_serve.add_argument("--dispatch",
                         choices=("auto", "inline", "process"),
                         default="auto",
                         help="query execution mode: 'inline' runs on the "
                              "slot threads; 'process' ships each admitted "
                              "query whole to a worker process (snapshot "
                              "databases only) so --max-inflight slots use "
                              "that many cores (default auto = inline)")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="engine default worker count for parallel "
                              "morsel execution (shared generation-keyed "
                              "pool; default sequential)")
    p_serve.add_argument("--parallel-backend",
                         choices=("process", "thread", "spawn"), default=None)
    p_serve.add_argument("--batch-size", type=int, default=None,
                         help="engine default batch size (vectorized "
                              "substrate; default scalar)")
    p_serve.add_argument("--no-center-cache", action="store_true",
                         help="disable the cross-query center/subcluster "
                              "cache (ablation)")
    p_serve.set_defaults(func=_cmd_serve)

    p_check = sub.add_parser(
        "check",
        help="static verification: index audit, plan checks, project lint, "
             "deep call-graph analysis",
    )
    p_check.add_argument("database", nargs="?",
                         help="saved database to audit (cover, W-table, B+-trees)")
    p_check.add_argument("--pattern", dest="patterns", action="append",
                         metavar="PATTERN",
                         help="also plancheck the optimizers' plans for this "
                              "pattern (repeatable)")
    p_check.add_argument("--optimizer",
                         choices=("dp", "dps", "greedy", "wcoj", "all"),
                         default="all",
                         help="which optimizer(s) to plancheck (default: dp+dps)")
    p_check.add_argument("--self", dest="self_lint", action="store_true",
                         help="lint the repro package's own source")
    p_check.add_argument("--deep", action="store_true",
                         help="run the whole-project call-graph analyzer "
                              "(worker races, cache-generation discipline, "
                              "mmap view lifetime)")
    p_check.add_argument("--report", metavar="PATH",
                         help="write a JSON per-rule diagnostic-count report "
                              "(CI artifact)")
    p_check.add_argument("--exact-threshold", type=int, default=300,
                         help="max nodes for the exact cover check (default 300)")
    p_check.add_argument("--sample-rows", type=int, default=32,
                         help="sampled reachability rows above the threshold")
    p_check.add_argument("--seed", type=int, default=0,
                         help="sampling seed for large-graph audits")
    p_check.set_defaults(func=_cmd_check)

    p_bench = sub.add_parser("bench", help="mini 4-engine comparison run")
    p_bench.add_argument("--budget", type=int, default=800)
    p_bench.add_argument("--seed", type=int, default=7)
    p_bench.add_argument("--queries", type=int, default=5,
                         help="number of path queries to run (default 5)")
    p_bench.set_defaults(func=_cmd_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    raise SystemExit(main())
