"""Relational tables over heap files, with optional primary B+-tree index.

Base tables follow the paper's node-oriented representation (Section 3):
for every label ``X`` there is a table ``T_X(X, X_in, X_out)`` whose rows
are ``(node_id, in_code, out_code)``, with a primary index on the node-id
column.  Temporal (intermediate) tables produced by R-joins reuse the same
class without an index.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

from .bptree import BPlusTree
from .buffer import BufferPool
from .heapfile import HeapFile


class SchemaError(ValueError):
    """Raised for column/row mismatches."""


class Table:
    """A named table with a fixed list of columns.

    Rows are tuples aligned with ``columns``.  If ``primary_key`` names a
    column, a unique B+-tree maps that column's value to the row's record
    id, and :meth:`fetch_by_key` performs an index lookup followed by one
    page fetch — the paper's primary-index access path.
    """

    def __init__(
        self,
        pool: BufferPool,
        name: str,
        columns: Sequence[str],
        primary_key: Optional[str] = None,
    ) -> None:
        if len(set(columns)) != len(columns):
            raise SchemaError(f"duplicate column names in {list(columns)}")
        self.pool = pool
        self.name = name
        self.columns: Tuple[str, ...] = tuple(columns)
        self.heap = HeapFile(pool, name=f"{name}.heap")
        self.primary_key = primary_key
        self._pk_position: Optional[int] = None
        self.pk_index: Optional[BPlusTree] = None
        if primary_key is not None:
            if primary_key not in self.columns:
                raise SchemaError(
                    f"primary key {primary_key!r} not among columns {self.columns}"
                )
            self._pk_position = self.columns.index(primary_key)
            self.pk_index = BPlusTree(pool, name=f"{name}.pk", unique=True)

    # ------------------------------------------------------------------
    def column_position(self, column: str) -> int:
        try:
            return self.columns.index(column)
        except ValueError:
            raise SchemaError(
                f"table {self.name!r} has no column {column!r}; "
                f"columns are {self.columns}"
            ) from None

    def insert(self, row: Sequence[Any]) -> None:
        if len(row) != len(self.columns):
            raise SchemaError(
                f"row of arity {len(row)} does not match "
                f"{len(self.columns)}-column table {self.name!r}"
            )
        row_tuple = tuple(row)
        rid = self.heap.append(row_tuple)
        if self.pk_index is not None:
            self.pk_index.insert(row_tuple[self._pk_position], rid)

    def insert_many(self, rows) -> None:
        for row in rows:
            self.insert(row)

    def scan(self) -> Iterator[Tuple[Any, ...]]:
        """Full scan, page by page through the buffer pool."""
        return self.heap.records()

    def fetch_by_key(self, key: Any) -> Optional[Tuple[Any, ...]]:
        """Primary-index point lookup; None if absent."""
        if self.pk_index is None:
            raise SchemaError(f"table {self.name!r} has no primary index")
        rid = self.pk_index.search(key)
        if rid is None:
            return None
        return self.heap.read(rid)

    def project(self, columns: Sequence[str]) -> List[Tuple[Any, ...]]:
        positions = [self.column_position(c) for c in columns]
        return [tuple(row[p] for p in positions) for row in self.scan()]

    # ------------------------------------------------------------------
    @property
    def page_count(self) -> int:
        return self.heap.page_count

    def __len__(self) -> int:
        return len(self.heap)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, columns={self.columns}, rows={len(self)})"
