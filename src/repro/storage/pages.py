"""Pages and the simulated disk.

The storage engine models a disk as a flat array of fixed-size pages.  A
:class:`Page` is a slotted container of Python records with a simulated
byte budget — records are not actually serialized, but each record is
charged an estimated on-disk size so that page counts (and therefore I/O
counts) track what a C++ implementation over 4 KiB pages would see.

The size model charges 4 bytes per int, 1 byte per character of a string,
and recursively sums containers, plus a small per-record slot overhead.
This is intentionally simple; what matters to the reproduction is that all
competitors are charged by the *same* model.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

DEFAULT_PAGE_SIZE = 4096
_SLOT_OVERHEAD = 8  # slot-directory entry + record header, in simulated bytes

RecordId = Tuple[int, int]  # (page_id, slot)


def record_size(record: Any) -> int:
    """Estimated serialized size of *record*, in bytes."""
    if record is None:
        return 1
    if isinstance(record, bool):
        return 1
    if isinstance(record, int):
        return 4
    if isinstance(record, float):
        return 8
    if isinstance(record, str):
        return len(record) + 1
    if isinstance(record, (bytes, bytearray)):
        return len(record)
    if isinstance(record, (tuple, list, set, frozenset)):
        return 4 + sum(record_size(item) for item in record)
    if isinstance(record, dict):
        return 4 + sum(record_size(k) + record_size(v) for k, v in record.items())
    raise TypeError(f"unsupported record component: {type(record).__name__}")


class PageFullError(RuntimeError):
    """Raised when a record does not fit in a page's remaining budget."""


class Page:
    """A slotted page holding whole records within a byte budget."""

    __slots__ = ("page_id", "capacity", "used", "records", "dirty")

    def __init__(self, page_id: int, capacity: int = DEFAULT_PAGE_SIZE) -> None:
        self.page_id = page_id
        self.capacity = capacity
        self.used = 0
        self.records: List[Any] = []
        self.dirty = False

    def free_space(self) -> int:
        return self.capacity - self.used

    def fits(self, record: Any) -> bool:
        return record_size(record) + _SLOT_OVERHEAD <= self.free_space()

    def append(self, record: Any) -> int:
        """Append *record*; returns the slot number.

        Oversized records (larger than a whole page) are still stored, one
        per page, so that callers never deadlock on a record that can never
        fit; the page simply reports itself full afterwards.
        """
        size = record_size(record) + _SLOT_OVERHEAD
        if self.records and size > self.free_space():
            raise PageFullError(
                f"record of {size}B does not fit in page {self.page_id} "
                f"({self.free_space()}B free)"
            )
        self.records.append(record)
        self.used += size
        self.dirty = True
        return len(self.records) - 1

    def get(self, slot: int) -> Any:
        return self.records[slot]

    def put(self, slot: int, record: Any) -> None:
        """Replace the record at *slot* in place, adjusting the budget."""
        old = self.records[slot]
        self.used += record_size(record) - record_size(old)
        self.records[slot] = record
        self.dirty = True

    def put_untracked(self, slot: int, record: Any) -> None:
        """Replace a record without re-measuring its size.

        For page types whose structure is governed by an external limit
        (B+-tree nodes split on fanout, one node per page), re-measuring
        the whole record on every update is pure overhead; the byte
        budget is irrelevant to their I/O behaviour.
        """
        self.records[slot] = record
        self.dirty = True

    def __len__(self) -> int:
        return len(self.records)


class DiskManager:
    """The simulated disk: allocates and stores pages by id.

    Reads and writes here represent *physical* I/O; the buffer pool is the
    only component that should call :meth:`read_page` / :meth:`write_page`.
    """

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        self.page_size = page_size
        self._pages: Dict[int, Page] = {}
        self._next_id = 0

    def allocate(self) -> Page:
        page = Page(self._next_id, self.page_size)
        self._pages[self._next_id] = page
        self._next_id += 1
        return page

    def read_page(self, page_id: int) -> Page:
        try:
            return self._pages[page_id]
        except KeyError:
            raise KeyError(f"page {page_id} was never allocated") from None

    def write_page(self, page: Page) -> None:
        self._pages[page.page_id] = page

    @property
    def page_count(self) -> int:
        return self._next_id
