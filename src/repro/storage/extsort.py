"""External merge sort over heap files.

INT-DP's defining cost is that "it needs to sort all D-labeled nodes in
T_R" before every R-join (paper Section 5.2), and at the paper's scale
those sorts are *external*: the temporal table exceeds the 1 MiB buffer.
This module implements the textbook two-phase external merge sort on the
simulated storage engine so that a sort is charged its honest page
traffic:

1. **run generation** — read the input heap file once, cutting it into
   sorted runs sized to the buffer budget, each written back as its own
   heap file;
2. **k-way merge** — stream all runs through a tournament (heapq) into
   the output file; when the number of runs exceeds the configured fan-in
   the merge cascades over multiple passes.

The returned :class:`SortStats` reports runs, passes and comparisons —
the quantities the INT-DP ablations plot.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional, Tuple

from .buffer import BufferPool
from .heapfile import HeapFile

_seq = itertools.count()


@dataclass
class SortStats:
    """What one external sort did."""

    input_records: int = 0
    runs: int = 0
    merge_passes: int = 0
    comparisons: int = 0


def _run_capacity(pool: BufferPool, avg_record_pages: float = 0.01) -> int:
    """Records per in-memory run: proportional to the buffer's frames.

    A frame holds roughly ``1 / avg_record_pages`` records; half the
    buffer is reserved for the output/merge side, textbook-style.
    """
    frames_for_run = max(1, pool.frame_count // 2)
    return max(16, int(frames_for_run / avg_record_pages))


def external_sort(
    pool: BufferPool,
    source: Iterable[Any],
    key: Optional[Callable[[Any], Any]] = None,
    fan_in: int = 8,
    run_records: Optional[int] = None,
) -> Tuple[HeapFile, SortStats]:
    """Sort *source* records into a new heap file on *pool*.

    ``key`` follows ``sorted``'s contract.  ``run_records`` overrides the
    buffer-derived run size (tests use tiny values to force real merges).
    Returns the sorted heap file plus :class:`SortStats`.
    """
    stats = SortStats()
    capacity = run_records if run_records is not None else _run_capacity(pool)
    if capacity < 1:
        raise ValueError("run_records must be positive")

    # phase 1: run generation
    runs: List[HeapFile] = []
    buffer: List[Any] = []

    def flush_run() -> None:
        if not buffer:
            return
        buffer.sort(key=key)
        run = HeapFile(pool, name=f"sortrun#{next(_seq)}")
        run.extend(buffer)
        runs.append(run)
        buffer.clear()

    for record in source:
        stats.input_records += 1
        buffer.append(record)
        if len(buffer) >= capacity:
            flush_run()
    flush_run()
    stats.runs = len(runs)

    if not runs:
        return HeapFile(pool, name=f"sorted#{next(_seq)}"), stats

    # phase 2: cascaded k-way merges
    while len(runs) > 1:
        stats.merge_passes += 1
        next_round: List[HeapFile] = []
        for start in range(0, len(runs), fan_in):
            group = runs[start:start + fan_in]
            if len(group) == 1:
                next_round.append(group[0])
                continue
            merged = HeapFile(pool, name=f"sortrun#{next(_seq)}")
            streams = [run.records() for run in group]
            if key is None:
                for record in heapq.merge(*streams):
                    stats.comparisons += 1
                    merged.append(record)
            else:
                for record in heapq.merge(*streams, key=key):
                    stats.comparisons += 1
                    merged.append(record)
            next_round.append(merged)
        runs = next_round

    result = runs[0]
    if stats.merge_passes == 0:
        # single run: it is already the sorted output
        return result, stats
    return result, stats
