"""Simulated storage engine: pages, buffer pool, heap files, B+-trees."""

from .buffer import DEFAULT_BUFFER_BYTES, BufferPool
from .extsort import SortStats, external_sort
from .bptree import BPlusTree
from .heapfile import HeapFile
from .pages import DEFAULT_PAGE_SIZE, DiskManager, Page, PageFullError, record_size
from .snapshot import (
    SNAPSHOT_MAGIC,
    Snapshot,
    SnapshotError,
    encode_snapshot,
    is_snapshot,
    write_snapshot,
)
from .stats import IOStats
from .table import SchemaError, Table

__all__ = [
    "SNAPSHOT_MAGIC",
    "Snapshot",
    "SnapshotError",
    "encode_snapshot",
    "is_snapshot",
    "write_snapshot",
    "DEFAULT_BUFFER_BYTES",
    "DEFAULT_PAGE_SIZE",
    "BufferPool",
    "SortStats",
    "external_sort",
    "BPlusTree",
    "HeapFile",
    "DiskManager",
    "Page",
    "PageFullError",
    "record_size",
    "IOStats",
    "SchemaError",
    "Table",
]
