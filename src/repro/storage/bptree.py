"""A B+-tree over the simulated page store.

Used for (1) the primary index of every base table (the paper assumes "the
X column is the primary key of the table ... we use the primary index built
on the base table"), (2) the W-table ("W-table can be stored on disk with a
B+-tree, and accessed by a pair of labels (X, Y), as a key"), and (3) the
cluster-based R-join index itself ("It is a B+-tree in which its non-leaf
blocks are used for finding a given center").

One tree node lives in one page, so every root-to-leaf descent costs a
page fetch per level through the buffer pool — matching the ``IO_B+``
lookup term of the cost model.  Keys may be ints, strings or tuples of
those; values are arbitrary records.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Iterator, List, Tuple

from .buffer import BufferPool

# node record layout inside its page:
#   leaf:     ["L", keys, values, next_leaf_page_id_or_-1]
#   internal: ["I", keys, child_page_ids]
_LEAF = "L"
_INTERNAL = "I"


class BPlusTree:
    """A B+-tree index with a configurable fanout.

    Parameters
    ----------
    pool:
        Buffer pool providing page storage and I/O accounting.
    name:
        Used to tally per-index lookup counts in the shared IOStats.
    fanout:
        Maximum number of keys per node before it splits.
    unique:
        When True, inserting an existing key overwrites its value;
        when False, values accumulate in per-key lists.
    """

    def __init__(
        self,
        pool: BufferPool,
        name: str = "index",
        fanout: int = 64,
        unique: bool = True,
    ) -> None:
        if fanout < 3:
            raise ValueError("fanout must be at least 3")
        self.pool = pool
        self.name = name
        self.fanout = fanout
        self.unique = unique
        self._size = 0
        self._height = 1
        root = self.pool.new_page()
        root.append([_LEAF, [], [], -1])
        self._root_id = root.page_id

    # ------------------------------------------------------------------
    # node helpers
    # ------------------------------------------------------------------
    def _load(self, page_id: int) -> Tuple[int, list]:
        page = self.pool.fetch(page_id)
        return page_id, page.get(0)

    def _store(self, page_id: int, node: list) -> None:
        # untracked: node layout is bounded by fanout, not by page bytes
        self.pool.fetch(page_id).put_untracked(0, node)

    def _new_node(self, node: list) -> int:
        page = self.pool.new_page()
        page.append(node)
        return page.page_id

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def _descend(self, key: Any) -> List[int]:
        """Page ids from root to the leaf that may hold *key*."""
        self.pool.stats.record_lookup(self.name)
        path = [self._root_id]
        _, node = self._load(self._root_id)
        while node[0] == _INTERNAL:
            keys, children = node[1], node[2]
            child = children[bisect.bisect_right(keys, key)]
            path.append(child)
            _, node = self._load(child)
        return path

    def search(self, key: Any, default: Any = None) -> Any:
        """Exact lookup; returns *default* when the key is absent."""
        leaf_id = self._descend(key)[-1]
        _, node = self._load(leaf_id)
        keys, values = node[1], node[2]
        pos = bisect.bisect_left(keys, key)
        if pos < len(keys) and keys[pos] == key:
            return values[pos]
        return default

    def __contains__(self, key: Any) -> bool:
        sentinel = object()
        return self.search(key, sentinel) is not sentinel

    def range_scan(
        self, lo: Any = None, hi: Any = None
    ) -> Iterator[Tuple[Any, Any]]:
        """Yield (key, value) pairs with ``lo <= key <= hi`` in key order."""
        if lo is None:
            leaf_id = self._leftmost_leaf()
        else:
            leaf_id = self._descend(lo)[-1]
        while leaf_id != -1:
            _, node = self._load(leaf_id)
            keys, values = node[1], node[2]
            start = 0 if lo is None else bisect.bisect_left(keys, lo)
            for pos in range(start, len(keys)):
                if hi is not None and keys[pos] > hi:
                    return
                yield keys[pos], values[pos]
            leaf_id = node[3]

    def items(self) -> Iterator[Tuple[Any, Any]]:
        return self.range_scan()

    def _leftmost_leaf(self) -> int:
        page_id, node = self._load(self._root_id)
        while node[0] == _INTERNAL:
            page_id = node[2][0]
            _, node = self._load(page_id)
        return page_id

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def insert(self, key: Any, value: Any) -> None:
        """Insert (or, for unique trees, upsert) a key/value pair."""
        path = self._descend(key)
        leaf_id = path[-1]
        _, node = self._load(leaf_id)
        keys, values = node[1], node[2]
        pos = bisect.bisect_left(keys, key)
        if pos < len(keys) and keys[pos] == key:
            if self.unique:
                values[pos] = value
            else:
                values[pos] = list(values[pos]) + [value]
                self._size += 1
            self._store(leaf_id, node)
            return
        keys.insert(pos, key)
        values.insert(pos, value if self.unique else [value])
        self._size += 1
        self._store(leaf_id, node)
        if len(keys) > self.fanout:
            self._split(path)

    def _split(self, path: List[int]) -> None:
        """Split the node at the end of *path*, propagating upward."""
        node_id = path[-1]
        _, node = self._load(node_id)
        mid = len(node[1]) // 2
        if node[0] == _LEAF:
            keys, values, next_leaf = node[1], node[2], node[3]
            right = [_LEAF, keys[mid:], values[mid:], next_leaf]
            right_id = self._new_node(right)
            node[1], node[2], node[3] = keys[:mid], values[:mid], right_id
            separator = right[1][0]
        else:
            keys, children = node[1], node[2]
            separator = keys[mid]
            right = [_INTERNAL, keys[mid + 1:], children[mid + 1:]]
            right_id = self._new_node(right)
            node[1], node[2] = keys[:mid], children[:mid + 1]
        self._store(node_id, node)

        if len(path) == 1:
            # the split node was the root: grow the tree by one level
            new_root = [_INTERNAL, [separator], [node_id, right_id]]
            self._root_id = self._new_node(new_root)
            self._height += 1
            return
        parent_id = path[-2]
        _, parent = self._load(parent_id)
        keys, children = parent[1], parent[2]
        pos = bisect.bisect_left(keys, separator)
        keys.insert(pos, separator)
        children.insert(pos + 1, right_id)
        self._store(parent_id, parent)
        if len(keys) > self.fanout:
            self._split(path[:-1])

    def bulk_load(self, items: Iterable[Tuple[Any, Any]]) -> None:
        """Insert many (key, value) pairs; input need not be sorted."""
        for key, value in items:
            self.insert(key, value)

    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        return self._height

    def __len__(self) -> int:
        return self._size
