"""I/O accounting for the simulated storage engine.

The paper's evaluation is dominated by disk I/O ("the I/O cost of DP
increases much faster than DPS does", Section 6.2), so the whole storage
substrate funnels its page traffic through one :class:`IOStats` object.
Every database, index and operator in the library shares the stats object
of its :class:`~repro.storage.buffer.BufferPool`, which makes statements
like "DP spends over five times the I/O cost of DPS" directly measurable.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional


@dataclass
class IOStats:
    """Counters for simulated physical and logical page traffic.

    Attributes
    ----------
    physical_reads / physical_writes:
        Pages actually moved between the simulated disk and the buffer
        pool (i.e. buffer misses / dirty evictions + flushes).
    logical_reads:
        Page requests served, hit or miss.
    index_lookups:
        Root-to-leaf descents in B+-trees, tallied per index name.
    """

    physical_reads: int = 0
    physical_writes: int = 0
    logical_reads: int = 0
    index_lookups: Dict[str, int] = field(default_factory=dict)

    def record_lookup(self, index_name: str) -> None:
        self.index_lookups[index_name] = self.index_lookups.get(index_name, 0) + 1

    @property
    def buffer_hits(self) -> int:
        return self.logical_reads - self.physical_reads

    @property
    def hit_ratio(self) -> float:
        if self.logical_reads == 0:
            return 1.0
        return self.buffer_hits / self.logical_reads

    def total_io(self) -> int:
        """Physical page transfers in both directions."""
        return self.physical_reads + self.physical_writes

    def reset(self) -> None:
        self.physical_reads = 0
        self.physical_writes = 0
        self.logical_reads = 0
        self.index_lookups.clear()

    def snapshot(self) -> "IOStats":
        """A frozen copy, for before/after deltas around a query."""
        return IOStats(
            physical_reads=self.physical_reads,
            physical_writes=self.physical_writes,
            logical_reads=self.logical_reads,
            index_lookups=dict(self.index_lookups),
        )

    def add(self, other: "IOStats") -> None:
        """Fold another counter set into this one.

        The parallel executor charges each worker's I/O against its own
        (forked or thread-shared) stats object and merges the per-worker
        deltas into the run's coordinator-side delta with this method, so
        ``RunMetrics.io`` covers the whole run under every backend.
        """
        self.physical_reads += other.physical_reads
        self.physical_writes += other.physical_writes
        self.logical_reads += other.logical_reads
        for name, count in other.index_lookups.items():
            self.index_lookups[name] = self.index_lookups.get(name, 0) + count

    def delta_since(self, earlier: "IOStats") -> "IOStats":
        return IOStats(
            physical_reads=self.physical_reads - earlier.physical_reads,
            physical_writes=self.physical_writes - earlier.physical_writes,
            logical_reads=self.logical_reads - earlier.logical_reads,
            index_lookups={
                name: count - earlier.index_lookups.get(name, 0)
                for name, count in self.index_lookups.items()
                if count - earlier.index_lookups.get(name, 0)
            },
        )

    def __str__(self) -> str:
        return (
            f"IOStats(reads={self.physical_reads}, writes={self.physical_writes}, "
            f"logical={self.logical_reads}, hit_ratio={self.hit_ratio:.2f})"
        )


# ---------------------------------------------------------------------------
# per-thread stats override — exact I/O attribution under concurrency
# ---------------------------------------------------------------------------
#
# The service's lock-free snapshot tier runs several queries over ONE
# shared database at once.  Charging them all against the engine-global
# IOStats would interleave their counters; instead each slot thread
# installs its own recorder for the duration of its query via
# ``use_stats``, and every charge path (``BufferPool.stats``,
# ``GraphDatabase.stats`` — both properties) consults ``active_stats``
# first.  The override is thread-local, so concurrent queries never see
# each other's traffic and single-threaded callers (no override) keep
# the engine-global counters exactly as before.

_ACTIVE = threading.local()


def active_stats() -> Optional[IOStats]:
    """This thread's installed recorder, or None (use the global one)."""
    return getattr(_ACTIVE, "stats", None)


@contextmanager
def use_stats(stats: IOStats) -> Iterator[IOStats]:
    """Route this thread's I/O accounting into *stats* for the block."""
    previous = getattr(_ACTIVE, "stats", None)
    _ACTIVE.stats = stats
    try:
        yield stats
    finally:
        _ACTIVE.stats = previous
