"""LRU buffer pool over the simulated disk.

The paper's experiments run with a 1 MiB buffer (Section 6: "the buffer
size we used in our testing is 1MB for I/O access"), which is this module's
default.  All page traffic from heap files and B+-trees flows through
:meth:`BufferPool.fetch`, so the shared :class:`~repro.storage.stats.IOStats`
sees exactly the page-miss behaviour a real bounded buffer would produce —
the effect that makes DP's larger intermediate results cost "over five
times the I/O" of DPS at scale.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from .pages import DiskManager, Page
from .stats import IOStats

DEFAULT_BUFFER_BYTES = 1 << 20  # 1 MiB, as in the paper's test setup


class BufferPool:
    """A fixed-capacity LRU cache of pages with I/O accounting."""

    def __init__(
        self,
        disk: Optional[DiskManager] = None,
        capacity_bytes: int = DEFAULT_BUFFER_BYTES,
        stats: Optional[IOStats] = None,
    ) -> None:
        self.disk = disk or DiskManager()
        self.stats = stats or IOStats()
        self.frame_count = max(1, capacity_bytes // self.disk.page_size)
        self._frames: "OrderedDict[int, Page]" = OrderedDict()

    # ------------------------------------------------------------------
    def new_page(self) -> Page:
        """Allocate a fresh page and admit it into the pool.

        Allocation is *not* an I/O event: no existing page is read, so
        neither ``logical_reads`` nor ``physical_reads`` moves.  The
        first write-back of the (dirty) page is what shows up in
        ``physical_writes``.  This is the contract the I/O-count
        assertions throughout the test suite are calibrated against.
        """
        page = self.disk.allocate()
        self._admit(page)
        return page

    def fetch(self, page_id: int) -> Page:
        """Return the page, reading it from disk on a miss."""
        self.stats.logical_reads += 1
        frame = self._frames.get(page_id)
        if frame is not None:
            self._frames.move_to_end(page_id)
            return frame
        self.stats.physical_reads += 1
        page = self.disk.read_page(page_id)
        self._admit(page)
        return page

    def flush_all(self) -> None:
        """Write back every dirty page without evicting anything."""
        for page in self._frames.values():
            if page.dirty:
                self._write_back(page)

    def clear(self) -> None:
        """Flush and drop every frame — simulates a cold cache."""
        self.flush_all()
        self._frames.clear()

    @property
    def resident_pages(self) -> int:
        return len(self._frames)

    # ------------------------------------------------------------------
    def _admit(self, page: Page) -> None:
        self._frames[page.page_id] = page
        self._frames.move_to_end(page.page_id)
        while len(self._frames) > self.frame_count:
            _, victim = self._frames.popitem(last=False)
            if victim.dirty:
                self._write_back(victim)

    def _write_back(self, page: Page) -> None:
        self.stats.physical_writes += 1
        self.disk.write_page(page)
        page.dirty = False
