"""LRU buffer pool over the simulated disk.

The paper's experiments run with a 1 MiB buffer (Section 6: "the buffer
size we used in our testing is 1MB for I/O access"), which is this module's
default.  All page traffic from heap files and B+-trees flows through
:meth:`BufferPool.fetch`, so the shared :class:`~repro.storage.stats.IOStats`
sees exactly the page-miss behaviour a real bounded buffer would produce —
the effect that makes DP's larger intermediate results cost "over five
times the I/O" of DPS at scale.

Concurrency: the page table (frame map + LRU order + victim write-back)
is guarded by one re-entrant lock, making ``fetch``/``new_page`` safe
under the service's fine-grained live tier where concurrent queries
traverse B+-trees over the same pool.  The lock is re-entrant because
``clear`` nests ``flush_all``.  I/O charges resolve through the
:attr:`stats` property, which honours a per-thread
:func:`~repro.storage.stats.use_stats` override so overlapping queries
get exact, non-interleaved I/O attribution.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

from .pages import DiskManager, Page
from .stats import IOStats, active_stats

DEFAULT_BUFFER_BYTES = 1 << 20  # 1 MiB, as in the paper's test setup


class BufferPool:
    """A fixed-capacity LRU cache of pages with I/O accounting."""

    def __init__(
        self,
        disk: Optional[DiskManager] = None,
        capacity_bytes: int = DEFAULT_BUFFER_BYTES,
        stats: Optional[IOStats] = None,
    ) -> None:
        self.disk = disk or DiskManager()
        self._base_stats = stats or IOStats()
        self.frame_count = max(1, capacity_bytes // self.disk.page_size)
        self._frames: "OrderedDict[int, Page]" = OrderedDict()
        self._lock = threading.RLock()

    @property
    def stats(self) -> IOStats:
        """The recorder charges land on: thread override, else the pool's."""
        override = active_stats()
        return override if override is not None else self._base_stats

    # a live database is shipped whole to process-pool workers; locks do
    # not pickle, so the worker re-creates its own (post-fork the child
    # is single-threaded and the parent's lock state is meaningless)
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def new_page(self) -> Page:
        """Allocate a fresh page and admit it into the pool.

        Allocation is *not* an I/O event: no existing page is read, so
        neither ``logical_reads`` nor ``physical_reads`` moves.  The
        first write-back of the (dirty) page is what shows up in
        ``physical_writes``.  This is the contract the I/O-count
        assertions throughout the test suite are calibrated against.
        """
        with self._lock:
            page = self.disk.allocate()
            self._admit(page)
            return page

    def fetch(self, page_id: int) -> Page:
        """Return the page, reading it from disk on a miss."""
        with self._lock:
            stats = self.stats
            stats.logical_reads += 1
            frame = self._frames.get(page_id)
            if frame is not None:
                self._frames.move_to_end(page_id)
                return frame
            stats.physical_reads += 1
            page = self.disk.read_page(page_id)
            self._admit(page)
            return page

    def flush_all(self) -> None:
        """Write back every dirty page without evicting anything."""
        with self._lock:
            for page in self._frames.values():
                if page.dirty:
                    self._write_back(page)

    def clear(self) -> None:
        """Flush and drop every frame — simulates a cold cache."""
        with self._lock:
            self.flush_all()
            self._frames.clear()

    @property
    def resident_pages(self) -> int:
        return len(self._frames)

    # ------------------------------------------------------------------
    def _admit(self, page: Page) -> None:
        self._frames[page.page_id] = page
        self._frames.move_to_end(page.page_id)
        while len(self._frames) > self.frame_count:
            _, victim = self._frames.popitem(last=False)
            if victim.dirty:
                self._write_back(victim)

    def _write_back(self, page: Page) -> None:
        self.stats.physical_writes += 1
        self.disk.write_page(page)
        page.dirty = False
