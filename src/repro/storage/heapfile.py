"""Heap files: unordered record storage over the buffer pool.

A heap file is the backing store for base tables and temporal tables.  It
appends records into pages (filling each before allocating the next) and
iterates them page-at-a-time through the buffer pool, so a full scan of a
file with P pages costs P logical page reads — exactly the ``IO_D * |T_R|``
scan term of the paper's cost model (Table 1).
"""

from __future__ import annotations

from typing import Any, Iterator, List, Tuple

from .buffer import BufferPool
from .pages import Page, PageFullError, RecordId


class HeapFile:
    """An append-only sequence of records spread across pages."""

    def __init__(self, pool: BufferPool, name: str = "heap") -> None:
        self.pool = pool
        self.name = name
        self._page_ids: List[int] = []
        self._record_count = 0

    # ------------------------------------------------------------------
    def append(self, record: Any) -> RecordId:
        """Append a record, returning its (page_id, slot) record id."""
        if self._page_ids:
            page = self.pool.fetch(self._page_ids[-1])
            try:
                slot = page.append(record)
                self._record_count += 1
                return (page.page_id, slot)
            except PageFullError:
                pass
        page = self.pool.new_page()
        self._page_ids.append(page.page_id)
        slot = page.append(record)
        self._record_count += 1
        return (page.page_id, slot)

    def extend(self, records) -> None:
        for record in records:
            self.append(record)

    def read(self, rid: RecordId) -> Any:
        page_id, slot = rid
        return self.pool.fetch(page_id).get(slot)

    def scan(self) -> Iterator[Tuple[RecordId, Any]]:
        """Yield every (record id, record), page by page."""
        for page_id in self._page_ids:
            page: Page = self.pool.fetch(page_id)
            for slot in range(len(page)):
                yield ((page_id, slot), page.get(slot))

    def records(self) -> Iterator[Any]:
        for _, record in self.scan():
            yield record

    # ------------------------------------------------------------------
    @property
    def page_count(self) -> int:
        return len(self._page_ids)

    def __len__(self) -> int:
        return self._record_count
