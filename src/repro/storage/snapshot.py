"""Versioned binary snapshot format with mmap-backed zero-copy loading.

The offline phase (2-hop cover, base tables, cluster R-join index,
W-table, catalog) is the expensive part of the system; the JSON persist
path (:mod:`repro.db.persist` v1) stores only graph + labeling and
*recomputes* every downstream structure on load — cold start is
O(rebuild), and the JSON codes blow up memory several-fold versus the
``array('q')`` representation the batch kernels already use.  This module
defines a single-file binary snapshot holding every offline structure as
delta-encoded ``array('q')`` columns, written with :mod:`struct` /
``array.tobytes`` and read back through :mod:`mmap`:

* loading verifies the header, the section table and every section's
  CRC32, then serves all reads out of the mapping — directory and offset
  columns are ``memoryview.cast('q')`` views straight into the file
  (zero-copy), while per-row payloads (graph codes, subclusters, W-table
  center lists) are delta-decoded lazily on first probe and memoized by
  their consumers (:class:`~repro.labeling.twohop.TwoHopLabeling`'s
  array cache, :class:`~repro.db.join_index.SnapshotRJoinIndex`'s leaf
  memo, and the engine's cross-query ``CenterCache``);
* nothing is rebuilt: no base-table inserts, no cluster scan, no catalog
  recomputation — those structures materialize on demand.

This project-specific layering rule is enforced by
``lint/mmap-outside-snapshot``: :mod:`mmap` and :mod:`struct` imports are
confined to this module, so every binary-layout assumption lives in one
audited place.

On-disk layout (all integers little-endian, sections 8-byte aligned)::

    header    magic "RGPMSNAP" + u32 version + u32 flags          16 B
    sections  raw bytes, 8-byte aligned
    TOC       per section: 16 B name + u64 offset + u64 length
              + u32 crc32 + u32 reserved                          40 B
    footer    u64 toc_offset + u64 toc_length + u32 prefix_crc
              + u32 section_count + magic                         32 B

``prefix_crc`` is the CRC32 of *everything before the footer* (header,
sections, alignment padding and the TOC), so in combination with the
footer's own self-describing fields — each checked against the file size
and the magic — every byte of the file is covered: a truncated file, a
flipped byte anywhere, an unknown version or a foreign byte order all
raise :class:`SnapshotError` at :meth:`Snapshot.open` — never garbage
query results.  The per-section CRCs in the TOC allow the same check per
section (and localize the damage when it fails).

Run encoding: every sorted id run (a node's code, a subcluster, a
W-table center list, the sorted edge source column) is stored in one of
two layouts, selected by the ``FLAG_RAW_RUNS`` header flag:

* **delta** (``flags`` bit 0 clear — the PR 5 layout): first value raw,
  each subsequent value the difference from its predecessor; decoding is
  one :func:`itertools.accumulate` pass per touched row.
* **raw** (``flags`` bit 0 set — the default the writer emits): the
  absolute sorted values themselves.  Both layouts occupy exactly the
  same bytes (``n`` int64s per ``n``-element run — fixed-width columns
  gain nothing from small deltas), but raw runs are directly usable as
  ``memoryview.cast('q')`` slices, which is what makes the *blessed view
  API* below zero-copy: ``in_code_view``/``out_code_view``/
  ``wtable_view``/``subcluster_run_view``/``subcluster_views_at``/
  ``extent_view`` hand the batch kernels sorted int64 slices straight
  into the mapping, no tuple or array materialization at all.  Raw
  snapshots additionally carry the ``extoff``/``extnodes`` sections (the
  per-label node columns the seed scan reads).  The mmap confinement
  rules (``mmap/view-escape``/``mmap/view-held``) recognize exactly this
  blessed surface: its slices may flow along the read path (db, labeling,
  physical operators) but must never be stored on objects that outlive
  the snapshot — see :mod:`repro.analysis.contracts`.

Because a pool of process workers may have the same file mapped
(:class:`~repro.query.physical.parallel.WorkerPool` re-opens
snapshot-backed databases by path inside each worker), :meth:`Snapshot.
close` refuses to run while registered holders exist: pools
:meth:`acquire` the snapshot on construction and :meth:`release` it on
shutdown, and a premature ``close()`` raises :class:`SnapshotError`
naming the live pool instead of poisoning its queries mid-flight.
"""

from __future__ import annotations

import mmap
import os
import struct
import sys
import zlib
from array import array
from bisect import bisect_left
from itertools import accumulate
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

SNAPSHOT_MAGIC = b"RGPMSNAP"
SNAPSHOT_VERSION = 1

#: header flag bit: run sections store raw absolute values (zero-copy
#: slice-addressable) instead of delta-encoded differences
FLAG_RAW_RUNS = 1

#: all flag bits this build understands; unknown bits are rejected
_KNOWN_FLAGS = FLAG_RAW_RUNS

_HEADER = struct.Struct("<8sII")
_TOC_ENTRY = struct.Struct("<16sQQII")
_FOOTER = struct.Struct("<QQII8s")

#: subcluster side tags in the ``subdir`` section
SIDE_F = 0
SIDE_T = 1

#: the sections a well-formed snapshot must contain, in file order
SECTION_NAMES = (
    "meta",        # counters: nodes, edges, labels, centers, wpairs, subruns
    "labelnames",  # NUL-joined UTF-8 label dictionary (id = position)
    "nodelabels",  # per-node label id                                  [n]
    "edges",       # delta-encoded sorted src column + raw dst column  [2E]
    "inoff",       # CSR offsets into inval, in elements              [n+1]
    "inval",       # per-node in-code, delta-encoded
    "outoff",      # CSR offsets into outval                          [n+1]
    "outval",      # per-node out-code, delta-encoded
    "wdir",        # W-table directory: (x_id, y_id) per pair          [2P]
    "woff",        # CSR offsets into wval                            [P+1]
    "wval",        # per-pair center list, delta-encoded
    "centers",     # sorted center ids                                  [C]
    "suboff",      # per-center row offsets into subdir               [C+1]
    "subdir",      # (side, label_id, value_offset, count) per run     [4R]
    "subval",      # subcluster node runs, delta-encoded
    "extents",     # catalog: extent size per label id                  [L]
    "catpairs",    # catalog: (x, y, pair_estimate, centers, volume)   [5K]
)

#: extra sections a raw-runs snapshot must also contain: the per-label
#: node columns (CSR over label ids) the mmap-native seed scan slices
RAW_SECTION_NAMES = (
    "extoff",      # CSR offsets into extnodes, one run per label      [L+1]
    "extnodes",    # sorted node ids grouped by label id                 [n]
)

_META_FIELDS = 6


class SnapshotError(Exception):
    """The file is not a readable snapshot (corrupt, truncated, foreign)."""


def _require_little_endian() -> None:
    if sys.byteorder != "little":  # pragma: no cover - exotic platforms
        raise SnapshotError(
            "binary snapshots are little-endian; this platform is "
            f"{sys.byteorder}-endian"
        )


def is_snapshot(path: str) -> bool:
    """True if *path* starts with the binary snapshot magic bytes."""
    try:
        with open(path, "rb") as f:
            return f.read(len(SNAPSHOT_MAGIC)) == SNAPSHOT_MAGIC
    except OSError:
        return False


# ----------------------------------------------------------------------
# encoding helpers
# ----------------------------------------------------------------------
def _delta(values: Sequence[int]) -> Iterator[int]:
    """First value raw, then successive differences."""
    previous = 0
    first = True
    for value in values:
        if first:
            yield value
            first = False
        else:
            yield value - previous
        previous = value


def _encode_runs(
    runs: Sequence[Sequence[int]], raw: bool = False
) -> Tuple[array, array]:
    """CSR-encode sorted id runs: (element offsets [len+1], values).

    ``raw`` stores the absolute sorted values (slice-addressable without
    a decode pass); otherwise values are delta-encoded.  Both layouts are
    byte-for-byte the same size.
    """
    offsets = array("q", [0])
    values = array("q")
    for run in runs:
        values.extend(run if raw else _delta(run))
        offsets.append(len(values))
    return offsets, values


# ----------------------------------------------------------------------
# writer
# ----------------------------------------------------------------------
class _SnapshotWriter:
    """Accumulates named sections and writes the final single file."""

    def __init__(self, flags: int = 0) -> None:
        self._flags = flags
        self._sections: List[Tuple[str, bytes]] = []

    def add(self, name: str, payload: bytes) -> None:
        if len(name.encode("ascii")) > 16:
            raise ValueError(f"section name {name!r} exceeds 16 bytes")
        self._sections.append((name, payload))

    def add_array(self, name: str, values: array) -> None:
        self.add(name, values.tobytes())

    def tobytes(self) -> bytes:
        out = bytearray(
            _HEADER.pack(SNAPSHOT_MAGIC, SNAPSHOT_VERSION, self._flags)
        )
        toc = bytearray()
        for name, payload in self._sections:
            if pad := (-len(out)) % 8:
                out += b"\x00" * pad
            toc += _TOC_ENTRY.pack(
                name.encode("ascii").ljust(16, b"\x00"),
                len(out),
                len(payload),
                zlib.crc32(payload),
                0,
            )
            out += payload
        if pad := (-len(out)) % 8:
            out += b"\x00" * pad
        toc_offset = len(out)
        out += toc
        out += _FOOTER.pack(
            toc_offset,
            len(toc),
            zlib.crc32(bytes(out)),  # prefix CRC: every byte before the footer
            len(self._sections),
            SNAPSHOT_MAGIC,
        )
        return bytes(out)


def encode_snapshot(db, raw_runs: bool = True) -> bytes:
    """Serialize a built :class:`~repro.db.database.GraphDatabase`.

    Reads only the public surfaces (graph, labeling codes, join-index
    leaves, W-table entries, catalog stats), so it works identically on
    an eagerly-built database and on a snapshot-loaded one — which is
    what makes save → load → save byte-stable.

    ``raw_runs`` selects the run layout: ``True`` (default) stores raw
    absolute sorted values plus the per-label node columns, enabling the
    zero-copy view API; ``False`` reproduces the delta-encoded legacy
    layout byte for byte.
    """
    _require_little_endian()
    graph = db.graph
    labeling = db.labeling
    index = db.join_index
    catalog = db.catalog
    n = graph.node_count

    label_names = sorted(set(graph.labels())) if n else []
    label_ids = {name: i for i, name in enumerate(label_names)}

    writer = _SnapshotWriter(flags=FLAG_RAW_RUNS if raw_runs else 0)
    writer.add(
        "labelnames", b"\x00".join(name.encode("utf-8") for name in label_names)
    )
    writer.add_array(
        "nodelabels", array("q", (label_ids[graph.label(v)] for v in range(n)))
    )

    edges = sorted(graph.edges())
    sources = [u for u, _ in edges]
    edge_values = array("q", sources if raw_runs else _delta(sources))
    edge_values.extend(v for _, v in edges)
    writer.add_array("edges", edge_values)

    in_off, in_val = _encode_runs(
        [sorted(labeling.in_codes[v]) for v in range(n)], raw=raw_runs
    )
    out_off, out_val = _encode_runs(
        [sorted(labeling.out_codes[v]) for v in range(n)], raw=raw_runs
    )
    writer.add_array("inoff", in_off)
    writer.add_array("inval", in_val)
    writer.add_array("outoff", out_off)
    writer.add_array("outval", out_val)

    wdir = array("q")
    wruns: List[Sequence[int]] = []
    for (x_label, y_label), centers in sorted(index.wtable_items()):
        wdir.extend((label_ids[x_label], label_ids[y_label]))
        wruns.append(centers)
    w_off, w_val = _encode_runs(wruns, raw=raw_runs)
    writer.add_array("wdir", wdir)
    writer.add_array("woff", w_off)
    writer.add_array("wval", w_val)

    center_ids = array("q")
    sub_off = array("q", [0])
    sub_dir = array("q")
    sub_runs: List[Sequence[int]] = []
    run_count = 0
    value_offset = 0
    for center, f_sub, t_sub in index.cluster_items():
        center_ids.append(center)
        for side, subclusters in ((SIDE_F, f_sub), (SIDE_T, t_sub)):
            for label in sorted(subclusters):
                nodes = subclusters[label]
                if not nodes:
                    continue
                sub_dir.extend((side, label_ids[label], value_offset, len(nodes)))
                sub_runs.append(nodes)
                value_offset += len(nodes)
                run_count += 1
        sub_off.append(run_count)
    _, sub_val = _encode_runs(sub_runs, raw=raw_runs)
    writer.add_array("centers", center_ids)
    writer.add_array("suboff", sub_off)
    writer.add_array("subdir", sub_dir)
    writer.add_array("subval", sub_val)

    if raw_runs:
        # per-label node columns: one sorted run per label id, in label-id
        # order — ascending v keeps each run sorted without a second pass
        extent_runs: List[List[int]] = [[] for _ in label_names]
        for v in range(n):
            extent_runs[label_ids[graph.label(v)]].append(v)
        ext_off, ext_nodes = _encode_runs(extent_runs, raw=True)
        writer.add_array("extoff", ext_off)
        writer.add_array("extnodes", ext_nodes)

    writer.add_array(
        "extents",
        array("q", (catalog.extent_size(name) for name in label_names)),
    )
    cat_pairs = array("q")
    for (x_label, y_label), stats in sorted(catalog.all_pairs().items()):
        cat_pairs.extend(
            (
                label_ids[x_label],
                label_ids[y_label],
                stats.pair_estimate,
                stats.center_count,
                stats.fetch_volume,
            )
        )
    writer.add_array("catpairs", cat_pairs)

    meta = array(
        "q",
        (
            n,
            len(edges),
            len(label_names),
            len(center_ids),
            len(wruns),
            run_count,
        ),
    )
    writer._sections.insert(0, ("meta", meta.tobytes()))
    return writer.tobytes()


def write_snapshot(db, path: str, raw_runs: bool = True) -> None:
    """Write *db* to *path* atomically (tmp file + fsync + rename).

    The durability sequence is the crash-safe one: flush and ``fsync``
    the temp file before :func:`os.replace`, then ``fsync`` the directory
    entry so a power cut can neither promote a truncated temp file nor
    lose the rename itself.
    """
    payload = encode_snapshot(db, raw_runs=raw_runs)
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "wb") as f:
        f.write(payload)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp_path, path)
    _fsync_directory(os.path.dirname(os.path.abspath(path)))


def _fsync_directory(directory: str) -> None:
    """Flush a directory entry (best effort where the OS allows it)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. platforms without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - not supported on this filesystem
        pass
    finally:
        os.close(fd)


# ----------------------------------------------------------------------
# reader
# ----------------------------------------------------------------------
class Snapshot:
    """One open snapshot file: verified header/TOC, lazily decoded reads.

    :meth:`open` maps the file and checks structure + every section CRC
    up front (one sequential pass over the mapping — cheap compared to a
    JSON parse); after that all accessors are either zero-copy
    ``memoryview`` slices of the mapping or on-demand delta decodes of
    exactly the rows asked for.  ``decode_stats`` counts the decodes, so
    tests can pin the laziness contract.
    """

    def __init__(self, path: str, buffer: bytes, view: memoryview,
                 sections: Dict[str, Tuple[int, int]], mapped: Optional[mmap.mmap],
                 flags: int = 0):
        self.path = path
        self._buffer = buffer
        self._view = view
        self._sections = sections
        self._mmap = mapped
        self._closed = False
        self.flags = flags
        #: run sections hold raw absolute values → view API available
        self.raw_runs = bool(flags & FLAG_RAW_RUNS)
        #: live holders (worker pools) keyed by display name → refcount;
        #: close() refuses while any remain
        self._owners: Dict[str, int] = {}
        self.decode_stats: Dict[str, int] = {
            "code_rows": 0, "wtable_pairs": 0, "subcluster_runs": 0,
        }
        meta = self._ints("meta")
        if len(meta) != _META_FIELDS:
            raise SnapshotError(
                f"meta section has {len(meta)} fields, expected {_META_FIELDS}"
            )
        (self.node_count, self.edge_count, self.label_count,
         self.center_count, self.wtable_pair_count, self.subcluster_runs) = meta
        raw_names = bytes(self._raw("labelnames"))
        self.label_names: List[str] = (
            [part.decode("utf-8") for part in raw_names.split(b"\x00")]
            if raw_names else []
        )
        if len(self.label_names) != self.label_count:
            raise SnapshotError(
                f"label dictionary holds {len(self.label_names)} names but "
                f"meta declares {self.label_count}"
            )
        self._check_geometry()

    # ------------------------------------------------------------------
    @classmethod
    def open(cls, path: str) -> "Snapshot":
        """Map and verify *path*; raises :class:`SnapshotError` on any
        structural problem, bad CRC, short file or foreign format."""
        _require_little_endian()
        try:
            f = open(path, "rb")
        except OSError as exc:
            raise SnapshotError(f"cannot open snapshot {path!r}: {exc}") from exc
        with f:
            size = os.fstat(f.fileno()).st_size
            if size < _HEADER.size + _FOOTER.size:
                raise SnapshotError(
                    f"{path!r} is {size} bytes — too short for a snapshot"
                )
            mapped: Optional[mmap.mmap]
            try:
                mapped = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
                buffer: bytes = mapped  # type: ignore[assignment]
            except (ValueError, OSError):  # pragma: no cover - no-mmap fs
                mapped = None
                f.seek(0)
                buffer = f.read()
        try:
            sections, flags = cls._verify(path, buffer, size)
            return cls(path, buffer, memoryview(buffer), sections, mapped,
                       flags=flags)
        except SnapshotError:
            if mapped is not None:
                mapped.close()
            raise

    @staticmethod
    def _verify(
        path: str, buffer, size: int
    ) -> Tuple[Dict[str, Tuple[int, int]], int]:
        magic, version, flags = _HEADER.unpack_from(buffer, 0)
        if magic != SNAPSHOT_MAGIC:
            raise SnapshotError(f"{path!r} does not start with snapshot magic")
        if version != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"{path!r} is snapshot version {version}; this build reads "
                f"version {SNAPSHOT_VERSION}"
            )
        if unknown := flags & ~_KNOWN_FLAGS:
            raise SnapshotError(
                f"{path!r} sets unknown header flag bits {unknown:#x}; this "
                f"build understands {_KNOWN_FLAGS:#x}"
            )
        toc_offset, toc_length, prefix_crc, section_count, end_magic = (
            _FOOTER.unpack_from(buffer, size - _FOOTER.size)
        )
        if end_magic != SNAPSHOT_MAGIC:
            raise SnapshotError(f"{path!r} footer magic missing (truncated?)")
        if (
            toc_offset + toc_length + _FOOTER.size != size
            or toc_length != section_count * _TOC_ENTRY.size
        ):
            raise SnapshotError(f"{path!r} section table geometry is corrupt")
        # the prefix CRC covers header, sections, padding and TOC — with
        # the footer's self-checked fields, every byte of the file
        if zlib.crc32(bytes(buffer[:size - _FOOTER.size])) != prefix_crc:
            raise SnapshotError(f"{path!r} fails its whole-file CRC")
        toc = bytes(buffer[toc_offset:toc_offset + toc_length])
        sections: Dict[str, Tuple[int, int]] = {}
        for position in range(section_count):
            raw_name, offset, length, crc, _reserved = _TOC_ENTRY.unpack_from(
                toc, position * _TOC_ENTRY.size
            )
            name = raw_name.rstrip(b"\x00").decode("ascii")
            if offset + length > toc_offset:
                raise SnapshotError(
                    f"{path!r} section {name!r} runs past the section table"
                )
            if zlib.crc32(bytes(buffer[offset:offset + length])) != crc:
                raise SnapshotError(f"{path!r} section {name!r} fails its CRC")
            sections[name] = (offset, length)
        required = SECTION_NAMES + (
            RAW_SECTION_NAMES if flags & FLAG_RAW_RUNS else ()
        )
        missing = [name for name in required if name not in sections]
        if missing:
            raise SnapshotError(f"{path!r} is missing section(s) {missing}")
        return sections, flags

    def _check_geometry(self) -> None:
        """Cross-check declared counts against section sizes."""
        expectations = {
            "nodelabels": self.node_count,
            "edges": 2 * self.edge_count,
            "inoff": self.node_count + 1,
            "outoff": self.node_count + 1,
            "wdir": 2 * self.wtable_pair_count,
            "woff": self.wtable_pair_count + 1,
            "centers": self.center_count,
            "suboff": self.center_count + 1,
            "subdir": 4 * self.subcluster_runs,
            "extents": self.label_count,
        }
        if self.raw_runs:
            expectations["extoff"] = self.label_count + 1
            expectations["extnodes"] = self.node_count
        for name, expected in expectations.items():
            actual = len(self._ints(name))
            if actual != expected:
                raise SnapshotError(
                    f"section {name!r} holds {actual} values, expected "
                    f"{expected} from the meta counters"
                )
        if len(self._ints("catpairs")) % 5:
            raise SnapshotError("section 'catpairs' is not rows of 5 values")

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def acquire(self, owner: str) -> None:
        """Register *owner* (e.g. a worker pool) as a live holder.

        While holders are registered, :meth:`close` raises instead of
        unmapping the file out from under them.  Re-entrant: the same
        owner name may acquire more than once and must release as often.
        """
        if self._closed:
            raise SnapshotError(
                f"cannot acquire closed snapshot {self.path!r} for {owner}"
            )
        self._owners[owner] = self._owners.get(owner, 0) + 1

    def release(self, owner: str) -> None:
        """Drop one registration of *owner*; unknown owners are ignored
        (shutdown paths may run after an error unwound the acquire)."""
        count = self._owners.get(owner, 0)
        if count <= 1:
            self._owners.pop(owner, None)
        else:
            self._owners[owner] = count - 1

    def close(self) -> None:
        """Release the mapping; idempotent.

        Refuses with :class:`SnapshotError` while holders registered via
        :meth:`acquire` (live worker pools) remain — closing the file a
        pool of workers has mapped would poison their queries mid-flight,
        so the error names the holders instead.

        Any view handed out earlier becomes invalid: further section
        access on this object raises ``SnapshotError("snapshot is
        closed")``.  If zero-copy views are still alive the mapping
        cannot be unmapped — that raises ``BufferError`` (or
        :class:`repro.analysis.sanitizer.SanitizerError` under
        ``REPRO_SANITIZE=1``, naming the ``mmap/view-held`` hazard the
        deep checker polices statically).
        """
        if self._closed:
            return
        if self._owners:
            holders = ", ".join(sorted(self._owners))
            raise SnapshotError(
                f"cannot close snapshot {self.path!r}: still held by "
                f"{holders}; shut the pool down first"
            )
        self._closed = True
        self._view.release()
        if self._mmap is not None:
            try:
                self._mmap.close()
            except BufferError as exc:
                # imported lazily: the analysis layer must not become a
                # load-time dependency of the storage layer
                from ..analysis.sanitizer import SanitizerError, sanitize_enabled

                message = (
                    f"snapshot {self.path!r} closed while zero-copy views "
                    f"into its mapping are still alive: {exc}"
                )
                if sanitize_enabled():
                    raise SanitizerError(message) from exc
                raise BufferError(message) from exc
            self._mmap = None

    def _raw(self, name: str) -> memoryview:
        if self._closed:
            raise SnapshotError("snapshot is closed")
        offset, length = self._sections[name]
        return self._view[offset:offset + length]

    def _ints(self, name: str) -> memoryview:
        """A section as a zero-copy int64 view straight into the mapping."""
        return self._raw(name).cast("q")

    # ------------------------------------------------------------------
    # graph
    # ------------------------------------------------------------------
    def node_label_ids(self) -> memoryview:
        return self._ints("nodelabels")

    def node_labels(self) -> Iterator[str]:
        names = self.label_names
        return (names[i] for i in self.node_label_ids())

    def edges(self) -> Iterator[Tuple[int, int]]:
        values = self._ints("edges")
        count = self.edge_count
        if self.raw_runs:
            return zip(values[:count], values[count:])
        return zip(accumulate(values[:count]), values[count:])

    def build_graph(self):
        """Reconstruct the :class:`~repro.graph.digraph.DiGraph` eagerly.

        The graph itself stays materialized (labels and extents are read
        constantly and it is O(V+E) small); laziness is reserved for the
        quadratic-ish structures — codes, subclusters, base tables.
        """
        from ..graph.digraph import DiGraph

        graph = DiGraph()
        graph.add_nodes(self.node_labels())
        graph.add_edges(self.edges())
        return graph

    # ------------------------------------------------------------------
    # 2-hop codes
    # ------------------------------------------------------------------
    def _code_row(self, offsets_name: str, values_name: str, node: int) -> array:
        if not (0 <= node < self.node_count):
            raise IndexError(f"node {node} outside snapshot range")
        offsets = self._ints(offsets_name)
        values = self._ints(values_name)
        self.decode_stats["code_rows"] += 1
        run = values[offsets[node]:offsets[node + 1]]
        return array("q", run if self.raw_runs else accumulate(run))

    def in_code_array(self, node: int) -> array:
        """``in(x)`` as a freshly decoded sorted ``array('q')``."""
        return self._code_row("inoff", "inval", node)

    def out_code_array(self, node: int) -> array:
        """``out(x)`` as a freshly decoded sorted ``array('q')``."""
        return self._code_row("outoff", "outval", node)

    # ------------------------------------------------------------------
    # W-table
    # ------------------------------------------------------------------
    def wtable_pairs(self) -> List[Tuple[str, str]]:
        names = self.label_names
        wdir = self._ints("wdir")
        return [
            (names[wdir[2 * i]], names[wdir[2 * i + 1]])
            for i in range(self.wtable_pair_count)
        ]

    def wtable_sizes(self) -> Dict[Tuple[str, str], int]:
        offsets = self._ints("woff")
        return {
            pair: offsets[i + 1] - offsets[i]
            for i, pair in enumerate(self.wtable_pairs())
        }

    def wtable_centers(self, position: int) -> array:
        """Decode the center list of the *position*-th W-table pair."""
        offsets = self._ints("woff")
        values = self._ints("wval")
        self.decode_stats["wtable_pairs"] += 1
        run = values[offsets[position]:offsets[position + 1]]
        return array("q", run if self.raw_runs else accumulate(run))

    # ------------------------------------------------------------------
    # cluster directory
    # ------------------------------------------------------------------
    def centers(self) -> memoryview:
        """The sorted center-id column, zero-copy."""
        return self._ints("centers")

    def center_position(self, center: int) -> int:
        """Index of *center* in the directory, or -1 if absent."""
        centers = self._ints("centers")
        position = bisect_left(centers, center)
        if position < len(centers) and centers[position] == center:
            return position
        return -1

    def subclusters_at(
        self, position: int
    ) -> Tuple[Dict[str, Tuple[int, ...]], Dict[str, Tuple[int, ...]]]:
        """Decode the ``({X: F-subcluster}, {Y: T-subcluster})`` leaf of
        the *position*-th center (both labeled maps, sorted tuples)."""
        sub_off = self._ints("suboff")
        sub_dir = self._ints("subdir")
        sub_val = self._ints("subval")
        names = self.label_names
        f_sub: Dict[str, Tuple[int, ...]] = {}
        t_sub: Dict[str, Tuple[int, ...]] = {}
        for run in range(sub_off[position], sub_off[position + 1]):
            side, label_id, value_offset, count = sub_dir[4 * run:4 * run + 4]
            values = sub_val[value_offset:value_offset + count]
            nodes = tuple(values if self.raw_runs else accumulate(values))
            self.decode_stats["subcluster_runs"] += 1
            (f_sub if side == SIDE_F else t_sub)[names[label_id]] = nodes
        return f_sub, t_sub

    # ------------------------------------------------------------------
    # blessed view API (raw-runs snapshots only): zero-copy sorted int64
    # slices straight into the mapping, for the batch kernels.  The mmap
    # confinement rules recognize exactly these producers — their slices
    # may flow along the read path but must never outlive the snapshot.
    # ------------------------------------------------------------------
    @property
    def supports_views(self) -> bool:
        """True when the file layout allows the zero-copy view API."""
        return self.raw_runs

    def _require_views(self) -> None:
        if not self.raw_runs:
            raise SnapshotError(
                f"snapshot {self.path!r} is delta-encoded (legacy layout); "
                "the zero-copy view API needs a raw-runs snapshot — "
                "rewrite it with write_snapshot(db, path)"
            )

    def _run_view(self, offsets_name: str, values_name: str,
                  position: int) -> memoryview:
        offsets = self._ints(offsets_name)
        values = self._ints(values_name)
        return values[offsets[position]:offsets[position + 1]]

    def in_code_view(self, node: int) -> memoryview:
        """``in(x)`` as a zero-copy sorted slice of the mapping."""
        self._require_views()
        if not (0 <= node < self.node_count):
            raise IndexError(f"node {node} outside snapshot range")
        return self._run_view("inoff", "inval", node)

    def out_code_view(self, node: int) -> memoryview:
        """``out(x)`` as a zero-copy sorted slice of the mapping."""
        self._require_views()
        if not (0 <= node < self.node_count):
            raise IndexError(f"node {node} outside snapshot range")
        return self._run_view("outoff", "outval", node)

    def wtable_view(self, position: int) -> memoryview:
        """Center list of the *position*-th W-table pair, zero-copy."""
        self._require_views()
        return self._run_view("woff", "wval", position)

    def subcluster_run_view(self, position: int, side: int,
                            label_id: int) -> Optional[memoryview]:
        """The ``side``/``label_id`` subcluster run of the *position*-th
        center as a zero-copy slice, or ``None`` when that run is absent
        (empty subclusters are never stored)."""
        self._require_views()
        sub_off = self._ints("suboff")
        sub_dir = self._ints("subdir")
        sub_val = self._ints("subval")
        for run in range(sub_off[position], sub_off[position + 1]):
            base = 4 * run
            if sub_dir[base] == side and sub_dir[base + 1] == label_id:
                value_offset = sub_dir[base + 2]
                count = sub_dir[base + 3]
                return sub_val[value_offset:value_offset + count]
        return None

    def subcluster_views_at(
        self, position: int
    ) -> Tuple[Dict[str, memoryview], Dict[str, memoryview]]:
        """The ``({X: F-run}, {Y: T-run})`` leaf of the *position*-th
        center with every run a zero-copy slice (view twin of
        :meth:`subclusters_at`; does not touch ``decode_stats``)."""
        self._require_views()
        sub_off = self._ints("suboff")
        sub_dir = self._ints("subdir")
        sub_val = self._ints("subval")
        names = self.label_names
        f_sub: Dict[str, memoryview] = {}
        t_sub: Dict[str, memoryview] = {}
        for run in range(sub_off[position], sub_off[position + 1]):
            side, label_id, value_offset, count = sub_dir[4 * run:4 * run + 4]
            view = sub_val[value_offset:value_offset + count]
            (f_sub if side == SIDE_F else t_sub)[names[label_id]] = view
        return f_sub, t_sub

    def extent_view(self, label_id: int) -> memoryview:
        """All node ids of *label_id*, sorted, as a zero-copy slice."""
        self._require_views()
        if not (0 <= label_id < self.label_count):
            raise IndexError(f"label id {label_id} outside snapshot range")
        return self._run_view("extoff", "extnodes", label_id)

    # ------------------------------------------------------------------
    # catalog
    # ------------------------------------------------------------------
    def extent_sizes(self) -> Dict[str, int]:
        extents = self._ints("extents")
        return {name: extents[i] for i, name in enumerate(self.label_names)}

    def catalog_pairs(self) -> Dict[Tuple[str, str], Tuple[int, int, int]]:
        """``{(X, Y): (pair_estimate, center_count, fetch_volume)}``."""
        rows = self._ints("catpairs")
        names = self.label_names
        return {
            (names[rows[i]], names[rows[i + 1]]): (
                rows[i + 2], rows[i + 3], rows[i + 4]
            )
            for i in range(0, len(rows), 5)
        }

    # ------------------------------------------------------------------
    # inspection (CLI `repro snapshot info`)
    # ------------------------------------------------------------------
    def file_size(self) -> int:
        return len(self._buffer)

    def section_table(self) -> List[Tuple[str, int, int]]:
        """``(name, offset, length)`` rows in file order."""
        return sorted(
            ((name, off, length) for name, (off, length) in self._sections.items()),
            key=lambda row: row[1],
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Snapshot({self.path!r}, nodes={self.node_count}, "
            f"edges={self.edge_count}, centers={self.center_count})"
        )


__all__ = [
    "FLAG_RAW_RUNS",
    "RAW_SECTION_NAMES",
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "SECTION_NAMES",
    "Snapshot",
    "SnapshotError",
    "encode_snapshot",
    "is_snapshot",
    "write_snapshot",
]
