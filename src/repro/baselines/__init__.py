"""Baselines: naive ground truth, TwigStackD (TSD), IGMJ (INT-DP)."""

from .igmj import IGMJEngine, IGMJMetrics
from .naive import NaiveMatcher
from .twigstack import TwigStack
from .twigstackd import TSDMetrics, TwigStackD

__all__ = [
    "IGMJEngine",
    "IGMJMetrics",
    "NaiveMatcher",
    "TwigStack",
    "TSDMetrics",
    "TwigStackD",
]
