"""TwigStack-style holistic twig joins over a *tree* (Bruno et al. [8]).

TwigStackD's first phase "uses [the] Twig-Join algorithm in [8] to find
all ... patterns found in the spanning tree" (paper Section 5.1).  This
module implements that referenced machinery: given a forest with pre/post
interval codes and a tree-shaped pattern, find every match whose *every*
pattern edge is an ancestor-descendant pair in the forest.

The implementation is the holistic stack sweep in its merged-stream form
(the PathStack/TwigStack family):

1. **document-order sweep with linked stacks** — all candidates of all
   pattern nodes are consumed in one pass ordered by preorder ``start``.
   Each pattern node keeps a stack of *open* candidates (tree intervals
   containing the sweep point are totally nested, so a stack suffices);
   a candidate is pushed only if its pattern parent's stack is non-empty
   — candidates with no open ancestor are skipped unbuffered — and each
   entry links to the top of its parent's stack.  When a pattern *leaf*
   is pushed, every root-to-leaf path solution through it is emitted by
   walking the links.
2. **merge** — per-leaf path solutions are joined on their shared
   pattern-path prefixes into full twig matches.

Compared to the original TwigStack, the sweep buffers some internal-node
candidates that a full ``getNext`` would prove useless; results are
identical and the structure (streams, linked stacks, path solutions,
merge) is the one the paper's TSD builds on.

Scope: data must be a forest and the pattern a tree — exactly [8]'s
setting.  For DAGs use :class:`repro.baselines.twigstackd.TwigStackD`,
which layers the SSPI on top of the spanning tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..graph.digraph import DiGraph
from ..labeling.interval import TreeIntervalCode, build_tree_intervals
from ..query.pattern import GraphPattern, PatternError


@dataclass
class _StackEntry:
    node: int
    parent_index: int  # top of the pattern parent's stack at push, or -1


class TwigStack:
    """Holistic tree-pattern matching over a forest (ancestor-descendant)."""

    def __init__(
        self, tree_graph: DiGraph, code: Optional[TreeIntervalCode] = None
    ) -> None:
        self.graph = tree_graph
        self.code = code if code is not None else build_tree_intervals(tree_graph)
        if self.code.non_tree_edges:
            raise ValueError(
                "TwigStack requires a forest; the data graph has non-tree "
                "edges (use TwigStackD for DAGs)"
            )

    # ------------------------------------------------------------------
    def match(self, pattern: GraphPattern) -> List[Tuple[int, ...]]:
        """All matches, sorted, as tuples ordered by ``pattern.variables``."""
        if pattern.node_count == 1:
            var = pattern.variables[0]
            return sorted((v,) for v in self.graph.extent(pattern.label(var)))
        if not pattern.is_tree():
            raise PatternError("TwigStack handles tree patterns only")

        start, end = self.code.start, self.code.end
        root = pattern.root()
        parent_of: Dict[str, Optional[str]] = {root: None}
        for src, dst in pattern.conditions:
            parent_of[dst] = src
        children = {q: pattern.children(q) for q in pattern.variables}
        leaves = [q for q in pattern.variables if not children[q]]
        leaf_chain: Dict[str, List[str]] = {}
        for leaf in leaves:
            chain = [leaf]
            while parent_of[chain[-1]] is not None:
                chain.append(parent_of[chain[-1]])
            leaf_chain[leaf] = list(reversed(chain))

        # one merged candidate stream in document (preorder) order
        sweep: List[Tuple[int, str, int]] = []  # (start, pattern node, node)
        for q in pattern.variables:
            for node in self.graph.extent(pattern.label(q)):
                sweep.append((start[node], q, node))
        sweep.sort()

        stacks: Dict[str, List[_StackEntry]] = {q: [] for q in pattern.variables}
        path_solutions: Dict[str, List[Tuple[int, ...]]] = {q: [] for q in leaves}

        def emit_paths(leaf: str, entry: _StackEntry) -> None:
            chain = leaf_chain[leaf]
            acc: List[int] = []

            def expand(idx: int, e: _StackEntry) -> None:
                acc.append(e.node)
                if idx == 0:
                    path_solutions[leaf].append(tuple(reversed(acc)))
                else:
                    parent_q = chain[idx - 1]
                    for i in range(e.parent_index + 1):
                        expand(idx - 1, stacks[parent_q][i])
                acc.pop()

            expand(len(chain) - 1, entry)

        for point, q, node in sweep:
            # close every interval that ended before the sweep point
            for stack in stacks.values():
                while stack and end[stack[-1].node] < point:
                    stack.pop()
            parent_q = parent_of[q]
            if parent_q is not None and not stacks[parent_q]:
                continue  # no open ancestor: skip, unbuffered
            parent_index = (
                len(stacks[parent_q]) - 1 if parent_q is not None else -1
            )
            entry = _StackEntry(node, parent_index)
            if not children[q]:
                emit_paths(q, entry)  # leaves never need to stay open
            else:
                stacks[q].append(entry)

        # merge the per-leaf path solutions on shared pattern-path prefixes
        variables = pattern.variables
        results: set = set()
        if any(not path_solutions[leaf] for leaf in leaves):
            return []

        def merge(idx: int, binding: Dict[str, int]) -> None:
            if idx == len(leaves):
                results.add(tuple(binding[v] for v in variables))
                return
            leaf = leaves[idx]
            chain = leaf_chain[leaf]
            for path in path_solutions[leaf]:
                added: List[str] = []
                consistent = True
                for q, candidate in zip(chain, path):
                    bound = binding.get(q)
                    if bound is None:
                        binding[q] = candidate
                        added.append(q)
                    elif bound != candidate:
                        consistent = False
                        break
                if consistent:
                    merge(idx + 1, binding)
                for q in added:
                    del binding[q]

        merge(0, {})
        return sorted(results)
