"""Naive graph pattern matcher — the ground truth for every other engine.

Backtracking over pattern variables with BFS-computed reachable sets,
memoized per source node.  Exponential in the worst case but obviously
correct, which is its entire job: the test suite asserts that DP, DPS,
TSD and INT-DP all return exactly this matcher's result set.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..graph.digraph import DiGraph
from ..graph.traversal import reachable_set
from ..query.pattern import GraphPattern


class NaiveMatcher:
    """Brute-force pattern matching by backtracking search."""

    def __init__(self, graph: DiGraph) -> None:
        self.graph = graph
        self._reach_cache: Dict[int, Set[int]] = {}

    def _reaches(self, u: int, v: int) -> bool:
        cached = self._reach_cache.get(u)
        if cached is None:
            cached = reachable_set(self.graph, u)
            self._reach_cache[u] = cached
        return v in cached

    def match(self, pattern: GraphPattern) -> List[Tuple[int, ...]]:
        """All matches, as tuples ordered by ``pattern.variables``."""
        extents = self.graph.extents()
        candidates = {
            var: extents.get(pattern.label(var), ())
            for var in pattern.variables
        }
        # order variables: most-constrained (smallest extent) first, but
        # keep the search connected so conditions prune early
        order: List[str] = []
        remaining = set(pattern.variables)
        while remaining:
            connected = [
                v for v in remaining
                if not order or pattern.adjacent(v) & set(order)
            ]
            pool = connected or sorted(remaining)
            var = min(pool, key=lambda v: (len(candidates[v]), v))
            order.append(var)
            remaining.discard(var)

        # conditions checkable as soon as their later endpoint is bound
        checks_at: Dict[str, List[Tuple[str, str]]] = {v: [] for v in order}
        position = {var: i for i, var in enumerate(order)}
        for src, dst in pattern.conditions:
            later = src if position[src] > position[dst] else dst
            checks_at[later].append((src, dst))

        results: List[Tuple[int, ...]] = []
        binding: Dict[str, int] = {}

        def backtrack(depth: int) -> None:
            if depth == len(order):
                results.append(tuple(binding[v] for v in pattern.variables))
                return
            var = order[depth]
            for node in candidates[var]:
                binding[var] = node
                if all(
                    self._reaches(binding[src], binding[dst])
                    for src, dst in checks_at[var]
                ):
                    backtrack(depth + 1)
            binding.pop(var, None)

        backtrack(0)
        return results

    def match_set(self, pattern: GraphPattern) -> Set[Tuple[int, ...]]:
        return set(self.match(pattern))
