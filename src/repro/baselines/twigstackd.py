"""TSD — the TwigStackD-style holistic baseline (paper Section 5.1).

Chen et al. [11] match twig patterns over *DAGs* with a two-phase
reachability test (spanning-tree intervals, then the SSPI for the
"remaining" non-tree edges) and a buffering scheme: nodes that match at
least one reachability condition are buffered bottom-up with links to the
partner candidates they reach, and fully-matched patterns are enumerated
from the buffer pools once a top-most candidate completes.

This module reconstructs that design from the paper's description:

* :class:`SSPI`-backed reachability (interval first, closure chase after);
* per-pattern-node *buffer pools*, filled bottom-up (pattern leaves
  first); a candidate enters its pool only if, for every pattern child,
  it reaches at least one already-buffered candidate — and the links to
  those partners are kept, exactly the "maintains all the corresponding
  links among those nodes" step;
* a final top-down enumeration of the pools along the links.

The characteristic cost profile is preserved: fine on sparse DAGs, and
degrading as density grows, because every buffered candidate pays SSPI
closure probes against all partner candidates ("high overhead of
accessing edge transitive closures").  TSD supports *tree-shaped*
patterns over *DAG* data, the same restriction the paper imposes when
comparing against it (Figure 5 uses path and tree patterns on a DAG).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..graph.digraph import DiGraph
from ..graph.traversal import is_dag
from ..labeling.sspi import SSPI
from ..query.pattern import GraphPattern, PatternError


@dataclass
class TSDMetrics:
    """Instrumentation for the Figure 5 comparison."""

    elapsed_seconds: float = 0.0
    buffered_nodes: int = 0
    link_count: int = 0
    closure_probes: int = 0
    result_rows: int = 0


class TwigStackD:
    """Holistic tree-pattern matching over a DAG."""

    def __init__(self, dag: DiGraph, sspi: Optional[SSPI] = None) -> None:
        if not is_dag(dag):
            raise ValueError(
                "TwigStackD requires a DAG (paper Section 5.1: it 'can be "
                "only used ... over a special class of directed graphs')"
            )
        self.dag = dag
        self.sspi = sspi if sspi is not None else SSPI(dag)

    # ------------------------------------------------------------------
    def match(self, pattern: GraphPattern) -> Tuple[List[Tuple[int, ...]], TSDMetrics]:
        """All matches of a tree-shaped pattern, with run metrics."""
        if not pattern.is_tree() and pattern.node_count > 1:
            raise PatternError(
                "TwigStackD handles tree patterns only; use the R-join engine "
                "for general graph patterns"
            )
        metrics = TSDMetrics()
        started = time.perf_counter()
        probes_before = self.sspi.closure_probes

        extents = self.dag.extents()
        if pattern.node_count == 1:
            var = pattern.variables[0]
            rows = [(node,) for node in extents.get(pattern.label(var), ())]
            metrics.result_rows = len(rows)
            metrics.elapsed_seconds = time.perf_counter() - started
            return rows, metrics

        root = pattern.root()
        # bottom-up pool fill: children before parents
        post_order: List[str] = []

        def visit(var: str) -> None:
            for child in pattern.children(var):
                visit(child)
            post_order.append(var)

        visit(root)

        # pools[q] = candidate data nodes; links[(q, node)][child_q] = partners
        pools: Dict[str, List[int]] = {}
        links: Dict[Tuple[str, int], Dict[str, List[int]]] = {}
        for q in post_order:
            label = pattern.label(q)
            children = pattern.children(q)
            pool: List[int] = []
            # candidates in document order (sorted by spanning-tree preorder),
            # as the stream-based original consumes them
            candidates = sorted(
                extents.get(label, ()), key=lambda n: self.sspi.tree.start[n]
            )
            for node in candidates:
                partner_map: Dict[str, List[int]] = {}
                satisfied = True
                for child_q in children:
                    partners = [
                        p for p in pools.get(child_q, []) if self.sspi.reaches(node, p)
                    ]
                    if not partners:
                        satisfied = False
                        break
                    partner_map[child_q] = partners
                if satisfied:
                    pool.append(node)
                    links[(q, node)] = partner_map
                    metrics.buffered_nodes += 1
                    metrics.link_count += sum(len(p) for p in partner_map.values())
            pools[q] = pool

        # top-down enumeration of fully matched patterns along the links:
        # subtrees under distinct children are independent, so the matches
        # rooted at (q, node) are the product of per-child partner choices
        variables = pattern.variables

        def assignments(q: str, node: int):
            children = pattern.children(q)
            if not children:
                yield {q: node}
                return
            partner_map = links[(q, node)]

            def per_child(idx: int, acc: Dict[str, int]):
                if idx == len(children):
                    yield acc
                    return
                child_q = children[idx]
                for partner in partner_map[child_q]:
                    for sub in assignments(child_q, partner):
                        merged = dict(acc)
                        merged.update(sub)
                        yield from per_child(idx + 1, merged)

            yield from per_child(0, {q: node})

        results: List[Tuple[int, ...]] = []
        for root_node in pools.get(root, []):
            for binding in assignments(root, root_node):
                results.append(tuple(binding[v] for v in variables))

        metrics.result_rows = len(results)
        metrics.closure_probes = self.sspi.closure_probes - probes_before
        metrics.elapsed_seconds = time.perf_counter() - started
        return results, metrics
