"""INT-DP — the sort-merge multi-R-join baseline (paper Section 5.2).

Wang et al. [28] process one R-join ``T_X ⋈_{X->Y} T_Y`` with the *IGMJ*
algorithm: condense the data graph to a DAG, assign each node the
multi-interval + postorder code of Agrawal et al. [2], form an ``Xlist``
(one entry per interval of each X-labeled node, sorted by interval start
ascending then end descending) and a ``Ylist`` (Y-labeled nodes sorted by
postorder), and answer the join with a single synchronized scan that
maintains the set of intervals stabbing the current postorder.

Multi-join processing (the paper's INT-DP competitor) runs IGMJ joins in
a dynamic-programming-selected order — but, unlike the cluster-based
R-join index, the temporal table must be *re-sorted before every join*
("for processing (T_R ⋈_{D->E} T_E) it needs to sort all D-labeled nodes
in T_R based on their intervals ... The main extra cost is the sorting
cost").  Every sort here is materialized through a heap file so its page
traffic lands on the shared I/O counters, and the count of sort passes is
reported in :class:`IGMJMetrics` — the quantity behind DP beating INT-DP
in Figure 5.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..graph.digraph import DiGraph
from ..labeling.interval import MultiIntervalCode, build_multi_interval
from ..query.pattern import Condition, GraphPattern, PatternError
from ..storage.buffer import DEFAULT_BUFFER_BYTES, BufferPool
from ..storage.extsort import external_sort
from ..storage.heapfile import HeapFile
from ..storage.pages import DiskManager
from ..storage.stats import IOStats


@dataclass
class IGMJMetrics:
    """Instrumentation for the Figure 5 comparison."""

    elapsed_seconds: float = 0.0
    sorts: int = 0
    sorted_entries: int = 0
    joins: int = 0
    io: Optional[IOStats] = None
    result_rows: int = 0


def _merge_join(
    xlist: Sequence[Tuple[int, int, object]],
    ylist: Sequence[Tuple[int, object]],
    emit,
) -> None:
    """The IGMJ single-scan interval/point merge.

    ``xlist`` entries are (lo, hi, payload) sorted by (lo asc, hi desc);
    ``ylist`` entries are (post, payload) sorted by post ascending.  For
    every y, ``emit(x_payload, y_payload)`` fires for each interval
    stabbing ``post(y)``.  Intervals of one node are disjoint, so a node
    never double-emits for the same y.
    """
    active: List[Tuple[int, int, object]] = []  # heap keyed by hi
    i = 0
    for post, y_payload in ylist:
        while i < len(xlist) and xlist[i][0] <= post:
            lo, hi, x_payload = xlist[i]
            heapq.heappush(active, (hi, lo, x_payload))
            i += 1
        while active and active[0][0] < post:
            heapq.heappop(active)
        for hi, lo, x_payload in active:
            if lo <= post:  # heap order is by hi; lo needs an explicit check
                emit(x_payload, y_payload)


class IGMJEngine:
    """Graph pattern matching with DP-ordered IGMJ sort-merge R-joins."""

    def __init__(
        self,
        graph: DiGraph,
        code: Optional[MultiIntervalCode] = None,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
    ) -> None:
        self.graph = graph
        self.code = code if code is not None else build_multi_interval(graph)
        self.stats = IOStats()
        self.pool = BufferPool(
            DiskManager(), capacity_bytes=buffer_bytes, stats=self.stats
        )
        self._pair_count_cache: Dict[Tuple[str, str], int] = {}
        # The base Xlists/Ylists are on-disk structures in Wang et al.'s
        # system, so they live in heap files here too — reading one for a
        # join costs page I/O exactly like scanning a base table does for
        # the R-join engines.
        self._xlist_files: Dict[str, HeapFile] = {}
        self._ylist_files: Dict[str, HeapFile] = {}
        self._materialize_base_lists()
        self.pool.flush_all()

    def _materialize_base_lists(self) -> None:
        for label, nodes in sorted(self.graph.extents().items()):
            xlist: List[Tuple[int, int, int]] = []
            for node in nodes:
                for lo, hi in self.code.intervals[node]:
                    xlist.append((lo, hi, node))
            xlist.sort(key=lambda e: (e[0], -e[1]))
            xfile = HeapFile(self.pool, name=f"xlist.{label}")
            xfile.extend(xlist)
            self._xlist_files[label] = xfile

            ylist = sorted((self.code.post[node], node) for node in nodes)
            yfile = HeapFile(self.pool, name=f"ylist.{label}")
            yfile.extend(ylist)
            self._ylist_files[label] = yfile

    # ------------------------------------------------------------------
    # base lists (each call scans the stored list: page I/O is charged)
    # ------------------------------------------------------------------
    def _base_xlist(self, label: str) -> List[Tuple[int, int, int]]:
        xfile = self._xlist_files.get(label)
        return list(xfile.records()) if xfile is not None else []

    def _base_ylist(self, label: str) -> List[Tuple[int, int]]:
        yfile = self._ylist_files.get(label)
        return list(yfile.records()) if yfile is not None else []

    def pair_count(self, x_label: str, y_label: str) -> int:
        """Exact ``|T_X ⋈ T_Y|`` via one counting merge (cached).

        INT-DP's order selection uses these statistics the way the paper's
        Section 4.1 DP uses precomputed base join sizes.
        """
        key = (x_label, y_label)
        cached = self._pair_count_cache.get(key)
        if cached is not None:
            return cached
        count = 0

        def emit(_x, _y) -> None:
            nonlocal count
            count += 1

        _merge_join(self._base_xlist(x_label), self._base_ylist(y_label), emit)
        self._pair_count_cache[key] = count
        return count

    # ------------------------------------------------------------------
    # order selection (Section 4.1 DP, over IGMJ joins)
    # ------------------------------------------------------------------
    def _order_conditions(
        self, pattern: GraphPattern
    ) -> List[Tuple[Condition, str]]:
        """Greedy-DP join order: (condition, mode) with mode in
        ``{"seed", "forward", "reverse", "selection"}``.

        A compact left-deep DP identical in spirit to Section 4.1: states
        are evaluated-edge subsets; costs are estimated rows processed
        (each IGMJ join scans + sorts its whole temporal input, so rows
        are the right cost unit here).
        """
        extent = {v: len(self.graph.extent(pattern.label(v))) for v in pattern.variables}

        def selectivity(condition: Condition) -> float:
            x_label, y_label = pattern.condition_labels(condition)
            denom = extent[condition[0]] * extent[condition[1]]
            return self.pair_count(x_label, y_label) / denom if denom else 0.0

        best: Dict[frozenset, Tuple[float, float, List[Tuple[Condition, str]]]] = {}
        for condition in pattern.conditions:
            rows = float(self.pair_count(*pattern.condition_labels(condition)))
            best[frozenset([condition])] = (rows, rows, [(condition, "seed")])
        frontier = sorted(best, key=len)
        idx = 0
        while idx < len(frontier):
            state = frontier[idx]
            idx += 1
            cost, rows, order = best[state]
            bound = {v for c in state for v in c}
            for condition in pattern.conditions:
                if condition in state:
                    continue
                src, dst = condition
                if src in bound and dst in bound:
                    mode = "selection"
                    new_rows = rows * selectivity(condition)
                elif src in bound:
                    mode = "forward"
                    new_rows = rows * selectivity(condition) * extent[dst]
                elif dst in bound:
                    mode = "reverse"
                    new_rows = rows * selectivity(condition) * extent[src]
                else:
                    continue
                new_state = state | {condition}
                candidate = (cost + rows + new_rows, new_rows, order + [(condition, mode)])
                if new_state not in best or candidate[0] < best[new_state][0]:
                    known = new_state in best
                    best[new_state] = candidate
                    if not known:
                        frontier.append(new_state)
        final = best[frozenset(pattern.conditions)]
        return final[2]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def match(self, pattern: GraphPattern) -> Tuple[List[Tuple[int, ...]], IGMJMetrics]:
        """All matches via DP-ordered IGMJ joins, plus run metrics."""
        metrics = IGMJMetrics()
        io_before = self.stats.snapshot()
        started = time.perf_counter()

        if pattern.node_count == 1:
            var = pattern.variables[0]
            rows = [(node,) for node in self.graph.extent(pattern.label(var))]
            metrics.result_rows = len(rows)
            metrics.elapsed_seconds = time.perf_counter() - started
            metrics.io = self.stats.delta_since(io_before)
            return rows, metrics

        order = self._order_conditions(pattern)
        columns: List[str] = []
        current: Optional[HeapFile] = None

        def materialize(rows_iter) -> HeapFile:
            heap = HeapFile(self.pool, name="igmj.temp")
            for row in rows_iter:
                heap.append(row)
            return heap

        for condition, mode in order:
            src, dst = condition
            x_label, y_label = pattern.condition_labels(condition)
            if mode == "seed":
                pairs: List[Tuple[int, int]] = []
                _merge_join(
                    self._base_xlist(x_label),
                    self._base_ylist(y_label),
                    lambda x, y: pairs.append((x, y)),
                )
                metrics.joins += 1
                columns = [src, dst]
                current = materialize(pairs)
                continue
            if mode == "selection":
                sp, dp = columns.index(src), columns.index(dst)
                survivors = [
                    row
                    for row in current.records()
                    if self.code.reaches(row[sp], row[dp])
                ]
                current = materialize(survivors)
                continue
            if mode == "forward":
                # temporal holds the source: sort its rows by interval.
                # The sorted run is materialized (written + re-read), the
                # external-sort pass the paper charges INT-DP for.
                position = columns.index(src)

                def interval_entries():
                    for row in current.records():
                        for lo, hi in self.code.intervals[row[position]]:
                            yield (lo, hi, tuple(row))

                sorted_run, sort_stats = external_sort(
                    self.pool, interval_entries(), key=lambda e: (e[0], -e[1])
                )
                metrics.sorts += 1
                metrics.sorted_entries += sort_stats.input_records
                out: List[tuple] = []
                _merge_join(
                    list(sorted_run.records()),
                    self._base_ylist(y_label),
                    lambda row, y: out.append(tuple(row) + (y,)),
                )
                metrics.joins += 1
                columns = columns + [dst]
                current = materialize(out)
                continue
            if mode == "reverse":
                # temporal holds the target: sort its rows by postorder
                position = columns.index(dst)
                sorted_run, sort_stats = external_sort(
                    self.pool,
                    ((self.code.post[row[position]], tuple(row))
                     for row in current.records()),
                    key=lambda e: e[0],
                )
                metrics.sorts += 1
                metrics.sorted_entries += sort_stats.input_records
                out = []
                _merge_join(
                    self._base_xlist(x_label),
                    list(sorted_run.records()),
                    lambda x, row: out.append(tuple(row) + (x,)),
                )
                metrics.joins += 1
                columns = columns + [src]
                current = materialize(out)
                continue
            raise PatternError(f"unknown join mode {mode!r}")  # pragma: no cover

        positions = [columns.index(v) for v in pattern.variables]
        results = [tuple(row[p] for p in positions) for row in current.records()]
        metrics.result_rows = len(results)
        metrics.elapsed_seconds = time.perf_counter() - started
        metrics.io = self.stats.delta_since(io_before)
        return results, metrics
