"""The paper's motivating example: business-relationship patterns.

Section 1: "based on business relationships, a graph pattern can be
specified as to find Supplier, Retailer, Whole-seller, and Bank such that
Supplier directly or indirectly supplies products to Retailer and
Whole-seller, and all of them receive services from the same Bank,
directly or indirectly."

This example synthesizes a multi-tier trade network (suppliers ->
distributors -> wholesellers/retailers, banks servicing firms through
correspondent-bank chains) and runs exactly that pattern.  Note the
pattern is a *graph* (not a tree): Bank must reach three other pattern
nodes, which is where R-semijoin interleaving (DPS) shines.

Run:  python examples/supply_chain.py
"""

import random

from repro import DiGraph, GraphEngine


def build_trade_network(
    suppliers: int = 40,
    distributors: int 	= 60,
    wholesellers: int = 50,
    retailers: int = 120,
    banks: int = 12,
    seed: int = 42,
) -> DiGraph:
    """A four-tier trade network with a correspondent-banking overlay.

    Edges mean "supplies / services, directly": supplier -> distributor,
    distributor -> distributor | wholeseller | retailer, and
    bank -> bank | firm.  Reachability = "directly or indirectly".
    """
    rng = random.Random(seed)
    g = DiGraph()
    tier = {
        "supplier": [g.add_node("supplier") for _ in range(suppliers)],
        "distributor": [g.add_node("distributor") for _ in range(distributors)],
        "wholeseller": [g.add_node("wholeseller") for _ in range(wholesellers)],
        "retailer": [g.add_node("retailer") for _ in range(retailers)],
        "bank": [g.add_node("bank") for _ in range(banks)],
    }
    for s in tier["supplier"]:
        for d in rng.sample(tier["distributor"], rng.randint(1, 3)):
            g.add_edge(s, d)
    for d in tier["distributor"]:
        if rng.random() < 0.3:  # sub-distribution chains
            g.add_edge(d, rng.choice(tier["distributor"]))
        for w in rng.sample(tier["wholeseller"], rng.randint(0, 2)):
            g.add_edge(d, w)
        for r in rng.sample(tier["retailer"], rng.randint(1, 4)):
            g.add_edge(d, r)
    for w in tier["wholeseller"]:
        for r in rng.sample(tier["retailer"], rng.randint(0, 3)):
            g.add_edge(w, r)
    # correspondent banking: a few hub banks service smaller banks which
    # service firms; "receive services from" points bank -> firm
    hubs = tier["bank"][: max(1, banks // 4)]
    for hub in hubs:
        for b in tier["bank"]:
            if b not in hubs and rng.random() < 0.6:
                g.add_edge(hub, b)
    firms = (
        tier["supplier"] + tier["distributor"]
        + tier["wholeseller"] + tier["retailer"]
    )
    for b in tier["bank"]:
        for f in rng.sample(firms, rng.randint(3, 10)):
            g.add_edge(b, f)
    return g


def main() -> None:
    g = build_trade_network()
    print(f"trade network: {g.node_count} firms+banks, {g.edge_count} edges")
    engine = GraphEngine(g)

    # the paper's Section 1 pattern, verbatim in our pattern language:
    pattern = (
        "s:supplier -> r:retailer, s -> w:wholeseller, "
        "b:bank -> s, b -> r, b -> w"
    )
    print(f"\npattern: {pattern}")
    print(engine.explain(pattern, optimizer="dps"))

    result = engine.match(pattern, optimizer="dps")
    print(f"\n{len(result)} (supplier, retailer, wholeseller, bank) matches")
    for row in result.rows[:5]:
        binding = dict(zip(result.columns, row))
        print(f"  bank {binding['b']} services supplier {binding['s']} "
              f"-> retailer {binding['r']} & wholeseller {binding['w']}")

    dp = engine.match(pattern, optimizer="dp")
    assert dp.as_set() == result.as_set()
    print(
        f"\nDPS: {result.metrics.elapsed_seconds*1e3:.1f} ms "
        f"({result.metrics.physical_io} phys I/O, "
        f"peak intermediate {result.metrics.peak_temporal_rows} rows)\n"
        f"DP : {dp.metrics.elapsed_seconds*1e3:.1f} ms "
        f"({dp.metrics.physical_io} phys I/O, "
        f"peak intermediate {dp.metrics.peak_temporal_rows} rows)"
    )


if __name__ == "__main__":
    main()
