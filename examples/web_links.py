"""Hypertext / web-services motivation: reachability over a site graph.

The paper's introduction opens with "hypertext data, semi-structured
data" and "finding web-services connection patterns in WWW" as motivating
domains.  This example builds a synthetic multi-site web graph — sites
containing sections containing pages, hyperlinks within and across sites,
API endpoints called by pages — and answers connection-pattern queries:

* which (portal, api) pairs are connected through a chain of links that
  passes a login page (reachability, not adjacency — exactly the paper's
  semantics);
* streamed probes: "show me *three examples* of a page that can reach
  both a checkout endpoint and a help page", using the pipelined
  executor's LIMIT pushdown instead of computing all matches.

Run:  python examples/web_links.py
"""

import random

from repro import DiGraph, GraphEngine


def build_web_graph(
    sites: int = 12,
    sections_per_site: int = 4,
    pages_per_section: int = 14,
    apis: int = 30,
    cross_links: int = 300,
    seed: int = 23,
) -> DiGraph:
    """Sites -> sections -> pages, plus hyperlinks and API calls.

    Labels: ``portal`` (site home), ``section``, ``page``, ``login``,
    ``checkout``, ``help``, ``api``.  A few pages per site are logins,
    checkouts or help pages; pages hyperlink forward within their section,
    occasionally across sites, and call API endpoints.
    """
    rng = random.Random(seed)
    g = DiGraph()
    api_nodes = [g.add_node("api") for _ in range(apis)]
    all_pages = []
    for _ in range(sites):
        portal = g.add_node("portal")
        for _ in range(sections_per_site):
            section = g.add_node("section")
            g.add_edge(portal, section)
            section_pages = []
            for index in range(pages_per_section):
                if index == 0:
                    label = "login"
                elif index == 1 and rng.random() < 0.7:
                    label = "checkout"
                elif index == 2 and rng.random() < 0.5:
                    label = "help"
                else:
                    label = "page"
                page = g.add_node(label)
                g.add_edge(section, page)
                section_pages.append(page)
                all_pages.append(page)
            # forward hyperlinks within the section (browse flow)
            for a, b in zip(section_pages, section_pages[1:]):
                g.add_edge(a, b)
            # pages call APIs
            for page in section_pages:
                if rng.random() < 0.3:
                    g.add_edge(page, rng.choice(api_nodes))
    # cross-site hyperlinks
    for _ in range(cross_links):
        a, b = rng.choice(all_pages), rng.choice(all_pages)
        if a != b:
            g.add_edge(a, b)
    return g


def main() -> None:
    g = build_web_graph()
    print(f"web graph: {g.node_count} nodes, {g.edge_count} edges")
    for label in ("portal", "section", "page", "login", "checkout", "help", "api"):
        print(f"  {label:>9}: {len(g.extent(label))}")

    engine = GraphEngine(g)

    # Q1: portals whose login flow eventually reaches an API endpoint
    q1 = "portal -> login, login -> api"
    r1 = engine.match(q1)
    print(f"\nQ1 ({q1}): {len(r1)} matches, "
          f"{r1.metrics.elapsed_seconds * 1e3:.1f} ms")

    # Q2: a page connected (by link chains) to both checkout and help —
    # streamed, first three examples only
    q2 = "p:page -> co:checkout, p -> h:help"
    print(f"\nQ2 ({q2}), first three via LIMIT pushdown:")
    for row in engine.match_iter(q2, limit=3):
        p, co, h = row
        print(f"  page {p} reaches checkout {co} and help {h}")

    # the full count, for contrast (and a DP/DPS cross-check)
    full = engine.match(q2, optimizer="dps")
    dp = engine.match(q2, optimizer="dp")
    assert full.as_set() == dp.as_set()
    print(f"  (full result: {len(full)} matches; "
          f"DPS {full.metrics.elapsed_seconds * 1e3:.1f} ms / "
          f"DP {dp.metrics.elapsed_seconds * 1e3:.1f} ms)")

    # Q3: cross-service connection pattern from the intro: two portals
    # whose pages converge on the same API
    q3 = "p1:portal -> a:api, p2:portal -> a"
    r3 = engine.match(q3)
    distinct_pairs = {(a, b) for a, b, _ in r3.rows if a != b}
    print(f"\nQ3 ({q3}): {len(r3)} matches, "
          f"{len(distinct_pairs)} distinct portal pairs share an API")


if __name__ == "__main__":
    main()
