"""Operating the system over time: persist the offline phase, apply updates.

The paper's indexes are built offline; two operational questions follow
for any real deployment:

1. *How do I avoid rebuilding the 2-hop cover on every restart?*
   — persist it: ``save_database`` / ``load_database`` (JSON, atomic).
2. *What happens when the graph changes?*  The paper defers to the 2-hop
   cover update problem [24]; this library ships the standard practical
   hybrid: ``DynamicReachability`` answers queries through the static
   labeling plus a small set of patch edges, folding them into a fresh
   labeling when they accumulate.

Run:  python examples/persistence_and_updates.py
"""

import os
import tempfile
import time

from repro import (
    DynamicReachability,
    GraphEngine,
    load_database,
    save_database,
    xmark,
)


def main() -> None:
    data = xmark.generate(factor=0.3, entity_budget=1500, seed=7)
    graph = data.graph
    print(f"data graph: {graph.node_count} nodes, {graph.edge_count} edges")

    # --- persistence -----------------------------------------------------
    started = time.perf_counter()
    engine = GraphEngine(graph)
    build_seconds = time.perf_counter() - started
    print(f"offline build (2-hop + tables + index): {build_seconds:.2f}s")

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "auctions.db.json")
        save_database(engine.db, path)
        size_kb = os.path.getsize(path) / 1024
        print(f"saved to {path} ({size_kb:.0f} KiB)")

        started = time.perf_counter()
        reloaded = GraphEngine.from_database(load_database(path))
        reload_seconds = time.perf_counter() - started
        print(f"reloaded in {reload_seconds:.2f}s "
              f"({build_seconds / reload_seconds:.1f}x faster than rebuild)")

        query = "person -> watch, watch -> open_auction"
        fresh = engine.match(query)
        reheated = reloaded.match(query)
        assert fresh.as_set() == reheated.as_set()
        print(f"query agreement after reload: {len(fresh)} matches both ways")

    # --- incremental updates ----------------------------------------------
    oracle = DynamicReachability(graph, labeling=engine.db.labeling,
                                 auto_rebuild_after=64)
    person = data.persons[0]
    auction = data.open_auctions[-1]
    print(f"\nbefore update: person {person} ~> auction {auction}? "
          f"{oracle.reaches(person, auction)}")

    # the person starts watching that auction: one new IDREF edge
    watch = oracle.add_node("watch")
    oracle.add_edge(person, watch)
    oracle.add_edge(watch, auction)
    assert oracle.reaches(person, auction)
    print(f"after adding a watch edge: person ~> auction? "
          f"{oracle.reaches(person, auction)} "
          f"(patch set: {oracle.patch_size} edges)")

    # updates keep answering correctly as they accumulate, and fold into a
    # fresh static labeling automatically past the threshold
    for _ in range(70):
        bidder = oracle.add_node("bidder")
        oracle.add_edge(auction, bidder)
    print(f"after 70 more updates: rebuilds={oracle.rebuild_count}, "
          f"patch set now {oracle.patch_size} edges")
    assert oracle.reaches(person, auction)


if __name__ == "__main__":
    main()
