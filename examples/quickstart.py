"""Quickstart: build a graph database and match patterns over it.

Builds an XMark-like auction data graph, constructs the 2-hop graph
codes, base tables, cluster-based R-join index and W-table (all inside
``GraphEngine``), and answers a few reachability patterns — showing the
optimized plan, the matches, and the I/O metrics.

Run:  python examples/quickstart.py
"""

from repro import GraphEngine, xmark


def main() -> None:
    # 1. a data graph: an auction site with items, people, categories and
    #    auctions; ID/IDREF links are edges just like parent-child links
    data = xmark.generate(factor=0.2, entity_budget=1200, seed=7)
    graph = data.graph
    print(f"data graph: {graph.node_count} nodes, {graph.edge_count} edges, "
          f"{len(graph.alphabet())} labels")

    # 2. the engine: computes the 2-hop cover and loads the graph database
    engine = GraphEngine(graph)
    summary = engine.stats_summary()
    print(f"2-hop cover: |H|={summary['cover_size']} "
          f"(|H|/|V|={summary['cover_ratio']:.2f})\n")

    # 3. a pattern in the paper's style: each edge is a reachability
    #    condition "some X-labeled node reaches some Y-labeled node"
    pattern = "person -> watch, watch -> open_auction, open_auction -> itemref"
    print(f"pattern: {pattern}")
    print(engine.explain(pattern, optimizer="dps"))
    result = engine.match(pattern, optimizer="dps")
    print(f"\n{len(result)} matches; first three:")
    for row in result.rows[:3]:
        print("  " + ", ".join(f"{c}={v}" for c, v in zip(result.columns, row)))
    print(f"\nmetrics: {result.metrics.elapsed_seconds * 1000:.1f} ms, "
          f"{result.metrics.physical_io} physical / "
          f"{result.metrics.logical_io} logical page I/Os")

    # 4. the same query under the R-join-only DP optimizer, for contrast
    dp = engine.match(pattern, optimizer="dp")
    assert dp.as_set() == result.as_set()
    print(f"DP optimizer: {dp.metrics.elapsed_seconds * 1000:.1f} ms, "
          f"{dp.metrics.physical_io} physical I/Os "
          f"(same {len(dp)} matches)")

    # 5. named variables allow repeated labels: two different persons
    #    connected through one auction
    pattern2 = (
        "seller:seller -> p1:person, auction:open_auction -> seller, "
        "auction -> bidder:bidder, bidder -> p2:person"
    )
    result2 = engine.match(pattern2)
    print(f"\nseller/bidder pattern: {len(result2)} matches")


if __name__ == "__main__":
    main()
