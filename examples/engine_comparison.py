"""Mini reproduction of the paper's evaluation, end to end, in one script.

Runs all four competitors (TSD, INT-DP, DP, DPS) over an XMark DAG and
prints a Figure 5/6-style comparison table: elapsed time, simulated
physical/logical page I/O, and modeled time (wall + disk latency per
counted page transfer).  Every engine's match count is cross-checked.

Run:  python examples/engine_comparison.py
"""

from repro import GraphEngine, IGMJEngine, TwigStackD, xmark
from repro.workloads.patterns import PatternFactory
from repro.workloads.runner import (
    check_agreement,
    format_records,
    run_igmj,
    run_rjoin,
    run_tsd,
)


def main() -> None:
    # a DAG dataset (TSD only supports DAGs): watches and catgraph edges
    # are the cycle-creating IDREF families, so they are disabled
    data = xmark.generate(
        factor=0.3,
        entity_budget=1500,
        seed=7,
        watches_per_person=0.0,
        catgraph_edges_per_category=0.0,
    )
    graph = data.graph
    print(f"XMark DAG: {graph.node_count} nodes, {graph.edge_count} edges")

    buffer_bytes = 128 * 1024
    engine = GraphEngine(graph, buffer_bytes=buffer_bytes)
    tsd = TwigStackD(graph)
    igmj = IGMJEngine(graph, buffer_bytes=buffer_bytes)
    factory = PatternFactory(engine.db.catalog, seed=11)

    records = []
    workload = {}
    workload.update(factory.figure4_paths())
    workload.update(factory.figure4_trees())
    for name, pattern in workload.items():
        records.append(run_tsd(tsd, name, pattern))
        records.append(run_igmj(igmj, name, pattern))
        records.append(run_rjoin(engine, name, pattern, "dp"))
        records.append(run_rjoin(engine, name, pattern, "dps"))

    mismatches = check_agreement(records)
    assert not mismatches, f"engines disagree: {mismatches}"

    print()
    print(format_records(records))
    print("\nall engines agree on every query's match count")

    # aggregate view per engine
    print("\ntotals per engine:")
    by_engine = {}
    for rec in records:
        agg = by_engine.setdefault(rec.engine, [0.0, 0, 0.0])
        agg[0] += rec.elapsed_seconds
        agg[1] += rec.physical_io
        agg[2] += rec.modeled_seconds
    for engine_name, (elapsed, io, modeled) in sorted(by_engine.items()):
        print(
            f"  {engine_name:>7}: elapsed={elapsed:8.3f}s  "
            f"physical I/O={io:>7}  modeled={modeled:8.3f}s"
        )


if __name__ == "__main__":
    main()
