"""Bibliography patterns: citation chains and collaboration reach.

The paper's introduction motivates graph pattern matching with "finding
research collaboration patterns, and finding research paper citation
connection in archived bibliography datasets".  This example builds a
synthetic bibliography graph — authors write papers, papers cite earlier
papers, venues publish papers — and asks reachability questions such as:

* which (author, survey) pairs are connected through a citation chain
  that passes through a highly-cited "seminal" paper;
* which authors influence a venue only indirectly (their work is cited,
  transitively, by something the venue published).

Run:  python examples/citations.py
"""

import random

from repro import DiGraph, GraphEngine, NaiveMatcher, parse_pattern


def build_bibliography(
    authors: int = 80,
    papers: int = 400,
    seminal: int = 8,
    surveys: int = 25,
    venues: int = 10,
    seed: int = 13,
) -> DiGraph:
    """Authors -> papers they wrote; papers -> papers they cite (older
    only, so citations are acyclic); venues -> papers they published.

    A few "seminal" papers attract extra citations; "surveys" are late
    papers that cite broadly.
    """
    rng = random.Random(seed)
    g = DiGraph()
    author_nodes = [g.add_node("author") for _ in range(authors)]
    venue_nodes = [g.add_node("venue") for _ in range(venues)]
    paper_nodes = []
    seminal_nodes = []
    for index in range(papers):
        is_seminal = len(seminal_nodes) < seminal and index < papers // 4
        is_survey = index >= papers - surveys
        label = "seminal" if is_seminal else ("survey" if is_survey else "paper")
        node = g.add_node(label)
        # authorship
        for author in rng.sample(author_nodes, rng.randint(1, 3)):
            g.add_edge(author, node)
        # publication
        g.add_edge(rng.choice(venue_nodes), node)
        # citations: only to earlier papers => acyclic citation graph
        if paper_nodes:
            pool = seminal_nodes if (seminal_nodes and rng.random() < 0.4) else paper_nodes
            cites = rng.randint(1, 6 if is_survey else 3)
            for cited in rng.sample(pool, min(cites, len(pool))):
                g.add_edge(node, cited)
        paper_nodes.append(node)
        if is_seminal:
            seminal_nodes.append(node)
    return g


def main() -> None:
    g = build_bibliography()
    print(f"bibliography: {g.node_count} nodes, {g.edge_count} edges")
    for label in ("author", "paper", "seminal", "survey", "venue"):
        print(f"  {label:>8}: {len(g.extent(label))}")

    engine = GraphEngine(g)

    # Q1: influence chains — a survey whose citation chain reaches a
    # seminal paper written by some author
    q1 = "survey -> seminal, author -> seminal"
    r1 = engine.match(q1)
    print(f"\nQ1 ({q1}): {len(r1)} matches")

    # Q2: collaboration-at-a-distance — two authors whose work meets at
    # the same seminal paper through citation chains
    q2 = "a1:author -> p1:survey, p1 -> s:seminal, a2:author -> s"
    r2 = engine.match(q2)
    print(f"Q2 ({q2}): {len(r2)} matches")

    # Q3: venue influence — a venue that (transitively) published work
    # leading to a seminal paper that a survey also reaches
    q3 = "venue -> survey, survey -> seminal"
    r3 = engine.match(q3, optimizer="dps")
    r3_dp = engine.match(q3, optimizer="dp")
    assert r3.as_set() == r3_dp.as_set()
    print(f"Q3 ({q3}): {len(r3)} matches "
          f"(DPS {r3.metrics.elapsed_seconds*1e3:.1f} ms "
          f"vs DP {r3_dp.metrics.elapsed_seconds*1e3:.1f} ms)")

    # spot-check against the brute-force matcher on the smallest query
    naive = NaiveMatcher(g).match_set(parse_pattern(q1))
    assert r1.as_set() == naive
    print("\ncross-checked Q1 against the naive matcher: OK")


if __name__ == "__main__":
    main()
