"""Concurrent differential suite: many clients, one engine, oracle rows.

The tentpole's correctness contract (ISSUE 10 / DESIGN.md Section 2.9):
with the service's global engine lock gone, any number of threads (or
dispatched worker processes) may execute queries against ONE shared
engine and every run must stay byte-identical to the single-threaded
oracle — same rows, same columns, same per-operator counters.  Nothing
about concurrency may leak into results.

Legs:

* direct-engine thread hammer on both tiers — the snapshot-backed
  (lock-free) tier and the live B+-tree (fine-grained lock) tier;
* the same hammer with ``REPRO_SANITIZE=1``, arming the runtime
  shard-isolation oracle at every sync choke point;
* a service leg in whole-query process-dispatch mode (rows over the
  wire vs. the library oracle);
* the acceptance test: with ``max_inflight=4`` on a snapshot engine the
  ``exec_span`` windows reported by concurrent responses overlap —
  admitted queries really execute simultaneously, not serially.

Concurrent runs use ``reset_counters=False``, matching the service's
execution model (``match_iter`` never cold-starts shared counters);
the pinned invariant that the center cache is counter-neutral makes
warm-vs-cold irrelevant to the compared metrics.
"""

import threading

import pytest

from repro import GraphEngine
from repro.db.persist import save_database
from repro.graph import xmark
from repro.query.physical.parallel import fork_available
from repro.service import (
    ServiceClient,
    ServiceConfig,
    rows_as_tuples,
    start_in_thread,
)
from repro.workloads.patterns import PatternFactory

THREADS = 4
ROUNDS = 2

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="process dispatch needs fork"
)


@pytest.fixture(scope="module")
def live_engine():
    data = xmark.generate(factor=0.1, entity_budget=400, seed=7)
    engine = GraphEngine(data.graph)
    yield engine
    engine.close_pool()


@pytest.fixture(scope="module")
def snapshot_engine(live_engine, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("concsnap") / "db.snap")
    save_database(live_engine.db, path)
    engine = GraphEngine.from_snapshot(path)
    yield engine
    engine.close_pool()


@pytest.fixture(scope="module")
def workload(live_engine):
    """Mixed acyclic paths + cyclic cores, each with its optimizer."""
    factory = PatternFactory(live_engine.db.catalog, seed=11)
    items = []
    for name, pattern in list(factory.figure4_paths().items())[:3]:
        items.append((name, pattern, "dps"))
    for name, pattern in factory.cyclic_patterns(("triangle",)).items():
        items.append((name, pattern, "wcoj"))
    return items


def op_counters(metrics):
    return [
        (op.operator, op.rows_in, op.rows_out, op.centers_probed, op.nodes_fetched)
        for op in metrics.operators
    ]


def build_oracle(engine, workload):
    """Single-threaded ground truth: rows, columns and per-op counters."""
    oracle = {}
    for name, pattern, optimizer in workload:
        result = engine.match(pattern, optimizer=optimizer, reset_counters=False)
        oracle[name] = {
            "columns": list(result.columns),
            "rows": list(result.rows),
            "counters": op_counters(result.metrics),
        }
    return oracle


def hammer(engine, workload, oracle, threads=THREADS, rounds=ROUNDS):
    """N threads run the whole workload against one shared engine."""
    barrier = threading.Barrier(threads)
    failures = []

    def body(tid):
        try:
            barrier.wait(timeout=30)
            for _ in range(rounds):
                for name, pattern, optimizer in workload:
                    result = engine.match(
                        pattern, optimizer=optimizer, reset_counters=False
                    )
                    expect = oracle[name]
                    assert list(result.columns) == expect["columns"], name
                    assert list(result.rows) == expect["rows"], name
                    assert op_counters(result.metrics) == expect["counters"], name
        except Exception as exc:  # noqa: BLE001 - surfaced to the test
            failures.append((tid, repr(exc)))

    workers = [
        threading.Thread(target=body, args=(tid,), daemon=True)
        for tid in range(threads)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=120)
        assert not worker.is_alive(), "hammer thread hung"
    assert failures == []


# ----------------------------------------------------------------------
# direct engine, both tiers
# ----------------------------------------------------------------------
class TestEngineHammer:
    def test_snapshot_tier_threads_match_oracle(self, snapshot_engine, workload):
        oracle = build_oracle(snapshot_engine, workload)
        hammer(snapshot_engine, workload, oracle)

    def test_live_tier_threads_match_oracle(self, live_engine, workload):
        oracle = build_oracle(live_engine, workload)
        hammer(live_engine, workload, oracle)

    def test_snapshot_tier_under_sanitizer(
        self, snapshot_engine, workload, monkeypatch
    ):
        """REPRO_SANITIZE=1 arms the shard-isolation oracle mid-hammer."""
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        oracle = build_oracle(snapshot_engine, workload)
        hammer(snapshot_engine, workload, oracle, threads=2, rounds=1)

    def test_live_tier_under_sanitizer(self, live_engine, workload, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        oracle = build_oracle(live_engine, workload)
        hammer(live_engine, workload, oracle, threads=2, rounds=1)


# ----------------------------------------------------------------------
# service legs
# ----------------------------------------------------------------------
def service_hammer(handle, workload, oracle, threads=THREADS):
    """N clients replay the workload over the wire; rows must match."""
    host, port = handle.address
    barrier = threading.Barrier(threads)
    failures = []
    spans = []
    spans_lock = threading.Lock()

    def body(tid):
        try:
            with ServiceClient(host, port, timeout=120) as client:
                barrier.wait(timeout=30)
                for name, pattern, optimizer in workload:
                    response = client.query(
                        str(pattern), optimizer=optimizer, timeout_ms=60_000
                    )
                    expect = oracle[name]
                    assert response["columns"] == expect["columns"], name
                    assert rows_as_tuples(response) == [
                        tuple(row) for row in expect["rows"]
                    ], name
                    assert 0.0 <= response["metrics"]["cache_hit_rate"] <= 1.0
                    with spans_lock:
                        spans.append(tuple(response["metrics"]["exec_span"]))
        except Exception as exc:  # noqa: BLE001 - surfaced to the test
            failures.append((tid, repr(exc)))

    workers = [
        threading.Thread(target=body, args=(tid,), daemon=True)
        for tid in range(threads)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=180)
        assert not worker.is_alive(), "service client thread hung"
    assert failures == []
    return spans


class TestServiceDifferential:
    def test_inline_live_tier_over_the_wire(self, live_engine, workload):
        oracle = build_oracle(live_engine, workload)
        handle = start_in_thread(
            live_engine, ServiceConfig(max_inflight=4, queue_depth=16)
        )
        try:
            assert handle.service.tier == "live-finegrained"
            service_hammer(handle, workload, oracle)
        finally:
            handle.stop()

    @needs_fork
    def test_process_dispatch_over_the_wire(self, snapshot_engine, workload):
        oracle = build_oracle(snapshot_engine, workload)
        handle = start_in_thread(
            snapshot_engine,
            ServiceConfig(max_inflight=2, queue_depth=16, dispatch="process"),
        )
        try:
            assert handle.service.tier == "snapshot-lockfree"
            assert handle.service.dispatch == "process"
            service_hammer(handle, workload, oracle, threads=THREADS)
        finally:
            handle.stop()


# ----------------------------------------------------------------------
# acceptance: overlapping execution windows at max_inflight=4
# ----------------------------------------------------------------------
def overlapping_pairs(spans):
    pairs = 0
    for i in range(len(spans)):
        for j in range(i + 1, len(spans)):
            a0, a1 = spans[i]
            b0, b1 = spans[j]
            if max(a0, b0) < min(a1, b1):
                pairs += 1
    return pairs


@needs_fork
def test_exec_windows_overlap_with_four_slots(snapshot_engine, workload):
    """max_inflight=4 on a snapshot engine => queries really overlap.

    Each response carries ``metrics.exec_span`` — a monotonic-clock
    ``[start, end]`` recorded around the query's execution (inside the
    worker for process dispatch; CLOCK_MONOTONIC is system-wide, so the
    spans are cross-process comparable).  With four slots and four
    concurrent clients, at least one pair of windows must intersect; a
    serializing engine lock would make every pair disjoint.
    """
    oracle = build_oracle(snapshot_engine, workload)
    handle = start_in_thread(
        snapshot_engine,
        ServiceConfig(max_inflight=4, queue_depth=16, dispatch="process"),
    )
    try:
        for attempt in range(3):
            spans = service_hammer(handle, workload, oracle, threads=4)
            assert len(spans) == 4 * len(workload)
            if overlapping_pairs(spans) > 0:
                break
        else:
            pytest.fail(f"no overlapping exec windows in 3 attempts: {spans}")
    finally:
        handle.stop()
