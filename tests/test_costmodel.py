"""Tests for the Section 4 cost model (Table 1 parameters, Eqs. 10-12)."""

import pytest

from repro.db.database import GraphDatabase
from repro.graph.generators import figure1_graph
from repro.query.costmodel import CostModel, CostParams
from repro.query.parser import parse_pattern


@pytest.fixture(scope="module")
def db():
    return GraphDatabase(figure1_graph())


@pytest.fixture(scope="module")
def model(db):
    pattern = parse_pattern("A -> C, B -> C, C -> D, D -> E, B -> E")
    return CostModel(db.catalog, pattern, CostParams())


class TestSizes:
    def test_base_join_size_equals_catalog(self, db, model):
        assert model.base_join_size(("B", "C")) == db.catalog.join_size("B", "C")

    def test_eq10_selectivity_in_unit_range(self, model):
        s = model.selection_selectivity(("B", "E"))
        assert 0.0 <= s <= 1.0

    def test_eq11_eq12_fanouts_consistent(self, db, model):
        """|T_R| * fanout must equal Eq. 11/12's |T_RS| estimate."""
        join = db.catalog.join_size("C", "D")
        fwd = model.join_fanout(("C", "D"), temporal_holds_source=True)
        rev = model.join_fanout(("C", "D"), temporal_holds_source=False)
        assert fwd == pytest.approx(join / db.catalog.extent_size("C"))
        assert rev == pytest.approx(join / db.catalog.extent_size("D"))

    def test_filter_survival_at_most_one(self, model):
        for condition in model.pattern.conditions:
            for direction in (True, False):
                assert 0.0 <= model.filter_survival(condition, direction) <= 1.0

    def test_zero_extent_handled(self, db):
        pattern = parse_pattern("A -> C")
        model = CostModel(db.catalog, pattern, CostParams())
        # fabricate a condition onto an empty label through the catalog API
        assert db.catalog.reduction_factor("Z", "C") == 0.0
        assert db.catalog.join_selectivity("Z", "C") == 0.0


class TestCosts:
    def test_costs_monotone_in_rows(self, model):
        assert model.scan_cost(10_000) > model.scan_cost(10)
        assert model.filter_cost(1000, 1, False) > model.filter_cost(10, 1, False)
        assert model.fetch_cost(100, 1000) > model.fetch_cost(100, 10)
        assert model.selection_cost(1000, False, False) > model.selection_cost(
            10, False, False
        )

    def test_cached_codes_are_cheaper(self, model):
        assert model.filter_cost(100, 1, code_cached=True) < model.filter_cost(
            100, 1, code_cached=False
        )
        assert model.selection_cost(100, True, True) < model.selection_cost(
            100, False, False
        )

    def test_shared_filter_cheaper_than_two_scans(self, model):
        """One shared 2-condition scan < two independent 1-condition scans."""
        shared = model.filter_cost(1000, 2, code_cached=False)
        separate = 2 * model.filter_cost(1000, 1, code_cached=False)
        assert shared < separate

    def test_all_costs_nonnegative(self, model):
        assert model.hpsj_cost(("B", "C")) > 0
        assert model.materialize_cost(0) >= 0
        assert model.scan_cost(0) > 0  # at least one page
