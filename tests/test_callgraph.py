"""callgraph: symbol table, type facts, call edges, worker boundary."""

from __future__ import annotations

import textwrap

from repro.analysis.callgraph import (
    EDGE_DYNAMIC,
    EDGE_METHOD,
    build_project,
)


def make_project(tmp_path, files, name="fixt"):
    """Write *files* (relpath -> source) under tmp_path/name and build."""
    root = tmp_path / name
    root.mkdir()
    (root / "__init__.py").write_text("")
    for rel, src in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        init = path.parent / "__init__.py"
        if not init.exists():
            init.write_text("")
        path.write_text(textwrap.dedent(src))
    return build_project(root)


class TestSymbolTable:
    def test_modules_classes_functions_registered(self, tmp_path):
        project = make_project(tmp_path, {
            "core.py": """
                class Engine:
                    def run(self):
                        return 1

                def helper():
                    return 2
            """,
        })
        assert "fixt.core" in project.modules
        assert "fixt.core.Engine" in project.classes
        assert "fixt.core.Engine.run" in project.functions
        assert "fixt.core.helper" in project.functions
        assert project.functions["fixt.core.Engine.run"].is_method
        assert not project.functions["fixt.core.helper"].is_method
        assert project.short("fixt.core.helper") == "core.helper"

    def test_method_index_and_subclass_override_dispatch(self, tmp_path):
        project = make_project(tmp_path, {
            "base.py": """
                class Base:
                    def step(self):
                        return 0
            """,
            "sub.py": """
                from .base import Base

                class Derived(Base):
                    def step(self):
                        return 1
            """,
        })
        resolved = project.resolve_method("fixt.base.Base", "step")
        # virtual dispatch: the static type's impl plus the override cone
        assert resolved == {"fixt.base.Base.step", "fixt.sub.Derived.step"}
        # from the subclass, the MRO finds the override only
        assert project.resolve_method("fixt.sub.Derived", "step") == {
            "fixt.sub.Derived.step"
        }

    def test_attr_types_from_init_annotation_and_dataclass(self, tmp_path):
        project = make_project(tmp_path, {
            "parts.py": """
                class Cache:
                    pass

                class Index:
                    pass
            """,
            "owner.py": """
                from dataclasses import dataclass
                from .parts import Cache, Index

                @dataclass
                class Holder:
                    index: Index

                class Owner:
                    def __init__(self, index: Index):
                        self.cache = Cache()
                        self.index = index
            """,
        })
        # dataclass field annotation
        assert project.attr_type("fixt.owner.Holder", "index") == "fixt.parts.Index"
        # __init__ constructor assignment
        assert project.attr_type("fixt.owner.Owner", "cache") == "fixt.parts.Cache"
        # self.attr = param inherits the parameter annotation
        assert project.attr_type("fixt.owner.Owner", "index") == "fixt.parts.Index"


class TestCallGraph:
    def test_typed_and_dynamic_edges(self, tmp_path):
        project = make_project(tmp_path, {
            "mod.py": """
                class Widget:
                    def ping(self):
                        return 1

                def typed(w: Widget):
                    return w.ping()

                def untyped(w):
                    return w.ping()
            """,
        })
        typed_edges = project.calls_from["fixt.mod.typed"]
        assert any(
            s.callee == "fixt.mod.Widget.ping" and s.kind == EDGE_METHOD
            for s in typed_edges
        )
        dynamic_edges = project.calls_from["fixt.mod.untyped"]
        assert any(
            s.callee == "fixt.mod.Widget.ping" and s.kind == EDGE_DYNAMIC
            for s in dynamic_edges
        )

    def test_reachability_and_call_path(self, tmp_path):
        project = make_project(tmp_path, {
            "chain.py": """
                def a():
                    return b()

                def b():
                    return c()

                def c():
                    return 3

                def unrelated():
                    return 0
            """,
        })
        parents = project.reachable_from(["fixt.chain.a"])
        assert "fixt.chain.c" in parents
        assert "fixt.chain.unrelated" not in parents
        path = project.call_path("fixt.chain.c", parents)
        assert path == ["fixt.chain.a", "fixt.chain.b", "fixt.chain.c"]


class TestWorkerBoundary:
    def test_submit_and_initializer_are_worker_roots(self, tmp_path):
        project = make_project(tmp_path, {
            "work.py": """
                from concurrent.futures import ProcessPoolExecutor

                def _init_worker(db):
                    pass

                def _run(payload):
                    return payload

                def run_all(items, db):
                    with ProcessPoolExecutor(initializer=_init_worker,
                                             initargs=(db,)) as pool:
                        futures = [pool.submit(_run, item) for item in items]
                        return [f.result() for f in futures]
            """,
        })
        roots = {(w.function, w.via) for w in project.worker_roots}
        assert ("fixt.work._run", "submit") in roots
        assert ("fixt.work._init_worker", "initializer") in roots

    def test_real_tree_worker_roots(self):
        # the repo's own boundary: morsel stages + both pool initializers
        project = build_project()
        roots = {w.function for w in project.worker_roots}
        assert "repro.query.physical.parallel._run_stage" in roots
        assert "repro.query.physical.parallel._init_worker" in roots
        assert "repro.labeling.twohop._init_label_worker" in roots
