"""Focused tests on DPS's move machinery (paper Section 4.2 semantics)."""

import pytest

from repro.db.database import GraphDatabase
from repro.graph.digraph import DiGraph
from repro.graph.generators import anti_correlated_star, figure1_graph
from repro.query.algebra import (
    FetchStep,
    FilterStep,
    SeedJoin,
    SeedScan,
    SelectionStep,
    Side,
)
from repro.query.costmodel import CostModel, CostParams
from repro.query.executor import execute_plan
from repro.query.optimizer_dps import _applicable_filters, optimize_dps
from repro.query.parser import parse_pattern


@pytest.fixture(scope="module")
def db():
    return GraphDatabase(figure1_graph())


def model_for(db, pattern):
    return CostModel(db.catalog, pattern, CostParams())


class TestApplicableFilters:
    def test_groups_same_source_conditions(self):
        pattern = parse_pattern("C -> D, C -> E, B -> C")
        keys = _applicable_filters(
            pattern, "C", Side.OUT, frozenset(), frozenset(), frozenset({"C"})
        )
        assert set(keys) == {(("C", "D"), Side.OUT), (("C", "E"), Side.OUT)}

    def test_in_side_groups_same_target(self):
        pattern = parse_pattern("A -> C, B -> C, C -> D")
        keys = _applicable_filters(
            pattern, "C", Side.IN, frozenset(), frozenset(), frozenset({"C"})
        )
        assert set(keys) == {(("A", "C"), Side.IN), (("B", "C"), Side.IN)}

    def test_skips_done_and_filtered(self):
        pattern = parse_pattern("C -> D, C -> E")
        keys = _applicable_filters(
            pattern,
            "C",
            Side.OUT,
            frozenset({("C", "D")}),                      # done
            frozenset({(("C", "E"), Side.OUT)}),          # already filtered
            frozenset({"C", "D"}),
        )
        assert keys == ()

    def test_skips_conditions_to_bound_vars(self):
        """Both-endpoints-bound conditions go through Selection-moves."""
        pattern = parse_pattern("C -> D, C -> E")
        keys = _applicable_filters(
            pattern, "C", Side.OUT, frozenset(), frozenset(),
            frozenset({"C", "D"}),
        )
        assert keys == ((("C", "E"), Side.OUT),)


class TestDPSPlans:
    def test_every_fetch_has_a_matching_filter(self, db):
        """HPSJ+ invariant: Fetch is always the second half of a Filter."""
        for text in (
            "A -> C, B -> C, C -> D, D -> E",
            "B -> C, C -> D, C -> E",
            "A -> C, A -> D, C -> D",
        ):
            pattern = parse_pattern(text)
            plan = optimize_dps(pattern, model_for(db, pattern)).plan
            pending = set()
            for step in plan.steps:
                if isinstance(step, FilterStep):
                    pending.update(step.keys)
                elif isinstance(step, FetchStep):
                    assert (step.condition, step.side) in pending
                    pending.discard((step.condition, step.side))
            assert not pending

    def test_seed_filter_path_used_when_profitable(self):
        """On the anti-correlated star the optimal opening is Figure 3's
        S_1: SeedScan + one shared multi-condition Filter."""
        graph = anti_correlated_star(
            n_hub=800, fanout=8, overlap=0.02,
            branch_labels=("B", "C"), pool_per_branch=100, seed=2,
        )
        db = GraphDatabase(graph)
        pattern = parse_pattern("a:A -> b:B, a -> c:C")
        plan = optimize_dps(pattern, model_for(db, pattern)).plan
        assert isinstance(plan.steps[0], SeedScan)
        assert isinstance(plan.steps[1], FilterStep)
        assert len(plan.steps[1].keys) == 2

    def test_hpsj_seed_used_when_cheap(self, db):
        """Tiny base joins make the R-join-move opening optimal."""
        pattern = parse_pattern("A -> C")
        plan = optimize_dps(pattern, model_for(db, pattern)).plan
        assert isinstance(plan.steps[0], (SeedJoin, SeedScan))

    def test_selection_handles_closing_edges(self, db):
        pattern = parse_pattern("A -> C, A -> D, C -> D")
        plan = optimize_dps(pattern, model_for(db, pattern)).plan
        kinds = [type(s).__name__ for s in plan.steps]
        # three conditions, at most two fetches: one edge must close as a
        # selection or be a seeded join
        result = execute_plan(db, plan)
        from repro.baselines.naive import NaiveMatcher

        assert result.as_set() == NaiveMatcher(db.graph).match_set(pattern)

    def test_status_space_handles_seven_edges(self, db):
        """A dense 5-variable pattern (7 edges) must optimize quickly."""
        pattern = parse_pattern(
            "A -> B, A -> C, B -> D, C -> D, A -> D, B -> E, D -> E"
        )
        optimized = optimize_dps(pattern, model_for(db, pattern))
        optimized.plan.validate()
        assert optimized.estimated_cost >= 0
