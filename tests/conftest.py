"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.graph import generators
from repro.graph.digraph import DiGraph


@pytest.fixture
def figure1():
    """The paper's running-example data graph (Figure 1(a))."""
    return generators.figure1_graph()


@pytest.fixture
def small_dag():
    """A tiny hand-built DAG with known reachability.

    Layout::

        a0 -> b0 -> c0
        a0 -> c1
        b1 -> c0
        c1 -> d0
    """
    g = DiGraph()
    a0 = g.add_node("A")
    b0 = g.add_node("B")
    b1 = g.add_node("B")
    c0 = g.add_node("C")
    c1 = g.add_node("C")
    d0 = g.add_node("D")
    g.add_edges([(a0, b0), (b0, c0), (a0, c1), (b1, c0), (c1, d0)])
    return g


@pytest.fixture
def cyclic_graph():
    """A digraph with a 3-cycle plus a tail: 0->1->2->0, 2->3."""
    g = DiGraph()
    for label in ("A", "B", "C", "D"):
        g.add_node(label)
    g.add_edges([(0, 1), (1, 2), (2, 0), (2, 3)])
    return g


def brute_force_reach(graph: DiGraph):
    """Dict of all reachable pairs via repeated BFS (ground truth)."""
    from repro.graph.traversal import reachable_set

    return {u: reachable_set(graph, u) for u in graph.nodes()}
