"""The always-on query service: protocol, admission control, end-to-end.

The contract under test: every row served over the wire is
byte-identical to what the library produces directly; admission is
bounded at both stages (slots, queue) with fast sheds beyond; deadlines
and row limits ride the streaming driver's truncation flags; and the
stats endpoint accounts for everything that happened.
"""

import json
import socket
import threading
import time

import pytest

from repro import GraphEngine
from repro.graph import generators
from repro.service import (
    AdmissionScheduler,
    Overloaded,
    ProtocolError,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceStats,
    encode,
    parse_request,
    percentile,
    rows_as_tuples,
    start_in_thread,
)

PATTERN = "A -> C, B -> C, C -> D, D -> E"


# ----------------------------------------------------------------------
# protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_query_roundtrip(self):
        request = parse_request(
            encode({"op": "query", "id": 3, "pattern": "A -> B",
                    "limit": 5, "timeout_ms": 250, "priority": 2})
        )
        assert request.op == "query"
        assert request.id == 3
        assert request.pattern == "A -> B"
        assert request.limit == 5
        assert request.timeout_ms == 250
        assert request.priority == 2
        assert request.row_limit is None

    def test_defaults(self):
        request = parse_request(b'{"op": "query", "pattern": "A -> B"}')
        assert request.optimizer == "dps"
        assert request.limit is None and request.timeout_ms is None
        assert request.priority == 0

    @pytest.mark.parametrize("line", [
        b"not json",
        b'"just a string"',
        b'{"op": "explode"}',
        b'{"op": "query"}',                                # no pattern
        b'{"op": "query", "pattern": ""}',                 # empty pattern
        b'{"op": "query", "pattern": "A -> B", "limit": -1}',
        b'{"op": "query", "pattern": "A -> B", "limit": true}',
        b'{"op": "query", "pattern": "A -> B", "timeout_ms": -5}',
        b'{"op": "query", "pattern": "A -> B", "priority": "high"}',
    ])
    def test_bad_requests_rejected(self, line):
        with pytest.raises(ProtocolError):
            parse_request(line)

    def test_non_query_ops_ignore_query_fields(self):
        request = parse_request(b'{"op": "ping", "id": "x", "limit": -9}')
        assert request.op == "ping" and request.id == "x"


# ----------------------------------------------------------------------
# admission scheduler (loop-confined state machine, tested standalone)
# ----------------------------------------------------------------------
class _Waiter:
    def __init__(self):
        self.result = None
        self._done = False

    def done(self):
        return self._done

    def set_result(self, value):
        self._done = True
        self.result = value

    def set_exception(self, err):
        self._done = True

    def cancel(self):
        self._done = True


class TestAdmissionScheduler:
    def test_slots_then_queue_then_shed(self):
        sched = AdmissionScheduler(max_inflight=2, queue_depth=1)
        assert sched.try_acquire(waiter_factory=_Waiter) is None
        assert sched.try_acquire(waiter_factory=_Waiter) is None
        queued = sched.try_acquire(waiter_factory=_Waiter)
        assert isinstance(queued, _Waiter)
        with pytest.raises(Overloaded):
            sched.try_acquire(waiter_factory=_Waiter)
        assert sched.inflight == 2 and sched.queued == 1

    def test_release_transfers_slot_to_waiter(self):
        sched = AdmissionScheduler(max_inflight=1, queue_depth=2)
        sched.try_acquire(waiter_factory=_Waiter)
        waiter = sched.try_acquire(waiter_factory=_Waiter)
        sched.release()
        assert waiter.done()          # slot handed over, not freed
        assert sched.inflight == 1 and sched.queued == 0
        sched.release()
        assert sched.inflight == 0

    def test_priority_order_fifo_within_class(self):
        sched = AdmissionScheduler(max_inflight=1, queue_depth=4)
        sched.try_acquire(waiter_factory=_Waiter)
        low_a = sched.try_acquire(priority=0, waiter_factory=_Waiter)
        high = sched.try_acquire(priority=5, waiter_factory=_Waiter)
        low_b = sched.try_acquire(priority=0, waiter_factory=_Waiter)
        sched.release()
        assert high.done() and not low_a.done() and not low_b.done()
        sched.release()
        assert low_a.done() and not low_b.done()  # FIFO among equals
        sched.release()
        assert low_b.done()

    def test_abandoned_waiter_skipped(self):
        sched = AdmissionScheduler(max_inflight=1, queue_depth=2)
        sched.try_acquire(waiter_factory=_Waiter)
        dropped = sched.try_acquire(waiter_factory=_Waiter)
        live = sched.try_acquire(waiter_factory=_Waiter)
        dropped.cancel()
        sched.release()
        assert live.done() and live.result is None
        assert sched.inflight == 1

    def test_zero_queue_depth_sheds_immediately(self):
        sched = AdmissionScheduler(max_inflight=1, queue_depth=0)
        sched.try_acquire(waiter_factory=_Waiter)
        with pytest.raises(Overloaded):
            sched.try_acquire(waiter_factory=_Waiter)

    def test_drain_returns_live_waiters(self):
        sched = AdmissionScheduler(max_inflight=1, queue_depth=3)
        sched.try_acquire(waiter_factory=_Waiter)
        a = sched.try_acquire(waiter_factory=_Waiter)
        b = sched.try_acquire(waiter_factory=_Waiter)
        a.cancel()
        assert sched.drain() == [b]
        assert sched.queued == 0


class TestStats:
    def test_percentile_interpolates(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 0) == 10.0
        assert percentile(values, 100) == 40.0
        assert percentile(values, 50) == 25.0
        assert percentile([], 99) == 0.0
        assert percentile([7.0], 95) == 7.0

    def test_snapshot_accounting(self):
        stats = ServiceStats()
        stats.mark_received()
        stats.mark_received()
        stats.mark_shed()
        stats.mark_served(queue_wait_ms=1.0, exec_ms=9.0, rows=4,
                          truncated=True, cache_hits=3, cache_misses=1)
        snap = stats.snapshot()
        assert snap["received"] == 2 and snap["served"] == 1
        assert snap["shed"] == 1 and snap["shed_rate"] == 0.5
        assert snap["truncated"] == 1 and snap["rows_returned"] == 4
        assert snap["cache_hit_rate"] == 0.75
        assert snap["latency_ms"]["p50"] == 10.0


# ----------------------------------------------------------------------
# end-to-end over TCP
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def engine():
    eng = GraphEngine(generators.figure1_graph())
    yield eng
    eng.close_pool()


@pytest.fixture()
def service(engine):
    handle = start_in_thread(engine, ServiceConfig(max_inflight=2, queue_depth=4))
    yield handle
    handle.stop()


class TestServiceEndToEnd:
    def test_rows_byte_identical_to_library(self, engine, service):
        direct = engine.match(PATTERN)
        host, port = service.address
        with ServiceClient(host, port) as client:
            response = client.query(PATTERN)
        assert response["columns"] == list(direct.columns)
        assert rows_as_tuples(response) == list(direct.rows)
        assert response["truncated"] is False
        assert response["stop_reason"] is None
        assert response["metrics"]["rows"] == len(direct)

    def test_all_optimizers_served(self, engine, service):
        host, port = service.address
        expected = engine.match(PATTERN).as_set()
        with ServiceClient(host, port) as client:
            for optimizer in ("dp", "dps", "greedy", "auto"):
                response = client.query(PATTERN, optimizer=optimizer)
                assert set(rows_as_tuples(response)) == expected

    def test_limit_truncates_and_flags(self, service):
        host, port = service.address
        with ServiceClient(host, port) as client:
            response = client.query(PATTERN, limit=1)
        assert len(response["rows"]) == 1
        assert response["truncated"] is True
        assert response["stop_reason"] == "limit"

    def test_bad_pattern_is_bad_request(self, service):
        host, port = service.address
        with ServiceClient(host, port) as client:
            with pytest.raises(ServiceError) as err:
                client.query("A -> Z")  # unknown label
            assert err.value.code == "bad_request"
            with pytest.raises(ServiceError) as err:
                client.query("A -> B", optimizer="quantum")
            assert err.value.code == "bad_request"
            # the connection survives errors: next query works
            assert client.ping()

    def test_row_limit_guard_maps_to_error(self, service):
        host, port = service.address
        with ServiceClient(host, port) as client:
            with pytest.raises(ServiceError) as err:
                client.query(PATTERN, row_limit=1)
            assert err.value.code == "row_limit"

    def test_malformed_line_answered_not_fatal(self, service):
        host, port = service.address
        with socket.create_connection((host, port), timeout=10) as sock:
            reader = sock.makefile("rb")
            sock.sendall(b"this is not json\n")
            response = json.loads(reader.readline())
            assert response["ok"] is False
            assert response["error"]["code"] == "bad_request"
            sock.sendall(encode({"op": "ping", "id": 1}))
            assert json.loads(reader.readline())["pong"] is True

    def test_pipelined_requests_matched_by_id(self, service):
        host, port = service.address
        with socket.create_connection((host, port), timeout=30) as sock:
            reader = sock.makefile("rb")
            for i in range(6):
                sock.sendall(encode(
                    {"op": "query", "id": f"r{i}", "pattern": PATTERN}
                ))
            seen = set()
            for _ in range(6):
                response = json.loads(reader.readline())
                assert response["ok"] is True
                seen.add(response["id"])
            assert seen == {f"r{i}" for i in range(6)}

    def test_stats_endpoint_accounts_queries(self, service):
        host, port = service.address
        with ServiceClient(host, port) as client:
            for _ in range(3):
                client.query(PATTERN)
            snap = client.stats()
        assert snap["served"] >= 3
        assert snap["received"] >= 3
        assert snap["latency_ms"]["p99"] >= snap["latency_ms"]["p50"] > 0
        assert snap["engine"]["plan_cache_entries"] >= 1
        assert 0.0 <= snap["engine"]["center_cache_hit_rate"] <= 1.0

    def test_overload_sheds_with_fast_reject(self, engine):
        """Saturate the slots + queue; the next arrival is shed."""
        handle = start_in_thread(
            engine, ServiceConfig(max_inflight=1, queue_depth=1)
        )
        service = handle.service
        host, port = handle.address
        try:
            # gate execution so the one in-flight query blocks in its
            # executor thread: admission state becomes deterministic
            # (there is no engine lock to hold anymore — queries only
            # serialize on admission slots)
            gate = threading.Event()
            original_execute = service._execute

            def gated_execute(request, timeout_s):
                assert gate.wait(timeout=60)
                return original_execute(request, timeout_s)

            service._execute = gated_execute
            try:
                blocked = []

                def run_blocked():
                    with ServiceClient(host, port, timeout=60) as client:
                        blocked.append(client.query(PATTERN))

                t1 = threading.Thread(target=run_blocked)  # takes the slot
                t2 = threading.Thread(target=run_blocked)  # takes the queue
                t1.start()
                deadline = time.perf_counter() + 10
                while service.scheduler.inflight < 1:
                    assert time.perf_counter() < deadline
                    time.sleep(0.01)
                t2.start()
                while service.scheduler.queued < 1:
                    assert time.perf_counter() < deadline
                    time.sleep(0.01)
                started = time.perf_counter()
                with ServiceClient(host, port, timeout=60) as client:
                    with pytest.raises(ServiceError) as err:
                        client.query(PATTERN)
                reject_s = time.perf_counter() - started
                assert err.value.code == "overloaded"
                assert reject_s < 5  # fast reject, no queueing behind work
            finally:
                gate.set()
            t1.join(timeout=60)
            t2.join(timeout=60)
            assert len(blocked) == 2  # queued work completed after release
            snap = service.stats.snapshot()
            assert snap["shed"] == 1 and snap["served"] == 2
        finally:
            handle.stop()

    def test_queue_deadline_times_out_without_execution(self, engine):
        handle = start_in_thread(
            engine, ServiceConfig(max_inflight=1, queue_depth=2)
        )
        service = handle.service
        host, port = handle.address
        try:
            gate = threading.Event()
            original_execute = service._execute

            def gated_execute(request, timeout_s):
                assert gate.wait(timeout=60)
                return original_execute(request, timeout_s)

            service._execute = gated_execute
            release = threading.Event()

            def run_blocked():
                with ServiceClient(host, port, timeout=60) as client:
                    client.query(PATTERN)

            holder = threading.Thread(target=run_blocked)
            holder.start()
            deadline = time.perf_counter() + 10
            while service.scheduler.inflight < 1:
                assert time.perf_counter() < deadline
                time.sleep(0.01)

            timed_out = {}

            def run_deadlined():
                with ServiceClient(host, port, timeout=60) as client:
                    try:
                        client.query(PATTERN, timeout_ms=100)
                    except ServiceError as err:
                        timed_out["code"] = err.code
                    finally:
                        release.set()

            waiter = threading.Thread(target=run_deadlined)
            waiter.start()
            # hold the slot well past the queued query's 100ms deadline
            time.sleep(0.5)
            gate.set()
            assert release.wait(timeout=60)
            holder.join(timeout=60)
            waiter.join(timeout=60)
            assert timed_out["code"] == "timeout"
            assert service.stats.snapshot()["timeouts"] >= 1
        finally:
            gate.set()
            handle.stop()


class TestServeCLI:
    def test_serve_subcommand_end_to_end(self, tmp_path):
        import subprocess
        import sys as _sys

        from repro.db.persist import save_database

        engine = GraphEngine(generators.figure1_graph())
        db_path = tmp_path / "fig1.snap"
        save_database(engine.db, str(db_path), format="snapshot")
        expected = engine.match(PATTERN)

        proc = subprocess.Popen(
            [_sys.executable, "-m", "repro", "serve", str(db_path), "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            assert "serving" in banner
            port = int(banner.split(" on ", 1)[1].split()[0].rsplit(":", 1)[1])
            with ServiceClient("127.0.0.1", port, timeout=60) as client:
                assert client.ping()
                response = client.query(PATTERN)
                assert rows_as_tuples(response) == list(expected.rows)
                assert client.stats()["served"] >= 1
        finally:
            proc.terminate()
            proc.wait(timeout=30)
