"""Morsel-driven parallel execution vs the sequential oracle.

The acceptance contract of the parallel scheduler
(:mod:`repro.query.physical.parallel`): for every workload pattern under
``dp`` and ``dps``, with 2+ workers on *both* backends and a morsel size
small enough to force real fan-out, both drivers must produce rows
*byte-identical* (same order, not just same set) to the sequential
paths, with identical per-operator counters.  Plus the lifecycle
contracts: early close cancels outstanding morsels without leaking pool
workers, engine-owned pools are reused across queries and invalidated on
index rebuild, and the row-limit guard fires at the same threshold as
the sequential drivers.
"""

import multiprocessing
import threading

import pytest

from repro import GraphEngine
from repro.graph import xmark
from repro.query import (
    RowLimitExceeded,
    WorkerPool,
    execute_plan,
    execute_plan_streaming,
    fork_available,
)
from repro.workloads.patterns import PatternFactory

#: the process backend needs fork; skip it cleanly elsewhere
BACKENDS = ("thread", "process") if fork_available() else ("thread",)

#: small enough that every workload pattern splits into several morsels
MORSEL = 16


@pytest.fixture(scope="module")
def engine():
    data = xmark.generate(factor=0.1, entity_budget=600, seed=7)
    eng = GraphEngine(data.graph)
    yield eng
    eng.close_pool()


@pytest.fixture(scope="module")
def workload(engine):
    factory = PatternFactory(engine.db.catalog, seed=11)
    patterns = {}
    patterns.update(factory.figure4_paths())
    patterns.update(factory.figure4_trees())
    patterns.update(factory.figure4_queries(4))
    return patterns


@pytest.fixture(scope="module")
def big_pattern(engine, workload):
    """The workload pattern with the largest result (drives morsel fan-out)."""
    sizes = {name: len(engine.match(p).rows) for name, p in workload.items()}
    return workload[max(sizes, key=sizes.get)]


def op_counters(metrics):
    return [
        (op.operator, op.rows_in, op.rows_out, op.centers_probed, op.nodes_fetched)
        for op in metrics.operators
    ]


# ----------------------------------------------------------------------
# differential: parallel == sequential, exactly
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("optimizer", ("dp", "dps"))
def test_parallel_matches_sequential_oracle(engine, workload, backend, optimizer):
    pool = engine.worker_pool(2, backend)
    for name, pattern in workload.items():
        plan = engine.plan(pattern, optimizer=optimizer).plan
        oracle = execute_plan(engine.db, plan)
        parallel = execute_plan(
            engine.db, plan, worker_pool=pool, morsel_size=MORSEL
        )
        assert parallel.rows == oracle.rows, (
            f"{name} [{optimizer}/{backend}]: parallel rows differ"
        )
        assert op_counters(parallel.metrics) == op_counters(oracle.metrics), (
            f"{name} [{optimizer}/{backend}]: per-operator counters differ"
        )
        assert parallel.metrics.parallel is not None
        assert parallel.metrics.parallel.backend == backend

        stream = execute_plan_streaming(
            engine.db, plan, worker_pool=pool, morsel_size=MORSEL
        )
        streamed = list(stream)
        assert streamed == oracle.rows, (
            f"{name} [{optimizer}/{backend}]: parallel stream rows differ"
        )
        assert op_counters(stream.metrics) == op_counters(oracle.metrics), (
            f"{name} [{optimizer}/{backend}]: streaming counters differ"
        )


@pytest.mark.parametrize("backend", BACKENDS)
def test_parallel_composes_with_batch_substrate(engine, big_pattern, backend):
    """Morsels running the vectorized batch kernels still match scalar."""
    oracle = engine.match(big_pattern)
    parallel = engine.match(
        big_pattern, workers=2, parallel_backend=backend,
        batch_size=64, morsel_size=MORSEL,
    )
    assert parallel.rows == oracle.rows
    assert parallel.metrics.parallel.morsels > 0


def test_engine_match_uses_morsels_and_merges_metrics(engine, big_pattern):
    oracle = engine.match(big_pattern)
    result = engine.match(big_pattern, workers=2, morsel_size=4)
    stats = result.metrics.parallel
    assert result.rows == oracle.rows
    assert stats.workers == 2
    assert stats.morsels > 1  # the fan-out actually happened
    assert result.metrics.io is not None
    # worker I/O is folded back into the run metrics: the merged counters
    # must include the R-join index probes the workers performed (the
    # parallel materializing path streams between stages, so total page
    # traffic is *not* comparable to the scalar spill-to-temporal path)
    assert result.metrics.io.index_lookups.get("rjoin-index", 0) > 0


# ----------------------------------------------------------------------
# row-limit parity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_row_limit_guard_fires_identically(engine, big_pattern, backend):
    plan = engine.plan(big_pattern).plan
    with pytest.raises(RowLimitExceeded):
        execute_plan(engine.db, plan, row_limit=5)
    pool = engine.worker_pool(2, backend)
    with pytest.raises(RowLimitExceeded):
        execute_plan(engine.db, plan, row_limit=5, worker_pool=pool, morsel_size=4)
    # the pool survives an aborted run
    assert pool.compatible(engine.db)
    oracle = execute_plan(engine.db, plan)
    again = execute_plan(engine.db, plan, worker_pool=pool, morsel_size=4)
    assert again.rows == oracle.rows


# ----------------------------------------------------------------------
# early close: cancellation without leaks
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_streaming_early_close_cancels_morsels(engine, big_pattern, backend):
    stream = engine.match_iter(
        big_pattern, workers=2, parallel_backend=backend, morsel_size=1
    )
    first = next(stream)
    assert first is not None
    execution = stream.parallel
    assert execution is not None
    assert not execution.cancel_event.is_set()
    stream.close()
    assert execution.cancel_event.is_set()
    # engine-owned pool stays warm for the next query...
    assert not execution.pool.closed
    oracle = engine.match(big_pattern)
    again = engine.match(big_pattern, workers=2, parallel_backend=backend)
    assert again.rows == oracle.rows


@pytest.mark.parametrize("backend", BACKENDS)
def test_streaming_limit_stop_cancels_morsels(engine, big_pattern, backend):
    oracle = engine.match(big_pattern)
    stream = engine.match_iter(
        big_pattern, workers=2, parallel_backend=backend, morsel_size=1, limit=2
    )
    rows = list(stream)
    assert rows == oracle.rows[:2]
    # stopping at the limit before the morsels drained counts as early
    # close: the cancellation event must be set
    assert stream.parallel.cancel_event.is_set()


def test_transient_pool_shuts_down_on_close(engine, big_pattern):
    """Driver-level parallel runs (no engine pool) own a transient pool
    that must be torn down when the stream is abandoned."""
    plan = engine.plan(big_pattern).plan
    stream = execute_plan_streaming(
        engine.db, plan, workers=2, parallel_backend="thread", morsel_size=1
    )
    next(stream)
    assert not stream.parallel.pool.closed
    stream.close()
    assert stream.parallel.pool.closed
    assert stream.parallel.cancel_event.is_set()


@pytest.mark.skipif(not fork_available(), reason="needs the fork start method")
def test_close_pool_leaves_no_worker_processes(engine, big_pattern):
    oracle = engine.match(big_pattern)
    result = engine.match(big_pattern, workers=2, parallel_backend="process")
    assert result.rows == oracle.rows
    engine.close_pool()
    assert multiprocessing.active_children() == []


# ----------------------------------------------------------------------
# pool lifecycle
# ----------------------------------------------------------------------
def test_engine_pool_is_reused_across_queries(engine, workload):
    pool = engine.worker_pool(2, "thread")
    assert engine.worker_pool(2, "thread") is pool
    # different parameters -> a fresh pool, the old one shut down
    other = engine.worker_pool(3, "thread")
    assert other is not pool
    assert pool.closed
    engine.close_pool()


def test_pool_invalidated_by_index_rebuild(engine):
    pool = engine.worker_pool(2, "thread")
    engine.db.rebuild_join_index()
    assert not pool.compatible(engine.db)
    fresh = engine.worker_pool(2, "thread")
    assert fresh is not pool
    assert pool.closed
    engine.close_pool()


def test_stale_pool_is_rejected_by_drivers(engine, big_pattern):
    plan = engine.plan(big_pattern).plan
    pool = WorkerPool(engine.db, 2, "thread")
    pool.shutdown()
    with pytest.raises(ValueError):
        execute_plan(engine.db, plan, worker_pool=pool)


def test_unknown_backend_rejected(engine):
    with pytest.raises(ValueError):
        WorkerPool(engine.db, 2, "greenlets")


def test_workers_one_stays_sequential(engine, big_pattern):
    result = engine.match(big_pattern, workers=1)
    assert result.metrics.parallel is None
    assert getattr(engine, "_worker_pool", None) is None


# ----------------------------------------------------------------------
# concurrent pool access: one engine, interleaved queries (the service's
# steady state) must never double-create or leak a pool
# ----------------------------------------------------------------------
def _counting_pool(monkeypatch):
    """Patch the engine module's WorkerPool with a construction counter."""
    import repro.query.engine as engine_mod

    created = []
    real = engine_mod.WorkerPool

    class CountingPool(real):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            created.append(self)

    monkeypatch.setattr(engine_mod, "WorkerPool", CountingPool)
    return created


def test_concurrent_pool_create_is_race_free(engine, monkeypatch):
    engine.close_pool()
    created = _counting_pool(monkeypatch)
    barrier = threading.Barrier(4)
    grabbed = []

    def grab():
        barrier.wait()
        for _ in range(5):
            grabbed.append(engine.worker_pool(2, "thread"))

    threads = [threading.Thread(target=grab) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(created) == 1, "interleaved worker_pool() double-created pools"
    assert all(pool is created[0] for pool in grabbed)
    assert not created[0].closed
    engine.close_pool()


def test_concurrent_pool_invalidation_no_leak(engine, monkeypatch):
    """A generation bump observed by two racing queries replaces the
    stale pool exactly once; nobody keeps (or leaks) the dead pool."""
    engine.close_pool()
    created = _counting_pool(monkeypatch)
    stale = engine.worker_pool(2, "thread")
    engine.db.rebuild_join_index()  # stale pool's generation is now old
    barrier = threading.Barrier(4)
    grabbed = []

    def grab():
        barrier.wait()
        for _ in range(5):
            grabbed.append(engine.worker_pool(2, "thread"))

    threads = [threading.Thread(target=grab) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(created) == 2, "invalidation rebuilt more than one pool"
    fresh = created[-1]
    assert stale.closed and fresh is not stale
    assert all(pool is fresh for pool in grabbed)
    assert not fresh.closed
    engine.close_pool()


# ----------------------------------------------------------------------
# truncation flags: limit / deadline / close must mark partial results
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_limit_stop_flags_truncated(engine, big_pattern, backend):
    stream = engine.match_iter(
        big_pattern, workers=2, parallel_backend=backend, morsel_size=1, limit=2
    )
    rows = list(stream)
    assert len(rows) == 2
    assert stream.metrics.truncated
    assert stream.metrics.stop_reason == "limit"
    assert stream.metrics.result_rows == 2


@pytest.mark.parametrize("backend", BACKENDS)
def test_early_close_flags_truncated(engine, big_pattern, backend):
    stream = engine.match_iter(
        big_pattern, workers=2, parallel_backend=backend, morsel_size=1
    )
    next(stream)
    execution = stream.parallel
    stream.close()
    assert stream.metrics.truncated
    assert stream.metrics.stop_reason == "closed"
    assert execution.cancel_event.is_set()
    # with single-row morsels the run fans out far beyond what the
    # workers can burn through before the close lands, so unstarted
    # morsels must be dropped.  Only the process backend pays enough
    # per-morsel IPC for this to be deterministic; in-process threads
    # can drain the whole fan-out before close() is reached.
    if backend == "process" and execution.stats.morsels > 8:
        assert execution.stats.cancelled_morsels > 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_expired_deadline_flags_timeout(engine, big_pattern, backend):
    oracle = engine.match(big_pattern)
    stream = engine.match_iter(
        big_pattern, workers=2, parallel_backend=backend, morsel_size=1,
        timeout=0.0,
    )
    rows = list(stream)
    assert rows == []  # the deadline had already expired at the first pull
    assert stream.metrics.truncated
    assert stream.metrics.stop_reason == "timeout"
    assert stream.parallel.cancel_event.is_set()
    # the engine-owned pool survives a timed-out query untouched
    again = engine.match(big_pattern, workers=2, parallel_backend=backend)
    assert again.rows == oracle.rows


@pytest.mark.parametrize("backend", BACKENDS)
def test_drained_stream_is_not_truncated(engine, big_pattern, backend):
    oracle = engine.match(big_pattern)
    stream = engine.match_iter(
        big_pattern, workers=2, parallel_backend=backend, timeout=600.0
    )
    rows = list(stream)
    assert rows == oracle.rows
    assert not stream.metrics.truncated
    assert stream.metrics.stop_reason is None
    # close() after natural exhaustion must not relabel the run
    stream.close()
    assert not stream.metrics.truncated


@pytest.mark.skipif(not fork_available(), reason="needs the fork start method")
def test_early_close_leaves_no_worker_processes(engine, big_pattern):
    """Abandoning a parallel stream mid-flight leaks no pool workers."""
    stream = engine.match_iter(
        big_pattern, workers=2, parallel_backend="process", morsel_size=1
    )
    next(stream)
    stream.close()
    assert stream.metrics.truncated
    engine.close_pool()
    assert multiprocessing.active_children() == []
