"""Unit tests for the labeled digraph core."""

import pytest

from repro.graph.digraph import DiGraph, GraphError


class TestConstruction:
    def test_empty_graph(self):
        g = DiGraph()
        assert g.node_count == 0
        assert g.edge_count == 0
        assert list(g.edges()) == []

    def test_presized_graph_gets_default_labels(self):
        g = DiGraph(3)
        assert g.node_count == 3
        assert all(g.label(v) == DiGraph.DEFAULT_LABEL for v in g.nodes())

    def test_add_node_returns_sequential_ids(self):
        g = DiGraph()
        assert g.add_node("A") == 0
        assert g.add_node("B") == 1
        assert g.label(0) == "A"
        assert g.label(1) == "B"

    def test_add_nodes_bulk(self):
        g = DiGraph()
        ids = g.add_nodes(["A", "B", "A"])
        assert ids == [0, 1, 2]
        assert g.labels() == ["A", "B", "A"]

    def test_add_edge_updates_both_adjacencies(self):
        g = DiGraph()
        g.add_nodes(["A", "B"])
        g.add_edge(0, 1)
        assert g.successors(0) == [1]
        assert g.predecessors(1) == [0]
        assert g.edge_count == 1

    def test_parallel_edges_are_kept(self):
        g = DiGraph()
        g.add_nodes(["A", "B"])
        g.add_edge(0, 1)
        g.add_edge(0, 1)
        assert g.edge_count == 2
        assert g.successors(0) == [1, 1]

    def test_edge_to_missing_node_raises(self):
        g = DiGraph()
        g.add_node("A")
        with pytest.raises(GraphError):
            g.add_edge(0, 5)
        with pytest.raises(GraphError):
            g.add_edge(-1, 0)

    def test_set_label(self):
        g = DiGraph()
        g.add_node("A")
        g.set_label(0, "Z")
        assert g.label(0) == "Z"
        assert g.extent("Z") == (0,)
        assert g.extent("A") == ()


class TestInspection:
    def test_extents_group_by_label(self):
        g = DiGraph()
        g.add_nodes(["A", "B", "A", "C", "A"])
        assert g.extent("A") == (0, 2, 4)
        assert g.extent("B") == (1,)
        assert g.extent("missing") == ()

    def test_extent_cache_invalidated_on_add(self):
        g = DiGraph()
        g.add_node("A")
        assert g.extent("A") == (0,)
        g.add_node("A")
        assert g.extent("A") == (0, 1)

    def test_alphabet_sorted_unique(self):
        g = DiGraph()
        g.add_nodes(["C", "A", "C", "B"])
        assert g.alphabet() == ["A", "B", "C"]

    def test_degrees(self):
        g = DiGraph()
        g.add_nodes(["A", "B", "C"])
        g.add_edges([(0, 1), (0, 2), (1, 2)])
        assert g.out_degree(0) == 2
        assert g.in_degree(2) == 2
        assert g.in_degree(0) == 0

    def test_has_edge_scans_smaller_side(self):
        g = DiGraph()
        g.add_nodes(["A"] * 5)
        g.add_edges([(0, i) for i in range(1, 5)])
        assert g.has_edge(0, 3)
        assert not g.has_edge(3, 0)
        assert not g.has_edge(1, 2)

    def test_edges_iterates_all(self):
        g = DiGraph()
        g.add_nodes(["A", "B", "C"])
        edges = [(0, 1), (1, 2), (0, 2)]
        g.add_edges(edges)
        assert sorted(g.edges()) == sorted(edges)


class TestTransforms:
    def test_reversed_flips_edges_keeps_labels(self):
        g = DiGraph()
        g.add_nodes(["A", "B"])
        g.add_edge(0, 1)
        r = g.reversed()
        assert r.successors(1) == [0]
        assert r.predecessors(0) == [1]
        assert r.label(0) == "A"
        assert r.edge_count == 1

    def test_reversed_is_independent_copy(self):
        g = DiGraph()
        g.add_nodes(["A", "B"])
        g.add_edge(0, 1)
        r = g.reversed()
        g.add_edge(1, 0)
        assert r.edge_count == 1

    def test_subgraph_keeps_induced_edges(self):
        g = DiGraph()
        g.add_nodes(["A", "B", "C", "D"])
        g.add_edges([(0, 1), (1, 2), (2, 3), (0, 3)])
        sub, remap = g.subgraph([0, 1, 3])
        assert sub.node_count == 3
        assert sorted(sub.edges()) == sorted(
            [(remap[0], remap[1]), (remap[0], remap[3])]
        )
        assert sub.label(remap[3]) == "D"

    def test_copy_is_deep_for_structure(self):
        g = DiGraph()
        g.add_nodes(["A", "B"])
        g.add_edge(0, 1)
        c = g.copy()
        g.add_edge(1, 0)
        assert c.edge_count == 1
        assert c.labels() == ["A", "B"]
