"""Tests for the baselines: naive matcher, TwigStackD, IGMJ/INT-DP."""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.baselines.igmj import IGMJEngine
from repro.baselines.naive import NaiveMatcher
from repro.baselines.twigstackd import TwigStackD
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    figure1_graph,
    layered_dag,
    random_dag,
    random_digraph,
)
from repro.query.parser import parse_pattern
from repro.query.pattern import GraphPattern, PatternError


class TestNaiveMatcher:
    def test_single_node_pattern(self):
        g = figure1_graph()
        pattern = GraphPattern.build({"B": "B"}, [])
        assert NaiveMatcher(g).match_set(pattern) == {
            (v,) for v in g.extent("B")
        }

    def test_known_match_on_figure1(self):
        g = figure1_graph()
        pattern = parse_pattern("A -> C, B -> C, C -> D, D -> E")
        matches = NaiveMatcher(g).match_set(pattern)
        assert matches  # the paper guarantees at least (a0, b0, c1, d2, e1)
        for a, c, b, d, e in matches:
            assert g.label(a) == "A" and g.label(e) == "E"

    def test_empty_when_label_missing(self):
        g = DiGraph()
        g.add_node("A")
        pattern = GraphPattern.build({"A": "A", "Z": "Z"}, [("A", "Z")])
        assert NaiveMatcher(g).match_set(pattern) == set()

    def test_variable_ordering_independent(self):
        g = random_digraph(15, 0.15, seed=2)
        p1 = GraphPattern.build(
            {"A": "A", "B": "B", "C": "C"}, [("A", "B"), ("B", "C")]
        )
        p2 = GraphPattern.build(
            {"C": "C", "B": "B", "A": "A"}, [("A", "B"), ("B", "C")]
        )
        m1 = NaiveMatcher(g).match_set(p1)
        m2 = {(a, b, c) for c, b, a in NaiveMatcher(g).match_set(p2)}
        assert m1 == m2


class TestTwigStackD:
    def test_rejects_cyclic_data(self, cyclic_graph):
        with pytest.raises(ValueError):
            TwigStackD(cyclic_graph)

    def test_rejects_non_tree_pattern(self):
        g = random_dag(10, 0.2, seed=1)
        tsd = TwigStackD(g)
        diamond = GraphPattern.build(
            {"A": "A", "B": "B", "C": "C", "D": "D"},
            [("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")],
        )
        with pytest.raises(PatternError):
            tsd.match(diamond)

    def test_path_pattern_matches_naive(self):
        for seed in range(4):
            g = random_dag(25, 0.12, seed=seed)
            pattern = parse_pattern("A -> B -> C")
            expected = NaiveMatcher(g).match_set(pattern)
            got, metrics = TwigStackD(g).match(pattern)
            assert set(got) == expected
            assert metrics.result_rows == len(got)

    def test_tree_pattern_matches_naive(self):
        for seed in range(4):
            g = random_dag(22, 0.15, seed=seed)
            pattern = GraphPattern.build(
                {"A": "A", "B": "B", "C": "C", "D": "D"},
                [("A", "B"), ("A", "C"), ("B", "D")],
            )
            expected = NaiveMatcher(g).match_set(pattern)
            got, _ = TwigStackD(g).match(pattern)
            assert set(got) == expected

    def test_single_node_pattern(self):
        g = random_dag(10, 0.2, seed=3)
        pattern = GraphPattern.build({"A": "A"}, [])
        got, _ = TwigStackD(g).match(pattern)
        assert {r[0] for r in got} == set(g.extent("A"))

    def test_buffer_metrics_grow_with_density(self):
        patterns = parse_pattern("A -> B -> C")
        sparse = layered_dag(3, 6, edge_prob=0.2, alphabet="ABC", seed=2)
        dense = layered_dag(3, 6, edge_prob=0.9, alphabet="ABC", seed=2)
        _, m_sparse = TwigStackD(sparse).match(patterns)
        _, m_dense = TwigStackD(dense).match(patterns)
        assert m_dense.link_count >= m_sparse.link_count


class TestIGMJ:
    def test_pair_count_matches_naive_join(self):
        g = figure1_graph()
        engine = IGMJEngine(g)
        pattern = parse_pattern("B -> E")
        expected = NaiveMatcher(g).match_set(pattern)
        assert engine.pair_count("B", "E") == len(expected)

    def test_pair_count_cached(self):
        g = random_dag(15, 0.2, seed=1)
        engine = IGMJEngine(g)
        first = engine.pair_count("A", "B")
        assert engine.pair_count("A", "B") == first
        assert ("A", "B") in engine._pair_count_cache

    def test_matches_naive_on_digraphs_with_cycles(self, cyclic_graph):
        engine = IGMJEngine(cyclic_graph)
        pattern = parse_pattern("A -> C, C -> D")
        expected = NaiveMatcher(cyclic_graph).match_set(pattern)
        got, _ = engine.match(pattern)
        assert set(got) == expected

    def test_matches_naive_on_figure1_paper_pattern(self):
        g = figure1_graph()
        engine = IGMJEngine(g)
        pattern = parse_pattern("A -> C, B -> C, C -> D, D -> E")
        expected = NaiveMatcher(g).match_set(pattern)
        got, metrics = engine.match(pattern)
        assert set(got) == expected
        assert metrics.joins >= 3
        assert metrics.sorts >= 1  # temporal tables must be re-sorted

    def test_single_node_pattern(self):
        g = random_dag(10, 0.3, seed=5)
        pattern = GraphPattern.build({"B": "B"}, [])
        got, _ = IGMJEngine(g).match(pattern)
        assert {r[0] for r in got} == set(g.extent("B"))

    def test_selection_mode_used_for_closing_edges(self):
        g = figure1_graph()
        engine = IGMJEngine(g)
        pattern = GraphPattern.build(
            {"A": "A", "C": "C", "D": "D"},
            [("A", "C"), ("C", "D"), ("A", "D")],
        )
        expected = NaiveMatcher(g).match_set(pattern)
        got, _ = engine.match(pattern)
        assert set(got) == expected


@settings(max_examples=12, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=20),
    density=st.floats(min_value=0.05, max_value=0.3),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_tsd_and_igmj_match_naive_on_dags(n, density, seed):
    g = random_dag(n, density, seed=seed, alphabet="ABC")
    assume(all(g.extent(label) for label in "ABC"))
    pattern = parse_pattern("A -> B -> C")
    expected = NaiveMatcher(g).match_set(pattern)
    tsd_rows, _ = TwigStackD(g).match(pattern)
    igmj_rows, _ = IGMJEngine(g).match(pattern)
    assert set(tsd_rows) == expected
    assert set(igmj_rows) == expected


@settings(max_examples=12, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=18),
    density=st.floats(min_value=0.05, max_value=0.3),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_igmj_matches_naive_on_cyclic_digraphs(n, density, seed):
    g = random_digraph(n, density, seed=seed, alphabet="ABC")
    assume(all(g.extent(label) for label in "ABC"))
    pattern = parse_pattern("A -> B, B -> C, A -> C")
    expected = NaiveMatcher(g).match_set(pattern)
    got, _ = IGMJEngine(g).match(pattern)
    assert set(got) == expected
