"""Property tests for the vectorized batch kernels.

Every kernel in :mod:`repro.query.physical.kernels` follows builtin
``set`` semantics; these tests pin that equivalence over randomized and
adversarial inputs (empty, duplicate-laden, one-sided, disjoint), check
that the merge and gallop intersection strategies agree with each other
regardless of the dispatch heuristic, and verify the bookkeeping helpers
(dedup order and pre-dedup totals in ``gather_union``, stable label-pair
interning, block chunking).
"""

import random
from array import array

import pytest

from repro.query.physical import kernels
from repro.query.physical.kernels import (
    ARRAY_TYPECODE,
    GALLOP_RATIO,
    as_sorted_array,
    batch_get_centers,
    gather_union,
    intern_label_pair,
    intersect,
    intersect_gallop,
    intersect_merge,
    iter_blocks,
)


def sorted_arr(values):
    return array(ARRAY_TYPECODE, sorted(values))


class TestIntersect:
    CASES = [
        ([], []),
        ([], [1, 2, 3]),
        ([1, 2, 3], []),
        ([1], [1]),
        ([1], [2]),
        ([1, 2, 3], [1, 2, 3]),
        ([1, 3, 5], [2, 4, 6]),
        ([1, 2, 3], [3]),
        ([0], list(range(1000))),
        (list(range(0, 100, 3)), list(range(0, 100, 7))),
        ([-5, -1, 0, 7], [-1, 7, 9]),
    ]

    @pytest.mark.parametrize("a,b", CASES)
    def test_matches_set_semantics(self, a, b):
        expected = sorted(set(a) & set(b))
        assert list(intersect(sorted_arr(a), sorted_arr(b))) == expected

    @pytest.mark.parametrize("a,b", CASES)
    def test_merge_and_gallop_agree(self, a, b):
        sa, sb = sorted_arr(a), sorted_arr(b)
        expected = sorted(set(a) & set(b))
        assert list(intersect_merge(sa, sb)) == expected
        assert list(intersect_gallop(sa, sb)) == expected
        assert list(intersect_gallop(sb, sa)) == expected

    def test_randomized_against_set(self):
        rng = random.Random(42)
        for _ in range(200):
            a = [rng.randrange(200) for _ in range(rng.randrange(40))]
            b = [rng.randrange(200) for _ in range(rng.randrange(400))]
            expected = sorted(set(a) & set(b))
            sa, sb = as_sorted_array(a), as_sorted_array(b)
            assert list(intersect(sa, sb)) == expected
            assert list(intersect_merge(sa, sb)) == expected
            assert list(intersect_gallop(sa, sb)) == expected

    def test_duplicate_inputs_collapse(self):
        # kernels tolerate duplicates in sorted (non-dedup) inputs
        a = sorted_arr([1, 1, 2, 2, 3])
        b = sorted_arr([2, 2, 3, 3, 4])
        assert list(intersect_merge(a, b)) == [2, 3]
        assert list(intersect_gallop(a, b)) == [2, 3]

    def test_one_sided_empty_is_cheap_empty(self):
        out = intersect(array(ARRAY_TYPECODE), sorted_arr([1, 2]))
        assert list(out) == []
        out = intersect(sorted_arr([1, 2]), array(ARRAY_TYPECODE))
        assert list(out) == []

    def test_dispatch_uses_gallop_for_asymmetric_inputs(self, monkeypatch):
        calls = []
        real = kernels.intersect_gallop
        monkeypatch.setattr(
            kernels,
            "intersect_gallop",
            lambda small, large: calls.append(1) or real(small, large),
        )
        small = sorted_arr([5])
        large = sorted_arr(range(GALLOP_RATIO * 2))
        assert list(kernels.intersect(small, large)) == [5]
        assert calls, "asymmetric inputs should take the galloping path"

    def test_result_type_is_q_array(self):
        out = intersect(sorted_arr([1, 2]), sorted_arr([2, 3]))
        assert isinstance(out, array) and out.typecode == ARRAY_TYPECODE


class TestAsSortedArray:
    def test_sorts_and_dedups(self):
        assert list(as_sorted_array([3, 1, 2, 3, 1])) == [1, 2, 3]

    def test_empty(self):
        assert list(as_sorted_array([])) == []


class TestBatchGetCenters:
    def test_parallel_to_nodes(self):
        codes = [sorted_arr([1, 2, 9]), sorted_arr([]), sorted_arr([2, 5])]
        w = sorted_arr([2, 5, 9])
        out = batch_get_centers([10, 11, 12], codes, w)
        assert out == [(2, 9), (), (2, 5)]

    def test_empty_w_short_circuits(self):
        out = batch_get_centers([1, 2], [sorted_arr([1]), sorted_arr([2])], [])
        assert out == [(), ()]


class TestGatherUnion:
    def test_single_list_is_identity_with_volume(self):
        partners, total = gather_union([(3, 1, 2)])
        assert partners == (3, 1, 2)
        assert total == 3

    def test_first_seen_order_preserved(self):
        partners, total = gather_union([(5, 1), (1, 7), (7, 5, 2)])
        assert partners == (5, 1, 7, 2)
        assert total == 7  # pre-dedup volume: 2 + 2 + 3

    def test_empty_lists(self):
        assert gather_union([(), (), ()]) == ((), 0)

    def test_matches_scalar_dedup(self):
        # per-center subclusters are stored deduplicated (sorted tuples);
        # duplicates only ever appear *across* centers, never within one
        rng = random.Random(7)
        for _ in range(100):
            lists = [
                tuple(rng.sample(range(30), rng.randrange(8)))
                for _ in range(rng.randrange(1, 5))
            ]
            partners, total = gather_union(lists)
            # scalar Fetch semantics: first-seen dedup, per-node charge
            seen, expected = set(), []
            for nodes in lists:
                for node in nodes:
                    if node not in seen:
                        seen.add(node)
                        expected.append(node)
            assert list(partners) == expected
            assert total == sum(len(nodes) for nodes in lists)


class TestInternLabelPair:
    def test_stable_and_distinct(self):
        a = intern_label_pair("item", "person")
        b = intern_label_pair("person", "item")
        assert a != b  # ordered pairs
        assert intern_label_pair("item", "person") == a

    def test_ids_are_ints(self):
        assert isinstance(intern_label_pair("x", "y"), int)

    def test_table_is_bounded_by_limit(self, monkeypatch):
        monkeypatch.setattr(kernels, "PAIR_INTERN_LIMIT", 8)
        kernels.clear_pair_ids()  # start from an empty table
        for i in range(100):
            intern_label_pair(f"left{i}", f"right{i}")
        assert len(kernels._PAIR_IDS) <= 8

    def test_cap_overflow_clears_and_bumps_epoch(self, monkeypatch):
        monkeypatch.setattr(kernels, "PAIR_INTERN_LIMIT", 3)
        kernels.clear_pair_ids()
        epoch = kernels.pair_epoch()
        first = intern_label_pair("p0", "q0")
        intern_label_pair("p1", "q1")
        intern_label_pair("p2", "q2")
        assert kernels.pair_epoch() == epoch  # under the cap: no clear
        # re-interning an existing pair never triggers the overflow path
        assert intern_label_pair("p0", "q0") == first
        assert kernels.pair_epoch() == epoch
        # a fourth distinct pair overflows: table cleared, epoch bumped,
        # and ids restart from zero (recycled)
        overflow = intern_label_pair("p3", "q3")
        assert kernels.pair_epoch() == epoch + 1
        assert overflow == 0
        assert len(kernels._PAIR_IDS) == 1

    def test_ids_recycle_across_epochs(self):
        kernels.clear_pair_ids()
        old = intern_label_pair("recycled", "pair")
        kernels.clear_pair_ids()
        # a *different* pair interned first in the new epoch may reuse
        # the old id — exactly why epoch-blind consumers are unsound
        other = intern_label_pair("another", "pair")
        assert other == old == 0


class TestIterBlocks:
    def test_chunks_exact_multiple(self):
        assert list(iter_blocks(range(6), 3)) == [[0, 1, 2], [3, 4, 5]]

    def test_trailing_partial_block(self):
        assert list(iter_blocks(range(5), 3)) == [[0, 1, 2], [3, 4]]

    def test_empty_source_yields_nothing(self):
        assert list(iter_blocks([], 4)) == []

    def test_lazy_over_generator(self):
        def gen():
            yield from range(4)

        blocks = iter_blocks(gen(), 2)
        assert next(iter(blocks)) == [0, 1]
