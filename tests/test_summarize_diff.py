"""The CI regression gate's direction handling (summarize.py --diff).

Lower-is-better metrics (wall_ms, p99_ms, ...) flag growth; the
throughput metrics from the service scaling curve (qps, slot_speedup)
flag *drops*.  Both directions share one threshold.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_SUMMARIZE = Path(__file__).resolve().parent.parent / "benchmarks" / "summarize.py"
spec = importlib.util.spec_from_file_location("summarize", _SUMMARIZE)
summarize = importlib.util.module_from_spec(spec)
spec.loader.exec_module(summarize)


def bench_file(tmp_path, name, **metrics):
    entry = {"query": "mixed", "optimizer": "service", "variant": "scale-4"}
    entry.update(metrics)
    path = tmp_path / name
    path.write_text(json.dumps({"bench": "t", "entries": [entry]}))
    return str(path)


class TestDiffDirections:
    def test_wall_ms_growth_is_a_regression(self, tmp_path):
        old = bench_file(tmp_path, "old.json", wall_ms=100.0)
        new = bench_file(tmp_path, "new.json", wall_ms=130.0)
        lines = summarize.diff_bench_files(old, new)
        assert len(lines) == 1 and "wall_ms" in lines[0]

    def test_qps_drop_is_a_regression(self, tmp_path):
        old = bench_file(tmp_path, "old.json", qps=80.0)
        new = bench_file(tmp_path, "new.json", qps=60.0)
        lines = summarize.diff_bench_files(old, new)
        assert len(lines) == 1
        assert "qps" in lines[0] and "-25%" in lines[0]

    def test_qps_growth_is_not_a_regression(self, tmp_path):
        old = bench_file(tmp_path, "old.json", qps=60.0)
        new = bench_file(tmp_path, "new.json", qps=120.0)
        assert summarize.diff_bench_files(old, new) == []

    def test_slot_speedup_drop_is_a_regression(self, tmp_path):
        old = bench_file(tmp_path, "old.json", slot_speedup=2.0)
        new = bench_file(tmp_path, "new.json", slot_speedup=1.2)
        lines = summarize.diff_bench_files(old, new)
        assert len(lines) == 1 and "slot_speedup" in lines[0]

    def test_within_threshold_both_directions_pass(self, tmp_path):
        old = bench_file(tmp_path, "old.json", wall_ms=100.0, qps=80.0)
        new = bench_file(tmp_path, "new.json", wall_ms=110.0, qps=72.0)
        assert summarize.diff_bench_files(old, new) == []

    def test_run_diff_exit_codes(self, tmp_path, capsys):
        old = bench_file(tmp_path, "old.json", qps=80.0)
        bad = bench_file(tmp_path, "bad.json", qps=40.0)
        good = bench_file(tmp_path, "good.json", qps=81.0)
        assert summarize.run_diff(old, bad) == 1
        assert summarize.run_diff(old, good) == 0
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "no regressions" in out
