"""Differential property test: the scalar oracle vs the batch substrate.

The acceptance contract of the vectorized kernels: for every workload
pattern shape (paths, trees, graph queries) under every optimizer
(``dp``, ``dps``, ``greedy``) and under *both* drivers, batch mode
(``batch_size > 1`` + CenterCache) must produce the identical result set
— in fact the identical row sequence — and identical per-operator
logical counters (``rows_in``/``rows_out``/``centers_probed``/
``nodes_fetched``).  The counters are the stronger claim: batch mode
memoizes work per distinct node and per distinct centers tuple, but it
must still *charge* that work per row exactly as Algorithm 2 does.
"""

import pytest

from repro import GraphEngine
from repro.graph import xmark
from repro.query.executor import execute_plan
from repro.query.pipeline import execute_plan_streaming
from repro.query.physical.cache import CenterCache
from repro.workloads.patterns import PatternFactory

OPTIMIZERS = ("dp", "dps", "greedy")
BATCH_SIZE = 64  # small enough that every workload query spans many blocks


@pytest.fixture(scope="module")
def engine():
    data = xmark.generate(factor=0.1, entity_budget=600, seed=7)
    return GraphEngine(data.graph)


@pytest.fixture(scope="module")
def workload(engine):
    """Every Figure 4 family: 9 paths, 9 trees, 5 four-variable graphs."""
    factory = PatternFactory(engine.db.catalog, seed=11)
    patterns = {}
    patterns.update(factory.figure4_paths())
    patterns.update(factory.figure4_trees())
    patterns.update(factory.figure4_queries(4))
    return patterns


def op_counters(metrics):
    return [
        (op.operator, op.rows_in, op.rows_out, op.centers_probed, op.nodes_fetched)
        for op in metrics.operators
    ]


@pytest.mark.parametrize("optimizer", OPTIMIZERS)
def test_materializing_driver_scalar_vs_batch(engine, workload, optimizer):
    cache = CenterCache()
    for name, pattern in workload.items():
        plan = engine.plan(pattern, optimizer=optimizer).plan
        scalar = execute_plan(engine.db, plan)
        batch = execute_plan(
            engine.db, plan, batch_size=BATCH_SIZE, center_cache=cache
        )
        assert scalar.rows == batch.rows, f"{name}/{optimizer}: rows differ"
        assert op_counters(scalar.metrics) == op_counters(batch.metrics), (
            f"{name}/{optimizer}: per-operator counters differ"
        )


@pytest.mark.parametrize("optimizer", OPTIMIZERS)
def test_streaming_driver_scalar_vs_batch(engine, workload, optimizer):
    cache = CenterCache()
    for name, pattern in workload.items():
        plan = engine.plan(pattern, optimizer=optimizer).plan
        scalar = execute_plan_streaming(engine.db, plan)
        scalar_rows = list(scalar)
        batch = execute_plan_streaming(
            engine.db, plan, batch_size=BATCH_SIZE, center_cache=cache
        )
        batch_rows = list(batch)
        assert scalar_rows == batch_rows, f"{name}/{optimizer}: rows differ"
        assert op_counters(scalar.metrics) == op_counters(batch.metrics), (
            f"{name}/{optimizer}: per-operator counters differ"
        )


@pytest.mark.parametrize("optimizer", OPTIMIZERS)
def test_batch_without_cache_still_agrees(engine, workload, optimizer):
    """The kernels alone (no CenterCache) are already exact."""
    for name, pattern in list(workload.items())[:6]:
        plan = engine.plan(pattern, optimizer=optimizer).plan
        scalar = execute_plan(engine.db, plan)
        batch = execute_plan(engine.db, plan, batch_size=BATCH_SIZE)
        assert scalar.rows == batch.rows, f"{name}/{optimizer}"
        assert op_counters(scalar.metrics) == op_counters(batch.metrics)


@pytest.mark.parametrize("optimizer", OPTIMIZERS)
def test_warm_cache_changes_nothing_but_speed(engine, workload, optimizer):
    """Counters and rows are cache-oblivious: a warm cache only turns
    misses into hits."""
    cache = CenterCache()
    name, pattern = next(iter(workload.items()))
    plan = engine.plan(pattern, optimizer=optimizer).plan
    cold = execute_plan(engine.db, plan, batch_size=BATCH_SIZE, center_cache=cache)
    warm = execute_plan(engine.db, plan, batch_size=BATCH_SIZE, center_cache=cache)
    assert cold.rows == warm.rows
    assert op_counters(cold.metrics) == op_counters(warm.metrics)
    assert warm.metrics.center_cache.hits >= cold.metrics.center_cache.hits


def test_tiny_batch_size_agrees(engine, workload):
    """Block boundaries must be invisible: batch_size=2 still exact."""
    name, pattern = max(workload.items(), key=lambda kv: len(str(kv[1])))
    plan = engine.plan(pattern, optimizer="dps").plan
    scalar = execute_plan(engine.db, plan)
    batch = execute_plan(engine.db, plan, batch_size=2)
    assert scalar.rows == batch.rows
    assert op_counters(scalar.metrics) == op_counters(batch.metrics)


def test_engine_level_batch_flag(engine, workload):
    """GraphEngine(batch_size=...) default and per-call override agree."""
    pattern = next(iter(workload.values()))
    scalar = engine.match(pattern, batch_size=0)
    batched = engine.match(pattern, batch_size=BATCH_SIZE)
    assert scalar.rows == batched.rows
    assert op_counters(scalar.metrics) == op_counters(batched.metrics)
