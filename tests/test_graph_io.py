"""Tests for graph file I/O and the custom-graph CLI path."""

import pytest

from repro.cli import main
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_digraph
from repro.graph.io import (
    GraphFormatError,
    load_edge_list,
    load_json_graph,
    save_edge_list,
    save_json_graph,
)


@pytest.fixture
def sample_files(tmp_path):
    nodes = tmp_path / "nodes.tsv"
    edges = tmp_path / "edges.tsv"
    nodes.write_text("# comment\n0\tperson\n1\twatch\n2\tauction\n")
    edges.write_text("0\t1\n1\t2\n\n# trailing comment\n")
    return str(nodes), str(edges)


class TestEdgeList:
    def test_load(self, sample_files):
        nodes, edges = sample_files
        g = load_edge_list(nodes, edges)
        assert g.node_count == 3
        assert g.label(0) == "person"
        assert sorted(g.edges()) == [(0, 1), (1, 2)]

    def test_space_separated_also_accepted(self, tmp_path):
        nodes = tmp_path / "n.txt"
        edges = tmp_path / "e.txt"
        nodes.write_text("0 A\n1 B\n")
        edges.write_text("0 1\n")
        g = load_edge_list(str(nodes), str(edges))
        assert g.label(1) == "B"
        assert list(g.edges()) == [(0, 1)]

    def test_gap_ids_get_default_label(self, tmp_path):
        nodes = tmp_path / "n.tsv"
        edges = tmp_path / "e.tsv"
        nodes.write_text("0\tA\n5\tB\n")
        edges.write_text("0\t5\n")
        g = load_edge_list(str(nodes), str(edges))
        assert g.node_count == 6
        assert g.label(3) == DiGraph.DEFAULT_LABEL

    def test_roundtrip(self, tmp_path):
        g = random_digraph(20, 0.1, seed=3)
        nodes, edges = str(tmp_path / "n.tsv"), str(tmp_path / "e.tsv")
        save_edge_list(g, nodes, edges)
        back = load_edge_list(nodes, edges)
        assert list(back.labels()) == list(g.labels())
        assert sorted(back.edges()) == sorted(g.edges())

    @pytest.mark.parametrize(
        "nodes_text,edges_text",
        [
            ("0\tA\textra\n", "0\t0\n"),        # wrong arity in nodes
            ("x\tA\n", "0\t0\n"),               # non-integer node id
            ("-1\tA\n", ""),                    # negative node id
            ("0\tA\n0\tB\n", ""),               # duplicate node
            ("0\tA\n", "0\tb\n"),               # non-integer edge endpoint
            ("0\tA\n", "0\t-2\n"),              # negative endpoint
        ],
    )
    def test_malformed_rejected(self, tmp_path, nodes_text, edges_text):
        nodes = tmp_path / "n.tsv"
        edges = tmp_path / "e.tsv"
        nodes.write_text(nodes_text)
        edges.write_text(edges_text)
        with pytest.raises(GraphFormatError):
            load_edge_list(str(nodes), str(edges))


class TestJsonGraph:
    def test_roundtrip(self, tmp_path):
        g = random_digraph(15, 0.15, seed=9)
        path = str(tmp_path / "g.json")
        save_json_graph(g, path)
        back = load_json_graph(path)
        assert list(back.labels()) == list(g.labels())
        assert sorted(back.edges()) == sorted(g.edges())

    def test_malformed_payload(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"nope": 1}')
        with pytest.raises(GraphFormatError):
            load_json_graph(str(path))

    def test_malformed_edge(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"labels": ["A"], "edges": [[0]]}')
        with pytest.raises(GraphFormatError):
            load_json_graph(str(path))


class TestCliCustomGraph:
    def test_build_from_edge_list_and_query(self, sample_files, tmp_path, capsys):
        nodes, edges = sample_files
        out = str(tmp_path / "custom.db.json")
        assert main(["build", "--nodes", nodes, "--edges", edges,
                     "--out", out]) == 0
        capsys.readouterr()
        assert main(["query", out, "person -> auction"]) == 0
        captured = capsys.readouterr()
        assert "0\t2" in captured.out  # person 0 reaches auction 2 via watch

    def test_build_requires_both_files(self, sample_files, tmp_path, capsys):
        nodes, _ = sample_files
        rc = main(["build", "--nodes", nodes, "--out",
                   str(tmp_path / "x.json")])
        assert rc == 2
