"""Tests for plan execution mechanics: metrics, projection, row limits."""

import pytest

from repro import GraphEngine
from repro.graph.generators import figure1_graph, random_digraph
from repro.query.algebra import (
    FetchStep,
    FilterStep,
    Plan,
    RowLimitExceeded,
    SeedJoin,
    Side,
)
from repro.query.executor import execute_plan
from repro.query.parser import parse_pattern


@pytest.fixture(scope="module")
def engine():
    return GraphEngine(figure1_graph())


class TestExecution:
    def test_projection_order_follows_pattern_variables(self, engine):
        pattern = parse_pattern("C -> D, B -> C")
        result = engine.match(pattern)
        assert result.columns == ("C", "D", "B")
        g = engine.db.graph
        for c, d, b in result.rows:
            assert g.label(c) == "C"
            assert g.label(d) == "D"
            assert g.label(b) == "B"

    def test_operator_metrics_sequence_matches_plan(self, engine):
        optimized = engine.plan("A -> C, C -> D", optimizer="dp")
        result = execute_plan(engine.db, optimized.plan)
        assert len(result.metrics.operators) == len(optimized.plan.steps)

    def test_io_delta_only_covers_this_query(self, engine):
        engine.match("B -> C")  # warm up
        result = engine.match("B -> C")
        assert result.metrics.io.logical_reads == result.metrics.logical_io
        assert result.metrics.logical_io > 0

    def test_manual_plan_execution(self, engine):
        pattern = parse_pattern("B -> C, C -> D")
        plan = Plan(
            pattern,
            [
                SeedJoin(("B", "C")),
                FilterStep(((("C", "D"), Side.OUT),)),
                FetchStep(("C", "D"), Side.OUT),
            ],
        )
        manual = execute_plan(engine.db, plan)
        optimized = engine.match(pattern)
        assert manual.as_set() == optimized.as_set()


class TestRowLimit:
    def test_row_limit_raises_on_blowup(self):
        g = random_digraph(30, 0.3, seed=3)
        engine = GraphEngine(g)
        pattern = parse_pattern("A -> B, B -> C")
        full = engine.match(pattern)
        assert len(full) > 10
        with pytest.raises(RowLimitExceeded):
            engine.match(pattern, row_limit=5)

    def test_row_limit_allows_small_queries(self, engine):
        result = engine.match("A -> C, C -> D", row_limit=10_000)
        unlimited = engine.match("A -> C, C -> D")
        assert result.as_set() == unlimited.as_set()

    def test_row_limit_caps_intermediates_not_only_result(self):
        """A query whose final result is small but whose intermediate is
        large must still trip the guard."""
        g = random_digraph(40, 0.25, seed=9)
        engine = GraphEngine(g)
        # A->B joins are big; the closing A->C selection shrinks them
        pattern = parse_pattern("A -> B, B -> C, A -> C")
        full = engine.match(pattern)
        limit = max(1, full.metrics.peak_temporal_rows - 1)
        if full.metrics.peak_temporal_rows > len(full):
            with pytest.raises(RowLimitExceeded):
                engine.match(pattern, row_limit=min(limit, len(full)))


class TestValidatorHelper:
    def test_row_limit_validator(self):
        from repro.workloads.runner import row_limit_validator

        g = random_digraph(30, 0.3, seed=3)
        engine = GraphEngine(g)
        tight = row_limit_validator(engine, row_limit=5)
        loose = row_limit_validator(engine, row_limit=10_000_000)
        pattern = parse_pattern("A -> B, B -> C")
        assert not tight(pattern)
        assert loose(pattern)
