"""Unit and property tests for traversals and the reachability oracle."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.digraph import DiGraph, GraphError
from repro.graph.generators import random_digraph
from repro.graph.traversal import (
    TransitiveClosure,
    bfs_order,
    dfs_postorder,
    is_dag,
    is_reachable,
    reachable_set,
    topological_sort,
)


def _to_networkx(graph: DiGraph) -> nx.DiGraph:
    nxg = nx.DiGraph()
    nxg.add_nodes_from(graph.nodes())
    nxg.add_edges_from(graph.edges())
    return nxg


class TestBFS:
    def test_bfs_order_starts_at_source(self, small_dag):
        order = bfs_order(small_dag, 0)
        assert order[0] == 0
        assert set(order) == {0, 1, 3, 4, 5}

    def test_reachable_set_includes_self(self, small_dag):
        assert 5 in reachable_set(small_dag, 5)
        assert reachable_set(small_dag, 5) == {5}

    def test_is_reachable_matches_reachable_set(self, small_dag):
        for u in small_dag.nodes():
            closure = reachable_set(small_dag, u)
            for v in small_dag.nodes():
                assert is_reachable(small_dag, u, v) == (v in closure)

    def test_reachability_through_cycle(self, cyclic_graph):
        assert is_reachable(cyclic_graph, 0, 3)
        assert is_reachable(cyclic_graph, 2, 1)
        assert not is_reachable(cyclic_graph, 3, 0)


class TestDFSPostorder:
    def test_covers_all_nodes(self, small_dag):
        order = dfs_postorder(small_dag)
        assert sorted(order) == list(small_dag.nodes())

    def test_parent_after_children_in_tree(self):
        g = DiGraph()
        g.add_nodes(["A"] * 3)
        g.add_edges([(0, 1), (0, 2)])
        order = dfs_postorder(g)
        assert order.index(0) > order.index(1)
        assert order.index(0) > order.index(2)

    def test_deep_path_does_not_recurse(self):
        n = 5000
        g = DiGraph()
        g.add_nodes(["A"] * n)
        g.add_edges([(i, i + 1) for i in range(n - 1)])
        order = dfs_postorder(g)
        assert order[0] == n - 1
        assert order[-1] == 0


class TestTopologicalSort:
    def test_respects_edges(self, small_dag):
        order = topological_sort(small_dag)
        position = {v: i for i, v in enumerate(order)}
        for u, v in small_dag.edges():
            assert position[u] < position[v]

    def test_raises_on_cycle(self, cyclic_graph):
        with pytest.raises(GraphError):
            topological_sort(cyclic_graph)

    def test_is_dag(self, small_dag, cyclic_graph):
        assert is_dag(small_dag)
        assert not is_dag(cyclic_graph)


class TestTransitiveClosure:
    def test_matches_networkx(self):
        g = random_digraph(40, 0.08, seed=17)
        tc = TransitiveClosure(g)
        nx_closure = nx.transitive_closure(_to_networkx(g), reflexive=True)
        for u in g.nodes():
            for v in g.nodes():
                assert tc.reaches(u, v) == (nx_closure.has_edge(u, v) or u == v)

    def test_pairs_excludes_self(self, small_dag):
        pairs = set(TransitiveClosure(small_dag).pairs())
        assert all(u != v for u, v in pairs)
        assert (0, 3) in pairs


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=25),
    density=st.floats(min_value=0.0, max_value=0.3),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_reachability_consistency(n, density, seed):
    """is_reachable, reachable_set and TransitiveClosure always agree."""
    g = random_digraph(n, density, seed=seed)
    tc = TransitiveClosure(g)
    for u in g.nodes():
        closure = reachable_set(g, u)
        assert closure == tc.successors_closure(u)
        for v in g.nodes():
            assert is_reachable(g, u, v) == (v in closure)
