"""Tests for the random graph generators and the Figure 1 example graph."""

from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    figure1_graph,
    layered_dag,
    random_dag,
    random_digraph,
    random_tree,
)
from repro.graph.traversal import is_dag, is_reachable


class TestRandomGenerators:
    def test_random_digraph_deterministic_per_seed(self):
        a = random_digraph(20, 0.1, seed=42)
        b = random_digraph(20, 0.1, seed=42)
        assert list(a.edges()) == list(b.edges())
        assert a.labels() == b.labels()

    def test_random_digraph_different_seeds_differ(self):
        a = random_digraph(20, 0.1, seed=1)
        b = random_digraph(20, 0.1, seed=2)
        assert list(a.edges()) != list(b.edges())

    def test_random_digraph_no_self_loops(self):
        g = random_digraph(15, 0.5, seed=3)
        assert all(u != v for u, v in g.edges())

    def test_random_dag_is_acyclic(self):
        for seed in range(5):
            assert is_dag(random_dag(30, 0.2, seed=seed))

    def test_random_dag_edge_probability_extremes(self):
        assert random_dag(10, 0.0, seed=0).edge_count == 0
        full = random_dag(10, 1.0, seed=0)
        assert full.edge_count == 10 * 9 // 2

    def test_random_tree_shape(self):
        g = random_tree(25, seed=7)
        assert g.node_count == 25
        assert g.edge_count == 24
        assert is_dag(g)
        # every non-root node has exactly one parent
        assert all(g.in_degree(v) == 1 for v in range(1, 25))
        assert g.in_degree(0) == 0

    def test_random_tree_respects_max_children(self):
        g = random_tree(40, max_children=2, seed=9)
        assert all(g.out_degree(v) <= 2 for v in g.nodes())

    def test_layered_dag_edges_cross_adjacent_layers(self):
        g = layered_dag(3, 4, edge_prob=1.0, seed=1)
        assert g.node_count == 12
        assert is_dag(g)
        for u, v in g.edges():
            assert v // 4 == u // 4 + 1  # next layer only

    def test_empty_tree(self):
        assert random_tree(0).node_count == 0


class TestFigure1Graph:
    """The generator must be consistent with facts stated in the paper."""

    def setup_method(self):
        self.g = figure1_graph()
        self.by_name = {}
        counters = {}
        for v in self.g.nodes():
            label = self.g.label(v)
            idx = counters.get(label, 0)
            counters[label] = idx + 1
            self.by_name[f"{label.lower()}{idx}"] = v

    def test_extent_sizes_match_figure2(self):
        assert len(self.g.extent("A")) == 1
        assert len(self.g.extent("B")) == 7
        assert len(self.g.extent("C")) == 4
        assert len(self.g.extent("D")) == 6
        assert len(self.g.extent("E")) == 8

    def test_example_2hop_triple(self):
        """S({b3, b4}, c2, {e2}): b3 ~> c2, b4 ~> c2, c2 ~> e2."""
        n = self.by_name
        assert is_reachable(self.g, n["b3"], n["c2"])
        assert is_reachable(self.g, n["b4"], n["c2"])
        assert is_reachable(self.g, n["c2"], n["e2"])

    def test_paper_match_exists(self):
        """(a0, b0, c1, d2, e1) matches A->C, B->C, C->D, D->E."""
        n = self.by_name
        assert is_reachable(self.g, n["a0"], n["c1"])
        assert is_reachable(self.g, n["b0"], n["c1"])
        assert is_reachable(self.g, n["c1"], n["d2"])
        assert is_reachable(self.g, n["d2"], n["e1"])

    def test_hpsj_example_pair(self):
        """Section 3.1: (b0, e7) appears in T_B ⋈_{B->E} T_E."""
        n = self.by_name
        assert is_reachable(self.g, n["b0"], n["e7"])
