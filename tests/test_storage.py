"""Tests for pages, disk manager, buffer pool and heap files."""

import pytest

from repro.storage.buffer import BufferPool
from repro.storage.heapfile import HeapFile
from repro.storage.pages import (
    DEFAULT_PAGE_SIZE,
    DiskManager,
    Page,
    PageFullError,
    record_size,
)
from repro.storage.stats import IOStats


class TestRecordSize:
    def test_scalars(self):
        assert record_size(5) == 4
        assert record_size(3.14) == 8
        assert record_size(True) == 1
        assert record_size(None) == 1
        assert record_size("abc") == 4
        assert record_size(b"abc") == 3

    def test_containers_recursive(self):
        assert record_size((1, 2)) == 4 + 8
        assert record_size([1, (2, 3)]) == 4 + 4 + (4 + 8)
        assert record_size({"a": 1}) == 4 + 2 + 4

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            record_size(object())


class TestPage:
    def test_append_and_get(self):
        page = Page(0, capacity=256)
        slot = page.append((1, 2, 3))
        assert slot == 0
        assert page.get(0) == (1, 2, 3)
        assert len(page) == 1

    def test_fills_up_and_raises(self):
        page = Page(0, capacity=64)
        inserted = 0
        with pytest.raises(PageFullError):
            while True:
                page.append((inserted,))
                inserted += 1
        assert inserted >= 2
        assert page.free_space() < 12

    def test_oversized_record_on_empty_page_is_stored(self):
        page = Page(0, capacity=32)
        page.append(tuple(range(100)))  # bigger than the page
        assert len(page) == 1
        assert page.free_space() < 0 or page.used >= 32

    def test_put_adjusts_budget(self):
        page = Page(0, capacity=256)
        page.append((1,))
        used_before = page.used
        page.put(0, (1, 2, 3))
        assert page.used == used_before + 8
        assert page.get(0) == (1, 2, 3)

    def test_put_untracked_keeps_budget(self):
        page = Page(0, capacity=256)
        page.append((1,))
        used_before = page.used
        page.put_untracked(0, tuple(range(50)))
        assert page.used == used_before
        assert page.dirty


class TestDiskManager:
    def test_allocate_sequential_ids(self):
        disk = DiskManager()
        assert disk.allocate().page_id == 0
        assert disk.allocate().page_id == 1
        assert disk.page_count == 2

    def test_read_unallocated_raises(self):
        with pytest.raises(KeyError):
            DiskManager().read_page(7)


class TestBufferPool:
    def _pool(self, frames: int) -> BufferPool:
        disk = DiskManager(page_size=64)
        return BufferPool(disk, capacity_bytes=64 * frames, stats=IOStats())

    def test_fetch_hit_after_new_page(self):
        pool = self._pool(4)
        page = pool.new_page()
        fetched = pool.fetch(page.page_id)
        assert fetched is page
        assert pool.stats.physical_reads == 0
        assert pool.stats.logical_reads == 1

    def test_new_page_is_not_an_io_event(self):
        """Allocation moves no read counter — the documented contract.

        ``new_page`` admits a fresh frame without reading anything, so
        ``logical_reads``/``physical_reads`` stay put; the page's first
        write-back is what lands in ``physical_writes``.  Every
        I/O-count assertion in the suite is calibrated against this.
        """
        pool = self._pool(4)
        for _ in range(3):
            pool.new_page()
        assert pool.stats.logical_reads == 0
        assert pool.stats.physical_reads == 0
        assert pool.stats.physical_writes == 0

    def test_eviction_causes_physical_read(self):
        pool = self._pool(2)
        pages = [pool.new_page() for _ in range(3)]  # evicts pages[0]
        assert pool.resident_pages == 2
        pool.fetch(pages[0].page_id)  # miss
        assert pool.stats.physical_reads == 1

    def test_lru_keeps_recently_used(self):
        pool = self._pool(2)
        p0 = pool.new_page()
        p1 = pool.new_page()
        pool.fetch(p0.page_id)   # p1 is now LRU
        pool.new_page()          # evicts p1
        pool.fetch(p0.page_id)
        assert pool.stats.physical_reads == 0
        pool.fetch(p1.page_id)
        assert pool.stats.physical_reads == 1

    def test_dirty_eviction_writes_back(self):
        pool = self._pool(1)
        page = pool.new_page()
        page.append((1,))
        pool.new_page()  # evicts the dirty page
        assert pool.stats.physical_writes == 1
        refetched = pool.fetch(page.page_id)
        assert refetched.get(0) == (1,)

    def test_hit_ratio(self):
        pool = self._pool(4)
        page = pool.new_page()
        for _ in range(9):
            pool.fetch(page.page_id)
        assert pool.stats.hit_ratio == 1.0

    def test_clear_cold_starts(self):
        pool = self._pool(4)
        page = pool.new_page()
        pool.clear()
        pool.fetch(page.page_id)
        assert pool.stats.physical_reads == 1


class TestIOStats:
    def test_delta_since(self):
        stats = IOStats()
        stats.physical_reads = 5
        snap = stats.snapshot()
        stats.physical_reads = 12
        stats.record_lookup("pk")
        delta = stats.delta_since(snap)
        assert delta.physical_reads == 7
        assert delta.index_lookups == {"pk": 1}

    def test_reset(self):
        stats = IOStats()
        stats.logical_reads = 3
        stats.record_lookup("x")
        stats.reset()
        assert stats.logical_reads == 0
        assert stats.index_lookups == {}


class TestHeapFile:
    def _heap(self) -> HeapFile:
        pool = BufferPool(DiskManager(page_size=128), capacity_bytes=1024)
        return HeapFile(pool)

    def test_append_and_read(self):
        heap = self._heap()
        rid = heap.append((1, 2))
        assert heap.read(rid) == (1, 2)
        assert len(heap) == 1

    def test_scan_order_preserved(self):
        heap = self._heap()
        rows = [(i, i * i) for i in range(50)]
        heap.extend(rows)
        assert list(heap.records()) == rows
        assert heap.page_count > 1  # spilled past one page

    def test_scan_yields_record_ids(self):
        heap = self._heap()
        rids = [heap.append((i,)) for i in range(10)]
        scanned = [rid for rid, _ in heap.scan()]
        assert scanned == rids

    def test_full_scan_costs_page_reads(self):
        heap = self._heap()
        heap.extend((i,) for i in range(100))
        heap.pool.stats.reset()
        list(heap.records())
        assert heap.pool.stats.logical_reads == heap.page_count
