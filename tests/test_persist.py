"""Tests for database save/load."""

import json

import pytest

from repro.baselines.naive import NaiveMatcher
from repro.db.database import GraphDatabase
from repro.db.persist import FORMAT_VERSION, load_database, save_database
from repro.graph.generators import figure1_graph, random_digraph
from repro.query.engine import GraphEngine
from repro.query.executor import execute_plan
from repro.query.parser import parse_pattern


class TestRoundTrip:
    def test_graph_and_labeling_survive(self, tmp_path):
        db = GraphDatabase(figure1_graph())
        path = str(tmp_path / "fig1.db.json")
        save_database(db, path)
        loaded = load_database(path)
        assert loaded.graph.node_count == db.graph.node_count
        assert loaded.graph.edge_count == db.graph.edge_count
        assert list(loaded.graph.labels()) == list(db.graph.labels())
        assert loaded.labeling.in_codes == db.labeling.in_codes
        assert loaded.labeling.out_codes == db.labeling.out_codes

    def test_loaded_database_answers_queries(self, tmp_path):
        g = random_digraph(25, 0.1, seed=13)
        db = GraphDatabase(g)
        path = str(tmp_path / "rand.db.json")
        save_database(db, path)
        loaded = load_database(path)

        pattern = parse_pattern("A -> B, B -> C")
        naive = NaiveMatcher(g).match_set(pattern)
        engine = GraphEngine.__new__(GraphEngine)  # wrap the loaded db
        engine.db = loaded
        from repro.query.costmodel import CostParams

        engine.cost_params = CostParams()
        assert engine.match(pattern).as_set() == naive

    def test_reaches_identical_after_reload(self, tmp_path):
        g = random_digraph(20, 0.15, seed=4)
        db = GraphDatabase(g)
        path = str(tmp_path / "r.db.json")
        save_database(db, path)
        loaded = load_database(path)
        for u in g.nodes():
            for v in g.nodes():
                assert db.reaches(u, v) == loaded.reaches(u, v)

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        db = GraphDatabase(figure1_graph())
        path = tmp_path / "x.json"
        save_database(db, str(path))
        assert path.exists()
        assert not (tmp_path / "x.json.tmp").exists()


class TestVersioning:
    def test_wrong_version_rejected(self, tmp_path):
        db = GraphDatabase(figure1_graph())
        path = tmp_path / "v.json"
        save_database(db, str(path))
        payload = json.loads(path.read_text())
        payload["format_version"] = FORMAT_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            load_database(str(path))

    def test_missing_version_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"graph": {}}))
        with pytest.raises(ValueError):
            load_database(str(path))
