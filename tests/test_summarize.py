"""Tests for the benchmark-JSON summarizer."""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from summarize import available_figures, figure_table, load_measurements, main


@pytest.fixture
def bench_json(tmp_path):
    payload = {
        "benchmarks": [
            {
                "name": "test_fig5a[DP-P1]",
                "stats": {"mean": 0.0123},
                "extra_info": {
                    "figure": "5a", "query": "P1", "engine": "DP",
                    "rows": 42, "physical_io": 7,
                },
            },
            {
                "name": "test_fig5a[TSD-P1]",
                "stats": {"mean": 0.456},
                "extra_info": {
                    "figure": "5a", "query": "P1", "engine": "TSD", "rows": 42,
                },
            },
            {
                "name": "test_fig7[dp-XS]",
                "stats": {"mean": 0.002},
                "extra_info": {
                    "figure": "7", "dataset": "XS", "engine": "DP",
                    "rows": 5, "physical_io": 1,
                },
            },
        ]
    }
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(payload))
    return str(path)


class TestSummarize:
    def test_load_measurements(self, bench_json):
        measurements = load_measurements(bench_json)
        assert len(measurements) == 3
        assert measurements[0]["engine"] == "DP"
        assert measurements[0]["mean_seconds"] == pytest.approx(0.0123)

    def test_available_figures_preserves_order(self, bench_json):
        assert available_figures(load_measurements(bench_json)) == ["5a", "7"]

    def test_figure_table_renders_series(self, bench_json):
        table = figure_table(load_measurements(bench_json), "5a")
        assert "P1" in table
        assert "DP" in table and "TSD" in table
        assert "0.0123" in table
        assert "0.4560" in table

    def test_missing_io_rendered_as_dash(self, bench_json):
        table = figure_table(load_measurements(bench_json), "5a")
        # TSD has no physical_io field
        assert "-" in table

    def test_unknown_figure(self, bench_json):
        table = figure_table(load_measurements(bench_json), "99")
        assert "no measurements" in table

    def test_main_prints_all_figures(self, bench_json, capsys):
        assert main([bench_json]) == 0
        out = capsys.readouterr().out
        assert "figure 5a" in out and "figure 7" in out

    def test_main_single_figure(self, bench_json, capsys):
        assert main([bench_json, "--figure", "7"]) == 0
        out = capsys.readouterr().out
        assert "figure 7" in out and "figure 5a" not in out

    def test_main_empty_file(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text('{"benchmarks": []}')
        assert main([str(path)]) == 1
