"""Tests for the benchmark-JSON summarizer."""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from summarize import (
    available_figures,
    diff_bench_files,
    figure_table,
    load_measurements,
    main,
)


@pytest.fixture
def bench_json(tmp_path):
    payload = {
        "benchmarks": [
            {
                "name": "test_fig5a[DP-P1]",
                "stats": {"mean": 0.0123},
                "extra_info": {
                    "figure": "5a", "query": "P1", "engine": "DP",
                    "rows": 42, "physical_io": 7,
                },
            },
            {
                "name": "test_fig5a[TSD-P1]",
                "stats": {"mean": 0.456},
                "extra_info": {
                    "figure": "5a", "query": "P1", "engine": "TSD", "rows": 42,
                },
            },
            {
                "name": "test_fig7[dp-XS]",
                "stats": {"mean": 0.002},
                "extra_info": {
                    "figure": "7", "dataset": "XS", "engine": "DP",
                    "rows": 5, "physical_io": 1,
                },
            },
        ]
    }
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(payload))
    return str(path)


class TestSummarize:
    def test_load_measurements(self, bench_json):
        measurements = load_measurements(bench_json)
        assert len(measurements) == 3
        assert measurements[0]["engine"] == "DP"
        assert measurements[0]["mean_seconds"] == pytest.approx(0.0123)

    def test_available_figures_preserves_order(self, bench_json):
        assert available_figures(load_measurements(bench_json)) == ["5a", "7"]

    def test_figure_table_renders_series(self, bench_json):
        table = figure_table(load_measurements(bench_json), "5a")
        assert "P1" in table
        assert "DP" in table and "TSD" in table
        assert "0.0123" in table
        assert "0.4560" in table

    def test_missing_io_rendered_as_dash(self, bench_json):
        table = figure_table(load_measurements(bench_json), "5a")
        # TSD has no physical_io field
        assert "-" in table

    def test_unknown_figure(self, bench_json):
        table = figure_table(load_measurements(bench_json), "99")
        assert "no measurements" in table

    def test_main_prints_all_figures(self, bench_json, capsys):
        assert main([bench_json]) == 0
        out = capsys.readouterr().out
        assert "figure 5a" in out and "figure 7" in out

    def test_main_single_figure(self, bench_json, capsys):
        assert main([bench_json, "--figure", "7"]) == 0
        out = capsys.readouterr().out
        assert "figure 7" in out and "figure 5a" not in out

    def test_main_empty_file(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text('{"benchmarks": []}')
        assert main([str(path)]) == 1


def _bench_file(tmp_path, name, entries):
    path = tmp_path / name
    path.write_text(json.dumps({"bench": "x", "budget": 1500, "entries": entries}))
    return str(path)


class TestDiff:
    def _entry(self, query, optimizer, wall_ms, variant=None):
        return {
            "query": query,
            "optimizer": optimizer,
            "variant": variant,
            "wall_ms": wall_ms,
            "rows": 10,
            "operators": [],
            "cache_hit_rate": None,
        }

    def test_no_regression_within_threshold(self, tmp_path):
        old = _bench_file(tmp_path, "old.json", [self._entry("Q1", "dps", 10.0)])
        new = _bench_file(tmp_path, "new.json", [self._entry("Q1", "dps", 11.4)])
        assert diff_bench_files(old, new) == []
        assert main(["--diff", old, new]) == 0

    def test_regression_over_15_percent_flagged(self, tmp_path, capsys):
        old = _bench_file(tmp_path, "old.json", [self._entry("Q1", "dps", 10.0)])
        new = _bench_file(tmp_path, "new.json", [self._entry("Q1", "dps", 12.0)])
        lines = diff_bench_files(old, new)
        assert len(lines) == 1 and "Q1/dps" in lines[0]
        assert main(["--diff", old, new]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_improvement_is_not_a_regression(self, tmp_path):
        old = _bench_file(tmp_path, "old.json", [self._entry("Q1", "dps", 10.0)])
        new = _bench_file(tmp_path, "new.json", [self._entry("Q1", "dps", 4.0)])
        assert diff_bench_files(old, new) == []

    def test_entries_matched_on_variant(self, tmp_path):
        old = _bench_file(
            tmp_path,
            "old.json",
            [self._entry("Q1", "dps", 10.0, "scalar"),
             self._entry("Q1", "dps", 2.0, "batch")],
        )
        new = _bench_file(
            tmp_path,
            "new.json",
            [self._entry("Q1", "dps", 10.5, "scalar"),
             self._entry("Q1", "dps", 3.0, "batch")],
        )
        lines = diff_bench_files(old, new)
        assert len(lines) == 1
        assert "Q1/dps/batch" in lines[0]

    def test_alloc_peak_regression_flagged(self, tmp_path):
        old = _bench_file(tmp_path, "old.json", [
            dict(self._entry("Q1", "dps", 10.0, "native"), alloc_peak_kib=100.0)
        ])
        new = _bench_file(tmp_path, "new.json", [
            dict(self._entry("Q1", "dps", 10.0, "native"), alloc_peak_kib=200.0)
        ])
        lines = diff_bench_files(old, new)
        assert len(lines) == 1
        assert "alloc_peak_kib" in lines[0] and "KiB" in lines[0]
        assert "Q1/dps/native" in lines[0]

    def test_cold_cache_regression_flagged(self, tmp_path):
        old = _bench_file(tmp_path, "old.json", [
            dict(self._entry("Q1", "dps", 10.0), cold_wall_ms=50.0)
        ])
        new = _bench_file(tmp_path, "new.json", [
            dict(self._entry("Q1", "dps", 10.0), cold_wall_ms=80.0)
        ])
        lines = diff_bench_files(old, new)
        assert len(lines) == 1
        assert "cold_wall_ms" in lines[0]

    def test_latency_percentile_regression_flagged(self, tmp_path):
        old = _bench_file(tmp_path, "old.json", [
            dict(self._entry("mixed", "service", 100.0, "steady"),
                 p50_ms=5.0, p95_ms=9.0, p99_ms=12.0)
        ])
        new = _bench_file(tmp_path, "new.json", [
            dict(self._entry("mixed", "service", 100.0, "steady"),
                 p50_ms=5.2, p95_ms=9.1, p99_ms=20.0)
        ])
        lines = diff_bench_files(old, new)
        assert len(lines) == 1
        assert "p99_ms" in lines[0] and "mixed/service/steady" in lines[0]

    def test_shed_rate_regression_flagged(self, tmp_path):
        old = _bench_file(tmp_path, "old.json", [
            dict(self._entry("mixed", "service", 100.0, "overload"),
                 shed_rate=0.30)
        ])
        new = _bench_file(tmp_path, "new.json", [
            dict(self._entry("mixed", "service", 100.0, "overload"),
                 shed_rate=0.60)
        ])
        lines = diff_bench_files(old, new)
        assert len(lines) == 1
        assert "shed_rate" in lines[0]
        # dimensionless ratio: no trailing unit glued onto the numbers
        assert "0.60ms" not in lines[0] and "0.60KiB" not in lines[0]

    def test_missing_metric_is_skipped(self, tmp_path):
        # a file written before a metric existed cannot regress on it
        old = _bench_file(tmp_path, "old.json", [
            dict(self._entry("Q1", "dps", 10.0), alloc_peak_kib=100.0)
        ])
        new = _bench_file(tmp_path, "new.json", [self._entry("Q1", "dps", 10.0)])
        assert diff_bench_files(old, new) == []

    def test_unmatched_entries_reported_not_flagged(self, tmp_path, capsys):
        old = _bench_file(tmp_path, "old.json", [self._entry("Q1", "dps", 10.0)])
        new = _bench_file(tmp_path, "new.json", [self._entry("Q2", "dps", 99.0)])
        assert main(["--diff", old, new]) == 0
        out = capsys.readouterr().out
        assert "only in old" in out and "only in new" in out
