"""Tests for the chain-cover reachability index."""

from hypothesis import given, settings, strategies as st

from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag, random_digraph, random_tree
from repro.graph.traversal import TransitiveClosure
from repro.labeling.chaincover import build_chain_cover
from repro.labeling.twohop import build_two_hop


def assert_cover_correct(graph):
    cover = build_chain_cover(graph)
    closure = TransitiveClosure(graph)
    for u in graph.nodes():
        for v in graph.nodes():
            assert cover.reaches(u, v) == closure.reaches(u, v), (u, v)


class TestChainCover:
    def test_chain_graph_single_chain(self):
        g = DiGraph()
        g.add_nodes(["A"] * 6)
        g.add_edges([(i, i + 1) for i in range(5)])
        cover = build_chain_cover(g)
        assert cover.chain_count == 1
        assert_cover_correct(g)

    def test_antichain_needs_many_chains(self):
        g = DiGraph()
        g.add_nodes(["A"] * 7)  # no edges: every node is its own chain
        cover = build_chain_cover(g)
        assert cover.chain_count == 7
        assert_cover_correct(g)

    def test_self_reachability(self):
        g = random_dag(15, 0.2, seed=1)
        cover = build_chain_cover(g)
        assert all(cover.reaches(v, v) for v in g.nodes())

    def test_cycles_share_coordinates(self, cyclic_graph):
        cover = build_chain_cover(cyclic_graph)
        assert cover.chain_of[0] == cover.chain_of[1] == cover.chain_of[2]
        assert_cover_correct(cyclic_graph)

    def test_positions_increase_along_chains(self):
        g = random_dag(30, 0.15, seed=4)
        cover = build_chain_cover(g)
        by_chain = {}
        closure = TransitiveClosure(g)
        for v in g.nodes():
            by_chain.setdefault(cover.chain_of[v], []).append(v)
        for members in by_chain.values():
            members.sort(key=lambda v: cover.position_of[v])
            for a, b in zip(members, members[1:]):
                assert closure.reaches(a, b)  # chains are real chains

    def test_index_entries_counts_finite_cells(self):
        g = random_dag(20, 0.2, seed=6)
        cover = build_chain_cover(g)
        assert 0 < cover.index_entries() <= g.node_count * cover.chain_count

    def test_tradeoff_vs_twohop_on_wide_graphs(self):
        """Wide (star) graphs: chain-cover index blows up in k while the
        2-hop cover stays near-linear — the historical motivation."""
        g = DiGraph()
        root = g.add_node("R")
        leaves = [g.add_node("L") for _ in range(60)]
        for leaf in leaves:
            g.add_edge(root, leaf)
        cover = build_chain_cover(g)
        labeling = build_two_hop(g)
        assert cover.chain_count >= 60  # one chain per unordered leaf
        assert labeling.cover_size() <= 3 * g.node_count


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=25),
    density=st.floats(min_value=0.0, max_value=0.35),
    seed=st.integers(min_value=0, max_value=100_000),
)
def test_property_chain_cover_equals_bfs(n, density, seed):
    g = random_digraph(n, density, seed=seed)
    assert_cover_correct(g)


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=25),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_tree_chain_cover(n, seed):
    g = random_tree(n, seed=seed)
    assert_cover_correct(g)
