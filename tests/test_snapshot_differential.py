"""Differential property test: built database vs snapshot-loaded database.

The acceptance contract of the snapshot subsystem: for every workload
pattern shape (paths, trees, graph queries) under both paper optimizers
(``dp``, ``dps``) and both drivers (materializing, streaming), a database
loaded from a binary snapshot must produce the *identical result set*
and *identical per-operator metrics* (``rows_in``/``rows_out``/
``centers_probed``/``nodes_fetched``) as the database that wrote it —
the lazy mmap-backed read path is invisible to the query layer.
"""

import pytest

from repro import GraphEngine
from repro.db.persist import load_database, save_database
from repro.graph import xmark
from repro.query.executor import execute_plan
from repro.query.pipeline import execute_plan_streaming
from repro.workloads.patterns import PatternFactory

OPTIMIZERS = ("dp", "dps")


@pytest.fixture(scope="module")
def engine():
    data = xmark.generate(factor=0.1, entity_budget=600, seed=7)
    return GraphEngine(data.graph)


@pytest.fixture(scope="module")
def snapshot_engine(engine, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("snapdiff") / "db.snap")
    save_database(engine.db, path)
    return GraphEngine.from_database(load_database(path))


@pytest.fixture(scope="module")
def workload(engine):
    """Every Figure 4 family: 9 paths, 9 trees, 5 four-variable graphs."""
    factory = PatternFactory(engine.db.catalog, seed=11)
    patterns = {}
    patterns.update(factory.figure4_paths())
    patterns.update(factory.figure4_trees())
    patterns.update(factory.figure4_queries(4))
    return patterns


def op_counters(metrics):
    return [
        (op.operator, op.rows_in, op.rows_out, op.centers_probed, op.nodes_fetched)
        for op in metrics.operators
    ]


@pytest.mark.parametrize("optimizer", OPTIMIZERS)
def test_snapshot_db_matches_built_db_everywhere(
    engine, snapshot_engine, workload, optimizer
):
    for name, pattern in workload.items():
        built_plan = engine.plan(pattern, optimizer=optimizer)
        snap_plan = snapshot_engine.plan(pattern, optimizer=optimizer)
        # identical catalog statistics => identical chosen plans
        assert snap_plan.plan.describe() == built_plan.plan.describe(), (
            f"{name} [{optimizer}]: optimizer chose a different plan on "
            "the snapshot-loaded database"
        )

        built = execute_plan(engine.db, built_plan.plan)
        snapped = execute_plan(snapshot_engine.db, snap_plan.plan)
        assert snapped.rows == built.rows, (
            f"{name} [{optimizer}]: materializing rows diverge on snapshot"
        )
        assert op_counters(snapped.metrics) == op_counters(built.metrics), (
            f"{name} [{optimizer}]: materializing per-op metrics diverge"
        )

        built_stream = execute_plan_streaming(engine.db, built_plan.plan)
        built_rows = list(built_stream)
        snap_stream = execute_plan_streaming(snapshot_engine.db, snap_plan.plan)
        snap_rows = list(snap_stream)
        assert snap_rows == built_rows, (
            f"{name} [{optimizer}]: streamed rows diverge on snapshot"
        )
        assert op_counters(snap_stream.metrics) == op_counters(
            built_stream.metrics
        ), f"{name} [{optimizer}]: streaming per-op metrics diverge"


@pytest.mark.parametrize("optimizer", OPTIMIZERS)
def test_snapshot_db_matches_in_batch_mode(
    engine, snapshot_engine, workload, optimizer
):
    """The vectorized substrate reads codes/centers as array('q') views —
    on a snapshot these come straight out of the mapping."""
    for name, pattern in workload.items():
        built = engine.match(pattern, optimizer=optimizer, batch_size=64)
        snapped = snapshot_engine.match(pattern, optimizer=optimizer, batch_size=64)
        assert snapped.rows == built.rows, (
            f"{name} [{optimizer}]: batch-mode rows diverge on snapshot"
        )
        assert op_counters(snapped.metrics) == op_counters(built.metrics), (
            f"{name} [{optimizer}]: batch-mode per-op metrics diverge"
        )
