"""Tests for the physical operators: HPSJ, Filter, Fetch, Selection."""

import pytest

from repro.baselines.naive import NaiveMatcher
from repro.db.database import GraphDatabase
from repro.graph.generators import figure1_graph, random_digraph
from repro.graph.traversal import TransitiveClosure
from repro.query.algebra import Side, TemporalTable
from repro.query.operators import (
    apply_fetch,
    apply_filter,
    apply_selection,
    hpsj,
    seed_scan,
)
from repro.query.pattern import GraphPattern


@pytest.fixture(scope="module")
def db():
    return GraphDatabase(figure1_graph())


@pytest.fixture(scope="module")
def closure(db):
    return TransitiveClosure(db.graph)


def two_var_pattern(x_label, y_label):
    return GraphPattern.build(
        {x_label: x_label, y_label: y_label}, [(x_label, y_label)]
    )


class TestSeedOperators:
    def test_seed_scan_returns_extent(self, db):
        pattern = GraphPattern.build({"B": "B"}, [])
        table, metrics = seed_scan(db, pattern, "B")
        rows = {row[0] for row in table.table.scan()}
        assert rows == set(db.graph.extent("B"))
        assert metrics.rows_out == len(rows)
        # seeds report rows_in too: the base-table rows examined
        assert metrics.rows_in == len(rows)

    def test_hpsj_metrics_invariants(self, db):
        """rows_in counts candidate center-pairs, rows_out the dedup'd join."""
        pattern = two_var_pattern("B", "E")
        table, metrics = hpsj(db, pattern, ("B", "E"))
        assert metrics.rows_in >= metrics.rows_out > 0
        assert metrics.rows_out == table.row_count
        assert metrics.centers_probed > 0
        assert metrics.nodes_fetched > 0

    def test_hpsj_equals_all_reachable_pairs(self, db, closure):
        """Algorithm 1 output == exact reachability join of two extents."""
        for x_label, y_label in [("B", "C"), ("A", "E"), ("C", "D"), ("B", "E")]:
            pattern = two_var_pattern(x_label, y_label)
            table, _ = hpsj(db, pattern, (x_label, y_label))
            got = {tuple(r[:2]) for r in table.table.scan()}
            expected = {
                (u, v)
                for u in db.graph.extent(x_label)
                for v in db.graph.extent(y_label)
                if closure.reaches(u, v)
            }
            assert got == expected

    def test_hpsj_paper_example_pair(self, db):
        """Section 3.1: (b0, e7) ∈ T_B ⋈ T_E."""
        pattern = two_var_pattern("B", "E")
        table, _ = hpsj(db, pattern, ("B", "E"))
        pairs = {tuple(r[:2]) for r in table.table.scan()}
        # find b0 (first B node) and e7 (last E node) by construction order
        b0 = db.graph.extent("B")[0]
        e7 = db.graph.extent("E")[-1]
        assert (b0, e7) in pairs

    def test_hpsj_no_duplicates(self, db):
        pattern = two_var_pattern("B", "E")
        table, _ = hpsj(db, pattern, ("B", "E"))
        rows = [tuple(r) for r in table.table.scan()]
        assert len(rows) == len(set(rows))


class TestFilterFetch:
    def test_filter_never_drops_joinable_rows(self, db, closure):
        """Safety: a row whose node reaches some Y-labeled node survives."""
        pattern = GraphPattern.build(
            {"B": "B", "C": "C", "D": "D"}, [("B", "C"), ("C", "D")]
        )
        seeded, _ = hpsj(db, pattern, ("B", "C"))
        filtered, metrics = apply_filter(
            db, pattern, seeded, [(("C", "D"), Side.OUT)]
        )
        survivors = {tuple(r[:2]) for r in filtered.table.scan()}
        for row in seeded.table.scan():
            c_node = row[1]
            joinable = any(
                closure.reaches(c_node, d) for d in db.graph.extent("D")
            )
            assert ((row[0], row[1]) in survivors) == joinable
        assert metrics.rows_in == len(seeded.table)

    def test_filter_then_fetch_is_exact_join(self, db, closure):
        """Filter+Fetch == HPSJ+ R-join == true reachability join."""
        pattern = GraphPattern.build(
            {"B": "B", "C": "C", "D": "D"}, [("B", "C"), ("C", "D")]
        )
        seeded, _ = hpsj(db, pattern, ("B", "C"))
        filtered, _ = apply_filter(db, pattern, seeded, [(("C", "D"), Side.OUT)])
        fetched, _ = apply_fetch(db, pattern, filtered, ("C", "D"), Side.OUT)
        got = {tuple(r[:3]) for r in fetched.table.scan()}
        expected = set()
        for b, c in ((r[0], r[1]) for r in seeded.table.scan()):
            for d in db.graph.extent("D"):
                if closure.reaches(c, d):
                    expected.add((b, c, d))
        assert got == expected

    def test_reverse_direction_fetch(self, db, closure):
        """Side.IN: temporal holds the *target*, fetch adds the source."""
        pattern = GraphPattern.build(
            {"C": "C", "D": "D", "B": "B"}, [("C", "D"), ("B", "C")]
        )
        seeded, _ = hpsj(db, pattern, ("C", "D"))
        filtered, _ = apply_filter(db, pattern, seeded, [(("B", "C"), Side.IN)])
        fetched, _ = apply_fetch(db, pattern, filtered, ("B", "C"), Side.IN)
        got = {(r[2], r[0], r[1]) for r in fetched.table.scan()}
        expected = set()
        for c, d in ((r[0], r[1]) for r in seeded.table.scan()):
            for b in db.graph.extent("B"):
                if closure.reaches(b, c):
                    expected.add((b, c, d))
        assert got == expected

    def test_shared_scan_multi_filter(self, db):
        """Remark 3.1: two semijoins on the same column in one scan equal
        two sequential single filters."""
        pattern = GraphPattern.build(
            {"C": "C", "D": "D", "E": "E", "B": "B"},
            [("B", "C"), ("C", "D"), ("C", "E")],
        )
        seeded, _ = hpsj(db, pattern, ("B", "C"))
        both, _ = apply_filter(
            db, pattern, seeded,
            [(("C", "D"), Side.OUT), (("C", "E"), Side.OUT)],
        )
        one, _ = apply_filter(db, pattern, seeded, [(("C", "D"), Side.OUT)])
        two, _ = apply_filter(db, pattern, one, [(("C", "E"), Side.OUT)])
        shared_rows = {tuple(r) for r in both.table.scan()}
        seq_rows = {tuple(r) for r in two.table.scan()}
        assert shared_rows == seq_rows

    def test_shared_scan_rejects_mixed_columns(self, db):
        pattern = GraphPattern.build(
            {"B": "B", "C": "C", "D": "D", "E": "E"},
            [("B", "C"), ("C", "D"), ("D", "E")],
        )
        seeded, _ = hpsj(db, pattern, ("B", "C"))
        with pytest.raises(ValueError):
            apply_filter(
                db, pattern, seeded,
                [(("C", "D"), Side.OUT), (("D", "E"), Side.OUT)],
            )

    def test_shared_scan_rejects_mixed_sides(self, db):
        """Remark 3.1: sharing requires all X_i equal or all Y_i equal."""
        pattern = GraphPattern.build(
            {"B": "B", "C": "C", "D": "D"}, [("B", "C"), ("C", "D")]
        )
        seeded, _ = hpsj(db, pattern, ("B", "C"))
        with pytest.raises(ValueError):
            apply_filter(
                db, pattern, seeded,
                [(("C", "D"), Side.OUT), (("B", "C"), Side.IN)],
            )

    def test_filter_metrics_invariants(self, db):
        """A Filter can only prune: rows_out <= rows_in, both populated."""
        pattern = GraphPattern.build(
            {"B": "B", "C": "C", "D": "D"}, [("B", "C"), ("C", "D")]
        )
        seeded, _ = hpsj(db, pattern, ("B", "C"))
        filtered, metrics = apply_filter(
            db, pattern, seeded, [(("C", "D"), Side.OUT)]
        )
        assert metrics.rows_in == seeded.row_count
        assert 0 <= metrics.rows_out <= metrics.rows_in
        assert metrics.rows_out == filtered.row_count
        assert metrics.pruned == metrics.rows_in - metrics.rows_out

    def test_fetch_deduplicates_partners(self, db):
        """A partner witnessed by several centers must appear once."""
        pattern = GraphPattern.build(
            {"B": "B", "C": "C", "E": "E"}, [("B", "C"), ("C", "E")]
        )
        seeded, _ = hpsj(db, pattern, ("B", "C"))
        filtered, _ = apply_filter(db, pattern, seeded, [(("C", "E"), Side.OUT)])
        fetched, _ = apply_fetch(db, pattern, filtered, ("C", "E"), Side.OUT)
        rows = [tuple(r) for r in fetched.table.scan()]
        assert len(rows) == len(set(rows))


class TestSelection:
    def test_selection_keeps_exactly_reachable(self, db, closure):
        pattern = GraphPattern.build(
            {"B": "B", "C": "C", "E": "E"}, [("B", "C"), ("C", "E"), ("B", "E")]
        )
        seeded, _ = hpsj(db, pattern, ("B", "C"))
        filtered, _ = apply_filter(db, pattern, seeded, [(("C", "E"), Side.OUT)])
        fetched, _ = apply_fetch(db, pattern, filtered, ("C", "E"), Side.OUT)
        selected, metrics = apply_selection(db, pattern, fetched, ("B", "E"))
        got = {tuple(r[:3]) for r in selected.table.scan()}
        for b, c, e in (tuple(r[:3]) for r in fetched.table.scan()):
            assert ((b, c, e) in got) == closure.reaches(b, e)
        assert metrics.rows_in >= metrics.rows_out


class TestAgainstNaive:
    def test_manual_pipeline_matches_naive(self, db):
        pattern = GraphPattern.build(
            {"A": "A", "C": "C", "D": "D"}, [("A", "C"), ("C", "D")]
        )
        seeded, _ = hpsj(db, pattern, ("A", "C"))
        filtered, _ = apply_filter(db, pattern, seeded, [(("C", "D"), Side.OUT)])
        fetched, _ = apply_fetch(db, pattern, filtered, ("C", "D"), Side.OUT)
        got = {tuple(r[:3]) for r in fetched.table.scan()}
        naive = NaiveMatcher(db.graph).match_set(pattern)
        assert got == naive
