"""Unit and property tests for the B+-tree."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.bptree import BPlusTree
from repro.storage.buffer import BufferPool
from repro.storage.pages import DiskManager
from repro.storage.stats import IOStats


def make_tree(fanout: int = 4, unique: bool = True) -> BPlusTree:
    pool = BufferPool(DiskManager(), capacity_bytes=1 << 20, stats=IOStats())
    return BPlusTree(pool, name="t", fanout=fanout, unique=unique)


class TestBasics:
    def test_empty_search_returns_default(self):
        tree = make_tree()
        assert tree.search(1) is None
        assert tree.search(1, default=-1) == -1
        assert 1 not in tree

    def test_insert_and_search(self):
        tree = make_tree()
        tree.insert(5, "five")
        assert tree.search(5) == "five"
        assert 5 in tree
        assert len(tree) == 1

    def test_unique_upsert_overwrites(self):
        tree = make_tree(unique=True)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.search(1) == "b"
        assert len(tree) == 1

    def test_non_unique_accumulates(self):
        tree = make_tree(unique=False)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.search(1) == ["a", "b"]
        assert len(tree) == 2

    def test_fanout_minimum(self):
        with pytest.raises(ValueError):
            make_tree(fanout=2)

    def test_tuple_keys(self):
        tree = make_tree()
        tree.insert(("A", "B"), [1, 2])
        tree.insert(("A", "C"), [3])
        assert tree.search(("A", "B")) == [1, 2]
        assert tree.search(("A", "Z")) is None


class TestSplitsAndScans:
    def test_many_inserts_split_and_stay_searchable(self):
        tree = make_tree(fanout=4)
        keys = list(range(200))
        random.Random(5).shuffle(keys)
        for key in keys:
            tree.insert(key, key * 10)
        assert tree.height > 1
        for key in range(200):
            assert tree.search(key) == key * 10

    def test_range_scan_full(self):
        tree = make_tree(fanout=4)
        for key in [5, 1, 9, 3, 7]:
            tree.insert(key, str(key))
        assert list(tree.items()) == [
            (1, "1"), (3, "3"), (5, "5"), (7, "7"), (9, "9")
        ]

    def test_range_scan_bounds(self):
        tree = make_tree(fanout=4)
        for key in range(20):
            tree.insert(key, key)
        got = [k for k, _ in tree.range_scan(lo=5, hi=12)]
        assert got == list(range(5, 13))

    def test_range_scan_crosses_leaves(self):
        tree = make_tree(fanout=3)
        for key in range(60):
            tree.insert(key, key)
        got = [k for k, _ in tree.range_scan(lo=10, hi=50)]
        assert got == list(range(10, 51))

    def test_lookups_are_counted(self):
        tree = make_tree()
        tree.insert(1, 1)
        tree.pool.stats.index_lookups.clear()
        tree.search(1)
        tree.search(2)
        assert tree.pool.stats.index_lookups["t"] == 2

    def test_descend_costs_height_page_reads(self):
        tree = make_tree(fanout=4)
        for key in range(200):
            tree.insert(key, key)
        tree.pool.stats.reset()
        tree.search(137)
        # one fetch per level during the descent, plus the leaf re-read
        assert tree.pool.stats.logical_reads == tree.height + 1


@settings(max_examples=40, deadline=None)
@given(
    entries=st.lists(
        st.tuples(st.integers(-1000, 1000), st.integers()),
        max_size=150,
    ),
    fanout=st.integers(min_value=3, max_value=16),
)
def test_property_tree_behaves_like_dict(entries, fanout):
    """Unique B+-tree = dict: last write wins, sorted iteration."""
    tree = make_tree(fanout=fanout)
    reference = {}
    for key, value in entries:
        tree.insert(key, value)
        reference[key] = value
    assert len(tree) == len(reference)
    for key, value in reference.items():
        assert tree.search(key) == value
    assert list(tree.items()) == sorted(reference.items())


@settings(max_examples=25, deadline=None)
@given(
    keys=st.sets(st.integers(0, 500), max_size=120),
    fanout=st.integers(min_value=3, max_value=8),
    lo=st.integers(0, 500),
    hi=st.integers(0, 500),
)
def test_property_range_scan_matches_sorted_filter(keys, fanout, lo, hi):
    tree = make_tree(fanout=fanout)
    for key in keys:
        tree.insert(key, key)
    expected = sorted(k for k in keys if lo <= k <= hi)
    got = [k for k, _ in tree.range_scan(lo=lo, hi=hi)]
    assert got == expected
