"""Tests for the graph database: base tables, join index, W-table, catalog."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.db.database import GraphDatabase
from repro.graph.digraph import DiGraph
from repro.graph.generators import figure1_graph, random_digraph
from repro.graph.traversal import TransitiveClosure


@pytest.fixture(scope="module")
def fig1_db():
    return GraphDatabase(figure1_graph())


class TestBaseTables:
    def test_one_table_per_label(self, fig1_db):
        assert fig1_db.labels() == ("A", "B", "C", "D", "E")
        assert fig1_db.base_table("B").columns == ("B", "B_in", "B_out")

    def test_table_rows_cover_extent(self, fig1_db):
        for label in fig1_db.labels():
            extent = fig1_db.graph.extent(label)
            assert len(fig1_db.base_table(label)) == len(extent)
            stored = {row[0] for row in fig1_db.base_table(label).scan()}
            assert stored == set(extent)

    def test_unknown_label_raises(self, fig1_db):
        with pytest.raises(KeyError):
            fig1_db.base_table("Z")

    def test_compact_codes_exclude_self(self, fig1_db):
        for row in fig1_db.base_table("C").scan():
            node, in_code, out_code = row
            assert node not in in_code
            assert node not in out_code

    def test_code_accessors_re_add_self(self, fig1_db):
        node = fig1_db.graph.extent("C")[0]
        assert node in fig1_db.in_code(node)
        assert node in fig1_db.out_code(node)

    def test_mismatched_labeling_rejected(self):
        from repro.labeling.twohop import build_two_hop

        g1 = random_digraph(5, 0.2, seed=1)
        g2 = random_digraph (9, 0.2, seed=1)
        with pytest.raises(ValueError):
            GraphDatabase(g2, labeling=build_two_hop(g1))


class TestReachabilityViaCodes:
    def test_reaches_matches_bfs(self):
        g = random_digraph(40, 0.07, seed=21)
        db = GraphDatabase(g)
        closure = TransitiveClosure(g)
        for u in g.nodes():
            for v in g.nodes():
                assert db.reaches(u, v) == closure.reaches(u, v)

    def test_code_cache_hits_on_reuse(self):
        g = random_digraph(10, 0.2, seed=2)
        db = GraphDatabase(g)
        db.out_code(0)
        misses = db.code_cache.misses
        db.out_code(0)
        assert db.code_cache.hits >= 1
        assert db.code_cache.misses == misses

    def test_code_cache_disabled(self):
        g = random_digraph(10, 0.2, seed=2)
        db = GraphDatabase(g, code_cache_enabled=False)
        db.out_code(0)
        db.out_code(0)
        assert db.code_cache.hits == 0


class TestJoinIndex:
    def test_wtable_entries_have_nonempty_subclusters(self, fig1_db):
        index = fig1_db.join_index
        for x_label, y_label in index.wtable_pairs():
            for center in index.centers(x_label, y_label):
                assert index.get_f(center, x_label)
                assert index.get_t(center, y_label)

    def test_cluster_pairs_are_reachable(self, fig1_db):
        """Soundness: every F x T pair via any center is a real pair."""
        closure = TransitiveClosure(fig1_db.graph)
        index = fig1_db.join_index
        for x_label, y_label in index.wtable_pairs():
            for center in index.centers(x_label, y_label):
                for u in index.get_f(center, x_label):
                    for v in index.get_t(center, y_label):
                        assert closure.reaches(u, v)

    def test_index_covers_all_reachable_label_pairs(self, fig1_db):
        """Completeness: every reachable (x, y) pair appears under some
        center of W(label(x), label(y))."""
        g = fig1_db.graph
        closure = TransitiveClosure(g)
        index = fig1_db.join_index
        for u in g.nodes():
            for v in g.nodes():
                if not closure.reaches(u, v):
                    continue
                x_label, y_label = g.label(u), g.label(v)
                found = any(
                    u in index.get_f(w, x_label) and v in index.get_t(w, y_label)
                    for w in index.centers(x_label, y_label)
                )
                assert found, f"pair ({u},{v}) not covered by any center"

    def test_get_f_unknown_center(self, fig1_db):
        assert fig1_db.join_index.get_f(10**9, "A") == ()

    def test_get_centers_is_eq6(self, fig1_db):
        """getCenters(x, X, Y) = out(x) ∩ W(X, Y)."""
        g = fig1_db.graph
        for node in g.extent("B"):
            expected = fig1_db.out_code(node) & frozenset(
                fig1_db.join_index.centers("B", "E")
            )
            assert fig1_db.get_centers(node, "B", "E") == expected


class TestCatalog:
    def test_extent_sizes(self, fig1_db):
        catalog = fig1_db.catalog
        assert catalog.extent_size("A") == 1
        assert catalog.extent_size("E") == 8
        assert catalog.extent_size("missing") == 0

    def test_join_size_is_upper_bound_on_truth(self, fig1_db):
        """The center-sum estimate can only over-count (duplicates), and
        is capped by the Cartesian product."""
        closure = TransitiveClosure(fig1_db.graph)
        g = fig1_db.graph
        for x_label in g.alphabet():
            for y_label in g.alphabet():
                truth = sum(
                    1
                    for u in g.extent(x_label)
                    for v in g.extent(y_label)
                    if closure.reaches(u, v)
                )
                estimate = fig1_db.catalog.join_size(x_label, y_label)
                cap = len(g.extent(x_label)) * len(g.extent(y_label))
                assert truth <= estimate <= cap

    def test_selectivity_in_unit_range(self, fig1_db):
        for x_label in "ABCDE":
            for y_label in "ABCDE":
                s = fig1_db.catalog.join_selectivity(x_label, y_label)
                assert 0.0 <= s <= 1.0

    def test_survival_at_most_one(self, fig1_db):
        assert fig1_db.catalog.semijoin_survival("A", "C") <= 1.0


@settings(max_examples=12, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=18),
    density=st.floats(min_value=0.05, max_value=0.3),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_join_index_sound_and_complete(n, density, seed):
    g = random_digraph(n, density, seed=seed)
    db = GraphDatabase(g)
    closure = TransitiveClosure(g)
    index = db.join_index
    # soundness + completeness of the cluster join machinery
    for u in g.nodes():
        for v in g.nodes():
            x_label, y_label = g.label(u), g.label(v)
            covered = any(
                u in index.get_f(w, x_label) and v in index.get_t(w, y_label)
                for w in index.centers(x_label, y_label)
            )
            assert covered == closure.reaches(u, v)


class TestStorageReport:
    def test_report_shape(self, fig1_db):
        report = fig1_db.storage_report()
        assert set(report) == {"T_A", "T_B", "T_C", "T_D", "T_E", "__disk__"}
        assert report["T_B"]["rows"] == 7
        assert report["T_B"]["pages"] >= 1
        assert report["__disk__"]["rows"] == fig1_db.graph.node_count
        # the disk also holds index pages, so it exceeds the heap pages
        heap_pages = sum(
            info["pages"] for name, info in report.items() if name != "__disk__"
        )
        assert report["__disk__"]["pages"] >= heap_pages
