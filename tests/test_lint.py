"""lint: each custom rule fires on its fixture and the repo lints clean."""

from __future__ import annotations

import textwrap

from repro.analysis import lint_paths, lint_project, lint_source


def rules(diagnostics):
    return {d.rule for d in diagnostics}


def lint(snippet: str, filename: str = "src/repro/somewhere/mod.py"):
    return lint_source(textwrap.dedent(snippet), filename)


# ----------------------------------------------------------------------
# lint/storage-bypass
# ----------------------------------------------------------------------
class TestStorageBypass:
    QUERY_FILE = "src/repro/query/rogue.py"

    def test_heapfile_import_flagged_in_query_layer(self):
        diags = lint("from ..storage.heapfile import HeapFile\n",
                     filename=self.QUERY_FILE)
        assert "lint/storage-bypass" in rules(diags)

    def test_pages_import_flagged_in_query_layer(self):
        diags = lint("import repro.storage.pages\n", filename=self.QUERY_FILE)
        assert "lint/storage-bypass" in rules(diags)

    def test_heap_attribute_flagged_in_query_layer(self):
        diags = lint(
            """
            def scan_raw(table):
                return list(table.heap.records())
            """,
            filename=self.QUERY_FILE,
        )
        assert "lint/storage-bypass" in rules(diags)

    def test_buffer_and_table_imports_allowed(self):
        diags = lint(
            """
            from ..storage.buffer import BufferPool
            from ..storage.table import Table

            def ok(pool):
                return Table(pool, name="t", columns=("a",)), BufferPool
            """,
            filename=self.QUERY_FILE,
        )
        assert "lint/storage-bypass" not in rules(diags)

    def test_heapfile_import_fine_outside_query_layer(self):
        diags = lint(
            """
            from .heapfile import HeapFile

            def ok(pool):
                return HeapFile(pool)
            """,
            filename="src/repro/storage/table.py",
        )
        assert "lint/storage-bypass" not in rules(diags)


# ----------------------------------------------------------------------
# lint/physical-internals
# ----------------------------------------------------------------------
class TestPhysicalInternals:
    OUTSIDE_FILE = "src/repro/workloads/rogue.py"
    QUERY_FILE = "src/repro/query/engine.py"

    def test_from_import_flagged_outside_query_layer(self):
        diags = lint(
            "from repro.query.physical.operators import FetchOp\n",
            filename=self.OUTSIDE_FILE,
        )
        assert "lint/physical-internals" in rules(diags)

    def test_plain_import_flagged_outside_query_layer(self):
        diags = lint("import repro.query.physical\n", filename=self.OUTSIDE_FILE)
        assert "lint/physical-internals" in rules(diags)

    def test_relative_import_flagged_outside_query_layer(self):
        diags = lint(
            "from ..query.physical.drivers import execute_plan\n",
            filename=self.OUTSIDE_FILE,
        )
        assert "lint/physical-internals" in rules(diags)

    def test_package_alias_import_flagged(self):
        diags = lint("from repro.query import physical\n",
                     filename=self.OUTSIDE_FILE)
        assert "lint/physical-internals" in rules(diags)

    def test_public_entry_points_fine_outside_query_layer(self):
        diags = lint(
            """
            from repro.query import GraphEngine, execute_plan, execute_plan_streaming

            def ok(db, plan):
                return execute_plan(db, plan), execute_plan_streaming, GraphEngine
            """,
            filename=self.OUTSIDE_FILE,
        )
        assert "lint/physical-internals" not in rules(diags)

    def test_query_layer_may_use_its_own_internals(self):
        diags = lint(
            """
            from .physical.drivers import execute_plan
            from repro.query.physical import build_pipeline

            def ok():
                return execute_plan, build_pipeline
            """,
            filename=self.QUERY_FILE,
        )
        assert "lint/physical-internals" not in rules(diags)


# ----------------------------------------------------------------------
# lint/mutable-default
# ----------------------------------------------------------------------
class TestMutableDefault:
    def test_list_literal_flagged(self):
        diags = lint("def f(xs=[]):\n    return xs\n")
        assert "lint/mutable-default" in rules(diags)

    def test_dict_and_set_literals_flagged(self):
        diags = lint("def f(a={}, *, b={1}):\n    return a, b\n")
        assert len([d for d in diags if d.rule == "lint/mutable-default"]) == 2

    def test_constructor_call_flagged(self):
        diags = lint("def f(xs=list()):\n    return xs\n")
        assert "lint/mutable-default" in rules(diags)

    def test_immutable_defaults_fine(self):
        diags = lint("def f(a=None, b=(), c=0, d='x'):\n    return a, b, c, d\n")
        assert "lint/mutable-default" not in rules(diags)


# ----------------------------------------------------------------------
# lint/enum-is
# ----------------------------------------------------------------------
class TestEnumIs:
    def test_equality_against_member_flagged(self):
        diags = lint(
            """
            from repro.query.algebra import Side

            def f(side):
                return side == Side.OUT
            """
        )
        assert "lint/enum-is" in rules(diags)

    def test_inequality_flagged_either_operand_order(self):
        diags = lint(
            """
            from repro.query.algebra import Side

            def f(side):
                return Side.IN != side
            """
        )
        assert "lint/enum-is" in rules(diags)

    def test_identity_comparison_fine(self):
        diags = lint(
            """
            from repro.query.algebra import Side

            def f(side):
                return side is Side.OUT or side is not Side.IN
            """
        )
        assert "lint/enum-is" not in rules(diags)

    def test_value_attribute_comparison_fine(self):
        diags = lint(
            """
            def f(side):
                return side.value == "out"
            """
        )
        assert "lint/enum-is" not in rules(diags)


# ----------------------------------------------------------------------
# lint/bare-except
# ----------------------------------------------------------------------
class TestBareExcept:
    def test_bare_except_flagged(self):
        diags = lint(
            """
            def f():
                try:
                    return 1
                except:
                    return 2
            """
        )
        assert "lint/bare-except" in rules(diags)

    def test_typed_except_fine(self):
        diags = lint(
            """
            def f():
                try:
                    return 1
                except ValueError:
                    return 2
            """
        )
        assert "lint/bare-except" not in rules(diags)


# ----------------------------------------------------------------------
# lint/unused-import
# ----------------------------------------------------------------------
class TestUnusedImport:
    def test_unused_module_import_flagged(self):
        diags = lint("import os\n\nVALUE = 1\n")
        assert "lint/unused-import" in rules(diags)

    def test_unused_from_import_flagged(self):
        diags = lint("from typing import Optional\n\nVALUE = 1\n")
        assert "lint/unused-import" in rules(diags)

    def test_used_import_fine(self):
        diags = lint("import os\n\nVALUE = os.sep\n")
        assert "lint/unused-import" not in rules(diags)

    def test_string_annotation_counts_as_use(self):
        diags = lint(
            """
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from repro.db.database import GraphDatabase

            def f(db: "GraphDatabase") -> None:
                return None
            """
        )
        assert "lint/unused-import" not in rules(diags)

    def test_init_modules_exempt(self):
        diags = lint_source(
            "from .database import GraphDatabase\n",
            filename="src/repro/db/__init__.py",
        )
        assert "lint/unused-import" not in rules(diags)

    def test_future_import_exempt(self):
        diags = lint("from __future__ import annotations\n\nVALUE = 1\n")
        assert "lint/unused-import" not in rules(diags)


# ----------------------------------------------------------------------
# lint/multiprocessing-outside-parallel
# ----------------------------------------------------------------------
class TestMultiprocessingOutsideParallel:
    RULE = "lint/multiprocessing-outside-parallel"

    def test_plain_import_flagged(self):
        diags = lint("import multiprocessing\n",
                     filename="src/repro/query/engine.py")
        assert self.RULE in rules(diags)

    def test_from_import_flagged(self):
        diags = lint("from concurrent.futures import ProcessPoolExecutor\n",
                     filename="src/repro/query/physical/drivers.py")
        assert self.RULE in rules(diags)

    def test_submodule_import_flagged(self):
        diags = lint("import multiprocessing.pool\n",
                     filename="src/repro/storage/stats.py")
        assert self.RULE in rules(diags)

    def test_parallel_module_is_allowed(self):
        diags = lint(
            """
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

            POOL = ProcessPoolExecutor
            EXEC = ThreadPoolExecutor
            CTX = multiprocessing
            """,
            filename="src/repro/query/physical/parallel.py",
        )
        assert self.RULE not in rules(diags)

    def test_labeling_build_is_allowed(self):
        diags = lint(
            """
            from concurrent.futures import ProcessPoolExecutor

            POOL = ProcessPoolExecutor
            """,
            filename="src/repro/labeling/twohop.py",
        )
        assert self.RULE not in rules(diags)

    def test_unrelated_concurrent_import_allowed(self):
        diags = lint(
            """
            from concurrent.futures import Future

            F = Future
            """,
            filename="src/repro/query/engine.py",
        )
        assert self.RULE not in rules(diags)


# ----------------------------------------------------------------------
# lint/mmap-outside-snapshot
# ----------------------------------------------------------------------
class TestMmapOutsideSnapshot:
    RULE = "lint/mmap-outside-snapshot"

    def test_mmap_import_flagged(self):
        diags = lint("import mmap\n",
                     filename="src/repro/db/persist.py")
        assert self.RULE in rules(diags)

    def test_struct_import_flagged(self):
        diags = lint("import struct\n",
                     filename="src/repro/query/engine.py")
        assert self.RULE in rules(diags)

    def test_from_import_flagged(self):
        diags = lint("from struct import Struct\n",
                     filename="src/repro/storage/buffer.py")
        assert self.RULE in rules(diags)

    def test_snapshot_module_is_allowed(self):
        diags = lint(
            """
            import mmap
            import struct

            M = mmap
            S = struct
            """,
            filename="src/repro/storage/snapshot.py",
        )
        assert self.RULE not in rules(diags)

    def test_snapshot_named_file_elsewhere_still_flagged(self):
        # only storage/snapshot.py owns the layout, not any snapshot.py
        diags = lint("import struct\n",
                     filename="src/repro/query/snapshot.py")
        assert self.RULE in rules(diags)


# ----------------------------------------------------------------------
# file handling + the self-gate
# ----------------------------------------------------------------------
class TestEntryPoints:
    def test_syntax_error_reported_not_raised(self):
        diags = lint("def broken(:\n")
        assert "lint/syntax-error" in rules(diags)

    def test_lint_paths_recurses_directories(self, tmp_path):
        bad = tmp_path / "pkg" / "bad.py"
        bad.parent.mkdir()
        bad.write_text("def f(xs=[]):\n    return xs\n")
        (tmp_path / "pkg" / "good.py").write_text("VALUE = 1\n")
        diags = lint_paths([tmp_path])
        assert rules(diags) == {"lint/mutable-default"}
        assert diags[0].source == str(bad)
        assert diags[0].line == 1

    def test_repo_source_lints_clean(self):
        assert lint_project() == []
