"""Tests for the engine-owned cross-query CenterCache.

Covers the LRU mechanics (eviction order, approximate byte bound),
generation-based invalidation (``GraphDatabase.rebuild_join_index`` must
flush stale entries through ``sync``), the hit/miss/eviction counters and
their per-run surfacing in ``RunMetrics.center_cache``, and the
``capacity_bytes <= 0`` disabled mode the ``--no-center-cache`` ablation
uses.
"""

import pytest

from repro import GraphEngine
from repro.graph.generators import figure1_graph
from repro.query.algebra import Side
from repro.query.physical import kernels
from repro.query.physical.cache import (
    _ENTRY_OVERHEAD_BYTES,
    _INT_BYTES,
    CenterCache,
    DEFAULT_CACHE_BYTES,
)


def entry_cost(n_ints: int) -> int:
    return _ENTRY_OVERHEAD_BYTES + _INT_BYTES * n_ints


class TestLRU:
    def test_get_put_roundtrip(self):
        cache = CenterCache()
        assert cache.get_centers(1, 0, Side.OUT) is None
        cache.put_centers(1, 0, Side.OUT, (4, 5))
        assert cache.get_centers(1, 0, Side.OUT) == (4, 5)

    def test_sides_and_kinds_do_not_collide(self):
        cache = CenterCache()
        cache.put_centers(1, 0, Side.OUT, (4,))
        assert cache.get_centers(1, 0, Side.IN) is None
        # subcluster keyspace is disjoint from the centers keyspace
        cache.put_subcluster(1, "A", Side.OUT, (9,))
        assert cache.get_centers(1, 0, Side.OUT) == (4,)
        assert cache.get_subcluster(1, "A", Side.OUT) == (9,)

    def test_eviction_is_least_recently_used(self):
        # room for exactly two empty-tuple entries
        cache = CenterCache(capacity_bytes=2 * entry_cost(0))
        cache.put_centers(1, 0, Side.OUT, ())
        cache.put_centers(2, 0, Side.OUT, ())
        cache.get_centers(1, 0, Side.OUT)  # touch 1 => 2 is now LRU
        cache.put_centers(3, 0, Side.OUT, ())
        assert cache.evictions == 1
        assert cache.get_centers(2, 0, Side.OUT) is None  # evicted
        assert cache.get_centers(1, 0, Side.OUT) == ()  # survived

    def test_byte_bound_holds(self):
        cache = CenterCache(capacity_bytes=10 * entry_cost(4))
        for node in range(100):
            cache.put_centers(node, 0, Side.OUT, (1, 2, 3, 4))
        assert cache.estimated_bytes <= cache.capacity_bytes
        assert cache.entry_count == 10
        assert cache.evictions == 90

    def test_oversized_entry_is_refused_not_thrashed(self):
        cache = CenterCache(capacity_bytes=entry_cost(2))
        cache.put_centers(1, 0, Side.OUT, (1,))
        cache.put_centers(2, 0, Side.OUT, tuple(range(1000)))  # too big
        assert cache.get_centers(1, 0, Side.OUT) == (1,)  # untouched
        assert cache.evictions == 0

    def test_counters(self):
        cache = CenterCache()
        cache.get_centers(1, 0, Side.OUT)
        cache.put_centers(1, 0, Side.OUT, ())
        cache.get_centers(1, 0, Side.OUT)
        assert cache.snapshot() == (1, 1, 0)
        assert cache.hit_rate == pytest.approx(0.5)

    def test_disabled_mode_counts_misses_stores_nothing(self):
        cache = CenterCache(capacity_bytes=0)
        cache.put_centers(1, 0, Side.OUT, (4,))
        assert cache.get_centers(1, 0, Side.OUT) is None
        assert cache.entry_count == 0
        assert cache.misses == 1


class TestInvalidation:
    def test_sync_same_generation_keeps_entries(self):
        cache = CenterCache()
        cache.sync(0)
        cache.put_centers(1, 0, Side.OUT, (4,))
        cache.sync(0)
        assert cache.get_centers(1, 0, Side.OUT) == (4,)

    def test_sync_new_generation_drops_entries_keeps_counters(self):
        cache = CenterCache()
        cache.sync(0)
        cache.put_centers(1, 0, Side.OUT, (4,))
        cache.get_centers(1, 0, Side.OUT)
        cache.sync(1)
        assert cache.entry_count == 0
        assert cache.hits == 1  # counters survive invalidation
        assert cache.get_centers(1, 0, Side.OUT) is None

    def test_clear_resets_counters_too(self):
        cache = CenterCache()
        cache.get_centers(1, 0, Side.OUT)
        cache.put_centers(1, 0, Side.OUT, ())
        cache.clear()
        assert cache.snapshot() == (0, 0, 0)
        assert cache.entry_count == 0

    def test_rebuild_join_index_invalidates_through_engine(self):
        engine = GraphEngine(figure1_graph())
        pattern = "A -> C, B -> C"
        first = engine.match(pattern, batch_size=16)
        assert engine.center_cache.entry_count > 0
        generation = engine.db.index_generation
        engine.db.rebuild_join_index()
        assert engine.db.index_generation == generation + 1
        # next run syncs to the new generation: the warm cache is gone
        second = engine.match(pattern, batch_size=16)
        assert second.rows == first.rows
        assert second.metrics.center_cache.hits == 0


class TestPairEpoch:
    """Centers keys embed the interning epoch (bounded-table regression).

    ``intern_label_pair`` recycles pair ids when its table hits
    ``PAIR_INTERN_LIMIT`` or when an index rebuild clears it; a cache
    entry keyed under an older epoch must become unreachable rather than
    serve centers for whatever pair the id now names.
    """

    def test_epoch_bump_orphans_centers_entries(self):
        cache = CenterCache()
        pair_id = kernels.intern_label_pair("epoch-a", "epoch-b")
        cache.put_centers(1, pair_id, Side.OUT, (4, 5))
        assert cache.get_centers(1, pair_id, Side.OUT) == (4, 5)
        kernels.clear_pair_ids()
        # same numeric id, new epoch: the old entry must not answer
        assert cache.get_centers(1, pair_id, Side.OUT) is None

    def test_sync_drops_entries_minted_under_old_epoch(self):
        cache = CenterCache()
        cache.sync(0)
        cache.put_centers(1, 0, Side.OUT, (4,))
        kernels.clear_pair_ids()
        cache.sync(0)  # same generation, new epoch
        assert cache.entry_count == 0

    def test_subcluster_entries_survive_epoch_bump(self):
        # subcluster keys are (node, label, side) — no pair ids, so an
        # epoch bump must not orphan them
        cache = CenterCache()
        cache.put_subcluster(1, "A", Side.OUT, (9,))
        kernels.clear_pair_ids()
        assert cache.get_subcluster(1, "A", Side.OUT) == (9,)

    def test_rebuild_join_index_recycles_pair_ids(self):
        engine = GraphEngine(figure1_graph())
        engine.match("A -> C, B -> C", batch_size=16)  # warm + sync
        epoch = kernels.pair_epoch()
        engine.db.rebuild_join_index()
        # the next run's sync observes the generation bump and fires the
        # clear_pair_ids hook (routed through the cache layer)
        result = engine.match("A -> C, B -> C", batch_size=16)
        assert kernels.pair_epoch() == epoch + 1
        assert result.metrics.center_cache.hits == 0


class TestRunMetricsSurface:
    def test_batch_run_reports_cache_stats(self):
        engine = GraphEngine(figure1_graph())
        result = engine.match("A -> C, B -> C", batch_size=16)
        stats = result.metrics.center_cache
        assert stats is not None
        assert stats.misses > 0  # cold cache
        warm = engine.match("A -> C, B -> C", batch_size=16)
        assert warm.metrics.center_cache.hits > 0
        assert 0.0 <= warm.metrics.center_cache.hit_rate <= 1.0

    def test_scalar_run_never_touches_the_cache(self):
        engine = GraphEngine(figure1_graph())
        result = engine.match("A -> C, B -> C")  # scalar default
        stats = result.metrics.center_cache
        assert stats is not None
        assert stats.hits == 0 and stats.misses == 0

    def test_streaming_run_reports_cache_stats(self):
        engine = GraphEngine(figure1_graph())
        stream = engine.match_iter("A -> C, B -> C", batch_size=16)
        list(stream)
        assert stream.metrics.center_cache is not None
        assert stream.metrics.center_cache.misses > 0

    def test_engine_cache_bytes_zero_disables_storage(self):
        engine = GraphEngine(figure1_graph(), cache_bytes=0)
        engine.match("A -> C, B -> C", batch_size=16)
        assert engine.center_cache.entry_count == 0
        assert engine.center_cache.misses > 0

    def test_default_capacity(self):
        assert CenterCache().capacity_bytes == DEFAULT_CACHE_BYTES
