"""Tests for the pattern model and the textual parser."""

import pytest

from repro.query.parser import parse_pattern
from repro.query.pattern import GraphPattern, PatternError


class TestBuild:
    def test_basic_pattern(self):
        p = GraphPattern.build(
            {"A": "A", "C": "C"}, [("A", "C")]
        )
        assert p.variables == ("A", "C")
        assert p.conditions == (("A", "C"),)
        assert p.condition_labels(("A", "C")) == ("A", "C")

    def test_unknown_variable_in_edge(self):
        with pytest.raises(PatternError):
            GraphPattern.build({"A": "A"}, [("A", "B")])

    def test_self_loop_rejected(self):
        with pytest.raises(PatternError):
            GraphPattern.build({"A": "A", "B": "B"}, [("A", "A"), ("A", "B")])

    def test_duplicate_edges_deduplicated(self):
        p = GraphPattern.build({"A": "A", "B": "B"}, [("A", "B"), ("A", "B")])
        assert p.edge_count == 1

    def test_disconnected_rejected(self):
        with pytest.raises(PatternError):
            GraphPattern.build(
                {"A": "A", "B": "B", "C": "C", "D": "D"},
                [("A", "B"), ("C", "D")],
            )

    def test_multi_node_without_edges_rejected(self):
        with pytest.raises(PatternError):
            GraphPattern.build({"A": "A", "B": "B"}, [])

    def test_single_node_ok(self):
        p = GraphPattern.build({"A": "A"}, [])
        assert p.node_count == 1
        assert p.is_connected()

    def test_empty_rejected(self):
        with pytest.raises(PatternError):
            GraphPattern.build({}, [])

    def test_shared_labels_across_variables(self):
        p = GraphPattern.build(
            {"x": "person", "y": "person", "a": "auction"},
            [("x", "a"), ("a", "y")],
        )
        assert p.label("x") == p.label("y") == "person"


class TestShapePredicates:
    def test_path(self):
        p = GraphPattern.build(
            {"A": "A", "B": "B", "C": "C"},
            [("A", "B"), ("B", "C")],
        )
        assert p.is_path()
        assert p.is_tree()
        assert p.root() == "A"

    def test_tree_not_path(self):
        p = GraphPattern.build(
            {"A": "A", "B": "B", "C": "C"}, [("A", "B"), ("A", "C")]
        )
        assert not p.is_path()
        assert p.is_tree()
        assert p.children("A") == ("B", "C")

    def test_diamond_is_neither(self):
        p = GraphPattern.build(
            {"A": "A", "B": "B", "C": "C", "D": "D"},
            [("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")],
        )
        assert not p.is_path()
        assert not p.is_tree()
        with pytest.raises(PatternError):
            p.root()

    def test_adjacent(self):
        p = GraphPattern.build(
            {"A": "A", "B": "B", "C": "C"}, [("A", "B"), ("B", "C")]
        )
        assert p.adjacent("B") == {"A", "C"}
        assert p.adjacent("A") == {"B"}


class TestParser:
    def test_bare_labels(self):
        p = parse_pattern("A -> C, B -> C")
        assert p.variables == ("A", "C", "B")
        assert p.label("A") == "A"
        assert set(p.conditions) == {("A", "C"), ("B", "C")}

    def test_chains(self):
        p = parse_pattern("A -> B -> C -> D")
        assert p.conditions == (("A", "B"), ("B", "C"), ("C", "D"))
        assert p.is_path()

    def test_named_variables(self):
        p = parse_pattern("s:supplier -> r:retailer, s -> w:wholeseller")
        assert p.label("s") == "supplier"
        assert p.label("w") == "wholeseller"
        assert set(p.conditions) == {("s", "r"), ("s", "w")}

    def test_relabel_conflict_rejected(self):
        with pytest.raises(PatternError):
            parse_pattern("x:A -> y:B, x:C -> y")

    def test_newline_and_semicolon_separators(self):
        p = parse_pattern("A -> B\nB -> C; C -> D")
        assert p.edge_count == 3

    def test_single_node(self):
        p = parse_pattern("x:person")
        assert p.node_count == 1
        assert p.label("x") == "person"

    def test_garbage_rejected(self):
        with pytest.raises(PatternError):
            parse_pattern("A -> -> B")
        with pytest.raises(PatternError):
            parse_pattern("")
        with pytest.raises(PatternError):
            parse_pattern("A => B")

    def test_roundtrip_via_str(self):
        p = parse_pattern("A -> C, B -> C, C -> D")
        again = parse_pattern(str(p))
        assert again.conditions == p.conditions
        assert again.labels == p.labels
