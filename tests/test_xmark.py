"""Tests for the XMark-like data generator."""

import pytest

from repro.graph import xmark
from repro.graph.traversal import is_dag


class TestGenerate:
    def test_deterministic_per_seed(self):
        a = xmark.generate(factor=0.2, seed=3)
        b = xmark.generate(factor=0.2, seed=3)
        assert list(a.graph.edges()) == list(b.graph.edges())
        assert a.graph.labels() == b.graph.labels()

    def test_factor_scales_size(self):
        small = xmark.generate(factor=0.2, seed=7)
        large = xmark.generate(factor=1.0, seed=7)
        assert large.graph.node_count > 3 * small.graph.node_count

    def test_entity_ratios_follow_xmark(self):
        data = xmark.generate(factor=1.0, entity_budget=3000, seed=7)
        # persons outnumber items, items outnumber open auctions, etc.
        assert len(data.persons) > len(data.items)
        assert len(data.items) > len(data.open_auctions)
        assert len(data.open_auctions) > len(data.closed_auctions)
        assert len(data.closed_auctions) > len(data.categories)

    def test_vocabulary_is_xmark_like(self):
        data = xmark.generate(factor=0.2, seed=7)
        labels = set(data.graph.alphabet())
        for expected in (
            "site", "regions", "region", "item", "category", "person",
            "open_auction", "closed_auction", "itemref", "incategory",
        ):
            assert expected in labels

    def test_idrefs_make_graph_cyclic_capable(self):
        """catgraph + watch IDREFs can close directed cycles, so the data
        is a general digraph (as in the paper), not always a DAG."""
        data = xmark.generate(factor=1.0, seed=7)
        # not asserting cyclic for every seed; with catgraph density 2.0
        # and watches on, seed 7 at factor 1.0 does contain a cycle
        assert not is_dag(data.graph)

    def test_every_incategory_points_to_category(self):
        data = xmark.generate(factor=0.2, seed=5)
        g = data.graph
        for node in g.extent("incategory"):
            targets = g.successors(node)
            assert len(targets) == 1
            assert g.label(targets[0]) == "category"

    def test_itemref_points_to_item(self):
        data = xmark.generate(factor=0.2, seed=5)
        g = data.graph
        for node in g.extent("itemref"):
            assert all(g.label(t) == "item" for t in g.successors(node))

    def test_overrides_merge_with_config(self):
        base = xmark.XMarkConfig(factor=0.5, seed=1)
        data = xmark.generate(base, factor=0.2)
        smaller = xmark.generate(xmark.XMarkConfig(factor=0.2, seed=1))
        assert data.graph.node_count == smaller.graph.node_count


class TestDatasets:
    def test_ladder_is_monotone(self):
        sizes = [
            xmark.dataset(name, entity_budget=500).graph.node_count
            for name in ("XS", "S", "M", "L", "XL")
        ]
        assert sizes == sorted(sizes)
        assert sizes[0] < sizes[-1]

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            xmark.dataset("XXL")

    def test_factors_match_paper_ladder(self):
        assert list(xmark.DATASET_FACTORS.values()) == [0.2, 0.4, 0.6, 0.8, 1.0]
