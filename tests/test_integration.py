"""Cross-module integration tests: all engines, one dataset, one truth."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro import GraphEngine, IGMJEngine, NaiveMatcher, TwigStackD, xmark
from repro.graph.traversal import is_dag
from repro.workloads.patterns import PATH_4, TREE_4_DEEP, PatternFactory
from repro.workloads.runner import (
    check_agreement,
    run_igmj,
    run_rjoin,
    run_tsd,
)

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


@pytest.fixture(scope="module")
def dag_setup():
    data = xmark.generate(
        factor=0.1,
        entity_budget=600,
        seed=7,
        watches_per_person=0.0,
        catgraph_edges_per_category=0.0,
    )
    assert is_dag(data.graph)
    engine = GraphEngine(data.graph)
    return data, engine


class TestFourEngineAgreement:
    def test_all_engines_agree_on_dag_workload(self, dag_setup):
        data, engine = dag_setup
        tsd = TwigStackD(data.graph)
        igmj = IGMJEngine(data.graph)
        naive = NaiveMatcher(data.graph)
        factory = PatternFactory(engine.db.catalog, seed=3)
        for name, shape in (("path", PATH_4), ("tree", TREE_4_DEEP)):
            pattern = factory.instantiate(shape)
            truth = naive.match_set(pattern)
            records = [
                run_rjoin(engine, name, pattern, "dp"),
                run_rjoin(engine, name, pattern, "dps"),
                run_rjoin(engine, name, pattern, "greedy"),
                run_tsd(tsd, name, pattern),
                run_igmj(igmj, name, pattern),
            ]
            assert check_agreement(records) == []
            assert records[0].result_rows == len(truth)
            assert engine.match(pattern).as_set() == truth

    def test_modeled_seconds_accounts_io(self, dag_setup):
        from repro.workloads.runner import MODELED_IO_SECONDS

        data, engine = dag_setup
        factory = PatternFactory(engine.db.catalog, seed=3)
        pattern = factory.instantiate(PATH_4)
        record = run_rjoin(engine, "p", pattern, "dp")
        assert record.modeled_seconds == pytest.approx(
            record.elapsed_seconds + record.physical_io * MODELED_IO_SECONDS
        )


class TestCyclicDataAllRJoinEngines:
    def test_cyclic_xmark_dp_dps_igmj_agree(self):
        data = xmark.generate(factor=0.1, entity_budget=600, seed=9)
        assert not is_dag(data.graph)  # watches/catgraph close cycles
        engine = GraphEngine(data.graph)
        igmj = IGMJEngine(data.graph)
        factory = PatternFactory(engine.db.catalog, seed=5)
        pattern = factory.instantiate(TREE_4_DEEP)
        a = engine.match(pattern, optimizer="dp").as_set()
        b = engine.match(pattern, optimizer="dps").as_set()
        c, _ = igmj.match(pattern)
        assert a == b == set(c)


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "supply_chain.py", "citations.py",
     "persistence_and_updates.py", "web_links.py"],
)
def test_examples_run_clean(script):
    """Every example must execute end-to-end without error."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()
