"""White-box tests for the IGMJ merge join and list machinery."""

import pytest

from repro.baselines.igmj import IGMJEngine, _merge_join
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag
from repro.labeling.interval import build_multi_interval


class TestMergeJoin:
    def run_merge(self, xlist, ylist):
        out = []
        _merge_join(xlist, ylist, lambda x, y: out.append((x, y)))
        return out

    def test_empty_inputs(self):
        assert self.run_merge([], []) == []
        assert self.run_merge([(0, 5, "x")], []) == []
        assert self.run_merge([], [(3, "y")]) == []

    def test_single_stab(self):
        out = self.run_merge([(1, 5, "x")], [(3, "y")])
        assert out == [("x", "y")]

    def test_point_outside_interval(self):
        assert self.run_merge([(1, 5, "x")], [(7, "y")]) == []
        assert self.run_merge([(3, 5, "x")], [(2, "y")]) == []

    def test_interval_boundaries_inclusive(self):
        out = self.run_merge([(2, 4, "x")], [(2, "lo"), (4, "hi")])
        assert out == [("x", "lo"), ("x", "hi")]

    def test_multiple_active_intervals(self):
        xlist = sorted([(0, 10, "a"), (2, 4, "b"), (3, 8, "c")],
                       key=lambda e: (e[0], -e[1]))
        out = self.run_merge(xlist, [(3, "p")])
        assert sorted(x for x, _ in out) == ["a", "b", "c"]

    def test_expired_intervals_are_dropped(self):
        xlist = sorted([(0, 2, "a"), (0, 10, "b")], key=lambda e: (e[0], -e[1]))
        out = self.run_merge(xlist, [(1, "p"), (5, "q")])
        assert ("a", "p") in out and ("b", "p") in out
        assert ("a", "q") not in out and ("b", "q") in out

    def test_matches_brute_force(self):
        import random

        rng = random.Random(3)
        intervals = []
        for i in range(40):
            lo = rng.randint(0, 50)
            hi = lo + rng.randint(0, 10)
            intervals.append((lo, hi, i))
        points = [(rng.randint(0, 60), 100 + j) for j in range(30)]
        points.sort()
        expected = {
            (i, p)
            for lo, hi, i in intervals
            for post, p in points
            if lo <= post <= hi
        }
        xlist = sorted(intervals, key=lambda e: (e[0], -e[1]))
        got = set(self.run_merge(xlist, points))
        assert got == expected


class TestBaseLists:
    def test_xlist_sorted_by_lo_then_desc_hi(self):
        g = random_dag(30, 0.15, seed=2)
        engine = IGMJEngine(g)
        for label in g.alphabet():
            xlist = engine._base_xlist(label)
            keys = [(lo, -hi) for lo, hi, _ in xlist]
            assert keys == sorted(keys)

    def test_ylist_sorted_by_post(self):
        g = random_dag(30, 0.15, seed=2)
        engine = IGMJEngine(g)
        for label in g.alphabet():
            ylist = engine._base_ylist(label)
            posts = [p for p, _ in ylist]
            assert posts == sorted(posts)

    def test_base_lists_charged_io(self):
        g = random_dag(60, 0.1, seed=4)
        engine = IGMJEngine(g)
        engine.stats.reset()
        engine._base_xlist(g.alphabet()[0])
        assert engine.stats.logical_reads > 0

    def test_scc_members_emit_pairs(self):
        # cyclic pair A <-> B: both reach each other
        g = DiGraph()
        a = g.add_node("A")
        b = g.add_node("B")
        g.add_edge(a, b)
        g.add_edge(b, a)
        engine = IGMJEngine(g)
        assert engine.pair_count("A", "B") == 1
        assert engine.pair_count("B", "A") == 1
