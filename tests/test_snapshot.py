"""Tests for the binary snapshot format and its lazy read path.

Covers the persistence contracts of the snapshot subsystem:

* round trip — a snapshot-loaded database answers exactly like the
  database that wrote it (codes, reachability, queries, catalog);
* byte stability — save → load → save produces identical bytes, for
  both the JSON and the binary format (the writer reads only public
  surfaces, so the backing store must not leak into the output);
* corruption — any flipped byte or truncation yields a clean
  :class:`SnapshotError` from ``Snapshot.open``, never garbage data;
* laziness — opening a snapshot decodes nothing; queries decode only
  the rows they touch; base tables materialize per label on demand.
"""

import pytest

from repro.analysis import audit_database, audit_snapshot
from repro.db.database import GraphDatabase
from repro.db.join_index import SnapshotRJoinIndex
from repro.db.persist import load_database, save_database
from repro.graph import xmark
from repro.graph.generators import figure1_graph, random_digraph
from repro.query.engine import GraphEngine
from repro.storage.snapshot import (
    FLAG_RAW_RUNS,
    SNAPSHOT_MAGIC,
    Snapshot,
    SnapshotError,
    is_snapshot,
    write_snapshot,
)


@pytest.fixture(scope="module")
def built_db():
    data = xmark.generate(factor=0.1, entity_budget=500, seed=3)
    return GraphDatabase(data.graph)


@pytest.fixture(scope="module")
def snap_path(built_db, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("snap") / "db.snap")
    write_snapshot(built_db, path)
    return path


class TestFormat:
    def test_magic_and_detection(self, snap_path, tmp_path):
        with open(snap_path, "rb") as f:
            assert f.read(8) == SNAPSHOT_MAGIC
        assert is_snapshot(snap_path)
        json_path = str(tmp_path / "db.json")
        save_database(GraphDatabase(figure1_graph()), json_path)
        assert not is_snapshot(json_path)
        assert not is_snapshot(str(tmp_path / "missing"))

    def test_save_format_inference(self, built_db, tmp_path):
        snap = tmp_path / "a.snap"
        js = tmp_path / "a.json"
        save_database(built_db, str(snap))
        save_database(built_db, str(js))
        assert is_snapshot(str(snap))
        assert js.read_bytes().startswith(b"{")
        forced = tmp_path / "forced.bin"
        save_database(built_db, str(forced), format="snapshot")
        assert is_snapshot(str(forced))
        with pytest.raises(ValueError):
            save_database(built_db, str(tmp_path / "x"), format="pickle")

    def test_atomic_write_leaves_no_tmp(self, built_db, tmp_path):
        path = tmp_path / "x.snap"
        save_database(built_db, str(path))
        assert path.exists()
        assert not (tmp_path / "x.snap.tmp").exists()

    def test_section_table_is_inspectable(self, snap_path):
        snapshot = Snapshot.open(snap_path)
        try:
            names = [name for name, _, _ in snapshot.section_table()]
            assert "meta" in names and "subval" in names
            offsets = [offset for _, offset, _ in snapshot.section_table()]
            assert offsets == sorted(offsets)
            assert all(offset % 8 == 0 for offset in offsets)
        finally:
            snapshot.close()


class TestRoundTrip:
    def test_structures_survive(self, built_db, snap_path):
        loaded = load_database(snap_path)
        assert isinstance(loaded.join_index, SnapshotRJoinIndex)
        assert loaded.graph.node_count == built_db.graph.node_count
        assert loaded.graph.edge_count == built_db.graph.edge_count
        assert list(loaded.graph.labels()) == list(built_db.graph.labels())
        assert loaded.labels() == built_db.labels()
        assert loaded.join_index.center_count == built_db.join_index.center_count
        assert (
            loaded.join_index.wtable_sizes() == built_db.join_index.wtable_sizes()
        )
        assert loaded.catalog.extent_sizes == built_db.catalog.extent_sizes
        assert loaded.catalog.all_pairs() == built_db.catalog.all_pairs()

    def test_codes_and_reachability_identical(self, tmp_path):
        g = random_digraph(30, 0.12, seed=5)
        db = GraphDatabase(g)
        path = str(tmp_path / "r.snap")
        save_database(db, path)
        loaded = load_database(path)
        for v in g.nodes():
            assert loaded.labeling.in_codes[v] == db.labeling.in_codes[v]
            assert loaded.labeling.out_codes[v] == db.labeling.out_codes[v]
            assert list(loaded.in_code_array(v)) == list(db.in_code_array(v))
            assert list(loaded.out_code_array(v)) == list(db.out_code_array(v))
        for u in g.nodes():
            for v in g.nodes():
                assert db.reaches(u, v) == loaded.reaches(u, v)

    def test_subclusters_identical(self, built_db, snap_path):
        loaded = load_database(snap_path)
        truth = {
            center: (f_sub, t_sub)
            for center, f_sub, t_sub in built_db.join_index.cluster_items()
        }
        seen = set()
        for center, f_sub, t_sub in loaded.join_index.cluster_items():
            assert truth[center] == (f_sub, t_sub)
            seen.add(center)
        assert seen == set(truth)
        # point probes agree with the bulk scan
        some = sorted(truth)[: 5]
        for center in some:
            assert loaded.join_index.get_ft(center) == truth[center]
        assert loaded.join_index.get_ft(-1) == ({}, {})

    def test_snapshot_loaded_db_passes_full_audit(self, snap_path):
        loaded = load_database(snap_path)
        assert audit_database(loaded) == []

    def test_rebuild_converts_to_live_index(self, snap_path):
        loaded = load_database(snap_path)
        sizes = loaded.join_index.wtable_sizes()
        loaded.rebuild_join_index()
        assert not isinstance(loaded.join_index, SnapshotRJoinIndex)
        assert loaded.index_generation == 1
        assert loaded.join_index.wtable_sizes() == sizes


class TestByteStability:
    def test_binary_save_load_save_is_byte_stable(self, built_db, tmp_path):
        first = tmp_path / "a.snap"
        second = tmp_path / "b.snap"
        save_database(built_db, str(first))
        save_database(load_database(str(first)), str(second))
        assert first.read_bytes() == second.read_bytes()

    def test_json_save_load_save_is_byte_stable(self, built_db, tmp_path):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        save_database(built_db, str(first))
        save_database(load_database(str(first)), str(second))
        assert first.read_bytes() == second.read_bytes()

    def test_json_to_snapshot_to_json_preserves_labeling(self, built_db, tmp_path):
        """Crossing formats keeps the labeling identical both ways."""
        js, snap, js2 = (
            tmp_path / "a.json", tmp_path / "a.snap", tmp_path / "b.json"
        )
        save_database(built_db, str(js))
        save_database(load_database(str(js)), str(snap))
        save_database(load_database(str(snap)), str(js2))
        assert js.read_bytes() == js2.read_bytes()


class TestCorruption:
    def test_truncations_raise_snapshot_error(self, snap_path, tmp_path):
        payload = open(snap_path, "rb").read()
        bad = tmp_path / "t.snap"
        # every kind of short file: empty, header-only, cut mid-section,
        # cut mid-TOC, one byte short
        for cut in (0, 4, 16, len(payload) // 2, len(payload) - 41, len(payload) - 1):
            bad.write_bytes(payload[:cut])
            with pytest.raises(SnapshotError):
                Snapshot.open(str(bad))

    def test_flipped_bytes_raise_snapshot_error(self, snap_path, tmp_path):
        payload = bytearray(open(snap_path, "rb").read())
        bad = tmp_path / "f.snap"
        # march a bit flip across the whole file; every position must be
        # caught by the magic, geometry or CRC checks
        step = max(1, len(payload) // 64)
        for position in range(0, len(payload), step):
            corrupted = bytearray(payload)
            corrupted[position] ^= 0xFF
            bad.write_bytes(bytes(corrupted))
            with pytest.raises(SnapshotError):
                Snapshot.open(str(bad))

    def test_foreign_files_rejected(self, tmp_path):
        for content in (b"", b"not a snapshot", b'{"format_version": 1}'):
            path = tmp_path / "foreign"
            path.write_bytes(content)
            with pytest.raises(SnapshotError):
                Snapshot.open(str(path))

    def test_future_version_rejected(self, snap_path, tmp_path):
        payload = bytearray(open(snap_path, "rb").read())
        payload[8] = 99  # header version field
        bad = tmp_path / "v.snap"
        bad.write_bytes(bytes(payload))
        with pytest.raises(SnapshotError, match="version"):
            Snapshot.open(str(bad))

    def test_audit_snapshot_clean_and_unreadable(self, snap_path, tmp_path):
        assert audit_snapshot(snap_path) == []
        bad = tmp_path / "bad.snap"
        bad.write_bytes(open(snap_path, "rb").read()[:100])
        findings = audit_snapshot(str(bad))
        assert findings and findings[0].rule == "snapshot/unreadable"


class TestLaziness:
    def test_open_decodes_nothing(self, snap_path):
        loaded = load_database(snap_path)
        stats = loaded.join_index.snapshot.decode_stats
        assert stats == {
            "code_rows": 0, "wtable_pairs": 0, "subcluster_runs": 0,
        }
        assert loaded.base_tables == {}

    def test_query_decodes_only_what_it_touches(self, built_db, snap_path):
        loaded = load_database(snap_path)
        engine = GraphEngine.from_database(loaded)
        oracle = GraphEngine.from_database(built_db)
        pattern = "person -> watch"
        assert engine.match(pattern).as_set() == oracle.match(pattern).as_set()
        snapshot = loaded.join_index.snapshot
        assert snapshot.decode_stats["wtable_pairs"] <= 2
        total_runs = snapshot.subcluster_runs
        assert 0 < snapshot.decode_stats["subcluster_runs"] < total_runs

    def test_base_tables_materialize_per_label(self, snap_path):
        loaded = load_database(snap_path)
        assert loaded.base_tables == {}
        table = loaded.base_table("person")
        assert set(loaded.base_tables) == {"person"}
        assert loaded.base_table("person") is table  # memoized
        with pytest.raises(KeyError):
            loaded.base_table("no_such_label")

    def test_storage_report_covers_every_table(self, built_db, snap_path):
        loaded = load_database(snap_path)
        assert loaded.storage_report().keys() == built_db.storage_report().keys()

    def test_view_api_does_not_touch_decode_stats(self, snap_path):
        snapshot = Snapshot.open(snap_path)
        try:
            list(snapshot.in_code_view(0))
            list(snapshot.out_code_view(0))
            list(snapshot.wtable_view(0))
            f_sub, t_sub = snapshot.subcluster_views_at(0)
            runs = [list(run) for run in (*f_sub.values(), *t_sub.values())]
            assert len(runs) == len(f_sub) + len(t_sub)
            del f_sub, t_sub
            list(snapshot.extent_view(0))
            assert snapshot.decode_stats == {
                "code_rows": 0, "wtable_pairs": 0, "subcluster_runs": 0,
            }
        finally:
            snapshot.close()

    def test_dynamic_append_still_works(self, snap_path):
        """The overflow path of the lazy code sequences."""
        loaded = load_database(snap_path)
        labeling = loaded.labeling
        before = labeling.node_count
        labeling.in_codes.append(frozenset({before}))
        labeling.out_codes.append(frozenset({before}))
        labeling.invalidate_caches()
        assert labeling.node_count == before + 1
        assert labeling.in_codes[before] == frozenset({before})
        assert labeling.reaches(before, before)


class TestRawRunsLayout:
    def test_writer_default_is_raw_and_view_capable(self, snap_path):
        snapshot = Snapshot.open(snap_path)
        try:
            assert snapshot.flags == FLAG_RAW_RUNS
            assert snapshot.raw_runs
            assert snapshot.supports_views
            names = [name for name, _, _ in snapshot.section_table()]
            assert "extoff" in names and "extnodes" in names
        finally:
            snapshot.close()

    def test_legacy_delta_file_still_serves(self, built_db, tmp_path):
        legacy = str(tmp_path / "legacy.snap")
        write_snapshot(built_db, legacy, raw_runs=False)
        snapshot = Snapshot.open(legacy)
        try:
            assert snapshot.flags == 0
            assert not snapshot.raw_runs
            assert not snapshot.supports_views
            names = [name for name, _, _ in snapshot.section_table()]
            assert "extoff" not in names
        finally:
            snapshot.close()
        loaded = load_database(legacy)
        assert not loaded.mmap_views
        for v in range(0, loaded.graph.node_count, 97):
            assert list(loaded.in_code_array(v)) == list(
                built_db.in_code_array(v)
            )
            assert list(loaded.out_code_array(v)) == list(
                built_db.out_code_array(v)
            )
        assert (
            loaded.join_index.wtable_sizes()
            == built_db.join_index.wtable_sizes()
        )

    def test_delta_file_rejects_view_api(self, built_db, tmp_path):
        legacy = str(tmp_path / "legacy.snap")
        write_snapshot(built_db, legacy, raw_runs=False)
        snapshot = Snapshot.open(legacy)
        try:
            with pytest.raises(SnapshotError, match="delta-encoded"):
                snapshot.in_code_view(0)
            with pytest.raises(ValueError):
                GraphDatabase.from_snapshot(snapshot, use_views=True)
        finally:
            snapshot.close()

    def test_unknown_flag_bits_rejected(self, snap_path, tmp_path):
        payload = bytearray(open(snap_path, "rb").read())
        payload[12] |= 0x80  # header flags field, undefined bit
        bad = tmp_path / "flag.snap"
        bad.write_bytes(bytes(payload))
        with pytest.raises(SnapshotError, match="flag"):
            Snapshot.open(str(bad))

    def test_raw_and_delta_agree_through_the_engine(self, built_db, tmp_path):
        raw_path = str(tmp_path / "raw.snap")
        delta_path = str(tmp_path / "delta.snap")
        write_snapshot(built_db, raw_path)
        write_snapshot(built_db, delta_path, raw_runs=False)
        raw_engine = GraphEngine.from_database(load_database(raw_path))
        delta_engine = GraphEngine.from_database(load_database(delta_path))
        pattern = "person -> watch"
        assert (
            raw_engine.match(pattern).as_set()
            == delta_engine.match(pattern).as_set()
        )


class TestViewAPI:
    def test_code_views_agree_with_decoded_arrays(self, built_db, snap_path):
        snapshot = Snapshot.open(snap_path)
        try:
            step = max(1, snapshot.node_count // 40)
            for v in range(0, snapshot.node_count, step):
                assert list(snapshot.in_code_view(v)) == list(
                    built_db.in_code_array(v)
                )
                assert list(snapshot.out_code_view(v)) == list(
                    built_db.out_code_array(v)
                )
        finally:
            snapshot.close()

    def test_wtable_views_agree_with_decoded_centers(self, snap_path):
        snapshot = Snapshot.open(snap_path)
        try:
            for position in range(snapshot.wtable_pair_count):
                assert list(snapshot.wtable_view(position)) == list(
                    snapshot.wtable_centers(position)
                )
        finally:
            snapshot.close()

    def test_subcluster_views_agree_with_decoded_runs(self, snap_path):
        snapshot = Snapshot.open(snap_path)
        try:
            step = max(1, snapshot.center_count // 20)
            for position in range(0, snapshot.center_count, step):
                f_truth, t_truth = snapshot.subclusters_at(position)
                f_views, t_views = snapshot.subcluster_views_at(position)
                assert {k: list(v) for k, v in f_views.items()} == {
                    k: list(v) for k, v in f_truth.items()
                }
                assert {k: list(v) for k, v in t_views.items()} == {
                    k: list(v) for k, v in t_truth.items()
                }
                del f_views, t_views
        finally:
            snapshot.close()

    def test_subcluster_views_are_fresh_per_call(self, snap_path):
        # callers may pop from the dicts; sharing one would corrupt the
        # next caller's read
        snapshot = Snapshot.open(snap_path)
        try:
            first = snapshot.subcluster_views_at(0)
            second = snapshot.subcluster_views_at(0)
            assert first[0] is not second[0]
            assert first[1] is not second[1]
            del first, second
        finally:
            snapshot.close()

    def test_extent_views_partition_the_nodes(self, snap_path):
        snapshot = Snapshot.open(snap_path)
        try:
            labels = list(snapshot.node_label_ids())
            total = 0
            for label_id in range(snapshot.label_count):
                extent = list(snapshot.extent_view(label_id))
                total += len(extent)
                assert extent == sorted(extent)
                assert all(labels[node] == label_id for node in extent)
            assert total == snapshot.node_count
        finally:
            snapshot.close()

    def test_view_bounds_checked(self, snap_path):
        snapshot = Snapshot.open(snap_path)
        try:
            with pytest.raises(IndexError):
                snapshot.in_code_view(snapshot.node_count)
            with pytest.raises(IndexError):
                snapshot.out_code_view(-1)
            with pytest.raises(IndexError):
                snapshot.extent_view(snapshot.label_count)
            assert snapshot.subcluster_run_view(
                0, 0, snapshot.label_count + 5
            ) is None
        finally:
            snapshot.close()


class TestCloseGuard:
    def test_close_refuses_while_held(self, built_db, tmp_path):
        path = str(tmp_path / "held.snap")
        write_snapshot(built_db, path)
        snapshot = Snapshot.open(path)
        snapshot.acquire("WorkerPool(process, workers=2)")
        with pytest.raises(SnapshotError, match=r"WorkerPool\(process"):
            snapshot.close()
        assert not snapshot.closed
        snapshot.release("WorkerPool(process, workers=2)")
        snapshot.close()
        assert snapshot.closed

    def test_acquire_is_reentrant(self, built_db, tmp_path):
        path = str(tmp_path / "reentrant.snap")
        write_snapshot(built_db, path)
        snapshot = Snapshot.open(path)
        snapshot.acquire("pool")
        snapshot.acquire("pool")
        snapshot.release("pool")
        with pytest.raises(SnapshotError, match="still held"):
            snapshot.close()
        snapshot.release("pool")
        snapshot.close()

    def test_release_of_unknown_owner_is_ignored(self, built_db, tmp_path):
        path = str(tmp_path / "unknown.snap")
        write_snapshot(built_db, path)
        snapshot = Snapshot.open(path)
        snapshot.release("never-acquired")
        snapshot.close()
        assert snapshot.closed

    def test_acquire_on_closed_snapshot_raises(self, built_db, tmp_path):
        path = str(tmp_path / "closed.snap")
        write_snapshot(built_db, path)
        snapshot = Snapshot.open(path)
        snapshot.close()
        with pytest.raises(SnapshotError, match="closed"):
            snapshot.acquire("pool")

    def test_error_names_every_holder(self, built_db, tmp_path):
        path = str(tmp_path / "multi.snap")
        write_snapshot(built_db, path)
        snapshot = Snapshot.open(path)
        snapshot.acquire("pool-b")
        snapshot.acquire("pool-a")
        with pytest.raises(SnapshotError, match="pool-a, pool-b"):
            snapshot.close()
        snapshot.release("pool-a")
        snapshot.release("pool-b")
        snapshot.close()
