"""Tests for the external merge sort."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.buffer import BufferPool
from repro.storage.extsort import external_sort
from repro.storage.pages import DiskManager


def make_pool(frames: int = 16, page_size: int = 256) -> BufferPool:
    return BufferPool(DiskManager(page_size=page_size),
                      capacity_bytes=page_size * frames)


class TestExternalSort:
    def test_empty_input(self):
        pool = make_pool()
        out, stats = external_sort(pool, [])
        assert list(out.records()) == []
        assert stats.runs == 0
        assert stats.input_records == 0

    def test_single_run_no_merge(self):
        pool = make_pool()
        data = [5, 3, 8, 1]
        out, stats = external_sort(pool, data, run_records=100)
        assert list(out.records()) == [1, 3, 5, 8]
        assert stats.runs == 1
        assert stats.merge_passes == 0

    def test_multiple_runs_merge(self):
        pool = make_pool()
        data = list(range(100, 0, -1))
        out, stats = external_sort(pool, data, run_records=10)
        assert list(out.records()) == list(range(1, 101))
        assert stats.runs == 10
        assert stats.merge_passes >= 1

    def test_cascaded_merge_passes(self):
        pool = make_pool()
        data = list(range(200, 0, -1))
        out, stats = external_sort(pool, data, run_records=5, fan_in=3)
        assert list(out.records()) == sorted(data)
        assert stats.runs == 40
        assert stats.merge_passes >= 3  # 40 -> 14 -> 5 -> 2 -> 1 at fan-in 3

    def test_key_function(self):
        pool = make_pool()
        data = [(1, "b"), (3, "a"), (2, "c")]
        out, _ = external_sort(pool, data, key=lambda r: r[1], run_records=2)
        assert [r[1] for r in out.records()] == ["a", "b", "c"]

    def test_stability_within_runs_is_not_required_but_order_is_total(self):
        pool = make_pool()
        data = [(i % 5, i) for i in range(50)]
        out, _ = external_sort(pool, data, key=lambda r: r[0], run_records=7)
        keys = [r[0] for r in out.records()]
        assert keys == sorted(keys)

    def test_sort_charges_io(self):
        pool = make_pool(frames=4, page_size=128)
        pool.stats.reset()
        external_sort(pool, list(range(500, 0, -1)), run_records=50)
        # run writes force physical page traffic through the tiny pool
        assert pool.stats.physical_writes > 0
        assert pool.stats.logical_reads > 0

    def test_invalid_run_records(self):
        with pytest.raises(ValueError):
            external_sort(make_pool(), [1], run_records=0)


@settings(max_examples=30, deadline=None)
@given(
    data=st.lists(st.integers(-1000, 1000), max_size=300),
    run_records=st.integers(min_value=1, max_value=40),
    fan_in=st.integers(min_value=2, max_value=6),
)
def test_property_external_sort_equals_sorted(data, run_records, fan_in):
    pool = make_pool(frames=4, page_size=128)
    out, stats = external_sort(
        pool, data, run_records=run_records, fan_in=fan_in
    )
    assert list(out.records()) == sorted(data)
    assert stats.input_records == len(data)
