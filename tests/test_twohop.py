"""Correctness of the 2-hop reachability labeling (the core substrate).

The single most important invariant in the library: for any digraph,
``out(u) ∩ in(v) ≠ ∅  ⟺  u ~> v`` — the paper's Example 3.1 semantics.
"""

from hypothesis import given, settings, strategies as st

from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag, random_digraph, random_tree
from repro.graph.traversal import TransitiveClosure
from repro.labeling.twohop import TwoHopLabeling, build_two_hop, greedy_two_hop


def assert_labeling_correct(graph: DiGraph, labeling: TwoHopLabeling) -> None:
    closure = TransitiveClosure(graph)
    for u in graph.nodes():
        for v in graph.nodes():
            expected = closure.reaches(u, v)
            got = labeling.reaches(u, v)
            assert got == expected, f"{u}~>{v}: labeling={got} truth={expected}"


class TestBuildTwoHop:
    def test_self_reachability_always_true(self):
        g = random_digraph(20, 0.1, seed=1)
        labeling = build_two_hop(g)
        assert all(labeling.reaches(v, v) for v in g.nodes())

    def test_codes_include_self(self):
        g = random_dag(15, 0.2, seed=2)
        labeling = build_two_hop(g)
        for v in g.nodes():
            assert v in labeling.in_codes[v]
            assert v in labeling.out_codes[v]

    def test_chain_graph(self):
        g = DiGraph()
        g.add_nodes(["A"] * 6)
        g.add_edges([(i, i + 1) for i in range(5)])
        assert_labeling_correct(g, build_two_hop(g))

    def test_cycle_members_share_reachability(self, cyclic_graph):
        labeling = build_two_hop(cyclic_graph)
        assert labeling.reaches(0, 2)
        assert labeling.reaches(2, 1)
        assert labeling.reaches(1, 3)
        assert not labeling.reaches(3, 0)

    def test_disconnected_components_unreachable(self):
        g = DiGraph()
        g.add_nodes(["A"] * 4)
        g.add_edges([(0, 1), (2, 3)])
        labeling = build_two_hop(g)
        assert not labeling.reaches(0, 2)
        assert not labeling.reaches(3, 1)
        assert labeling.reaches(0, 1)

    def test_empty_graph(self):
        labeling = build_two_hop(DiGraph())
        assert labeling.node_count == 0
        assert labeling.cover_size() == 0


class TestCoverMetrics:
    def test_cover_size_counts_non_self_entries(self):
        g = DiGraph()
        g.add_nodes(["A", "B"])
        g.add_edge(0, 1)
        labeling = build_two_hop(g)
        # one reachable pair (0,1): it needs at least one cover entry
        assert labeling.cover_size() >= 1
        assert labeling.average_code_size() == labeling.cover_size() / 2

    def test_cover_is_linearish_on_trees(self):
        g = random_tree(300, seed=4)
        labeling = build_two_hop(g)
        # Table 2 reports |H|/|V| ~ 3.5 on XMark; trees should be modest too
        assert labeling.average_code_size() < 12

    def test_clusters_are_consistent_with_codes(self):
        g = random_dag(25, 0.15, seed=6)
        labeling = build_two_hop(g)
        for center, (f_cluster, t_cluster) in labeling.clusters().items():
            for u in f_cluster:
                assert center in labeling.out_codes[u]
            for v in t_cluster:
                assert center in labeling.in_codes[v]

    def test_cluster_pairs_are_sound(self):
        """Every F x T pair through one center must truly be reachable."""
        g = random_digraph(25, 0.1, seed=8)
        labeling = build_two_hop(g)
        closure = TransitiveClosure(g)
        for _, (f_cluster, t_cluster) in labeling.clusters().items():
            for u in f_cluster:
                for v in t_cluster:
                    assert closure.reaches(u, v)


class TestGreedyTwoHop:
    def test_matches_truth_on_small_graphs(self):
        for seed in range(4):
            g = random_digraph(12, 0.15, seed=seed)
            assert_labeling_correct(g, greedy_two_hop(g))

    def test_two_constructions_agree_on_queries(self):
        g = random_dag(15, 0.2, seed=9)
        pruned = build_two_hop(g)
        greedy = greedy_two_hop(g)
        for u in g.nodes():
            for v in g.nodes():
                assert pruned.reaches(u, v) == greedy.reaches(u, v)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=30),
    density=st.floats(min_value=0.0, max_value=0.35),
    seed=st.integers(min_value=0, max_value=100_000),
)
def test_property_pruned_labeling_equals_bfs(n, density, seed):
    g = random_digraph(n, density, seed=seed)
    assert_labeling_correct(g, build_two_hop(g))


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=22),
    density=st.floats(min_value=0.0, max_value=0.4),
    seed=st.integers(min_value=0, max_value=100_000),
)
def test_property_dag_labeling_equals_bfs(n, density, seed):
    g = random_dag(n, density, seed=seed)
    assert_labeling_correct(g, build_two_hop(g))


class TestCenterOrdering:
    def test_all_orders_are_correct(self):
        g = random_digraph(25, 0.12, seed=14)
        for order in ("degree", "reach", "random"):
            assert_labeling_correct(g, build_two_hop(g, center_order=order))

    def test_unknown_order_rejected(self):
        import pytest

        g = random_digraph(5, 0.2, seed=1)
        with pytest.raises(ValueError):
            build_two_hop(g, center_order="alphabetical")

    def test_heuristics_beat_random_on_hub_graphs(self):
        """On a hub-and-spoke graph the degree heuristic must produce a
        cover no larger than the random control's."""
        from repro.graph.digraph import DiGraph

        g = DiGraph()
        hub = g.add_node("H")
        for i in range(40):
            src = g.add_node("A")
            dst = g.add_node("B")
            g.add_edge(src, hub)
            g.add_edge(hub, dst)
        degree = build_two_hop(g, center_order="degree").cover_size()
        random_ = build_two_hop(g, center_order="random").cover_size()
        assert degree <= random_
        # the hub cover is linear: one center serves all 40x40 pairs
        assert degree <= 4 * g.node_count


class TestParallelBuild:
    """``build_two_hop(..., workers=N)`` — the parallel labeling prong.

    The parallel build is NOT required to emit the same cover as the
    sequential one (workers prune against a round-start snapshot, so the
    cover can be a slight superset), but it must (a) be a *correct*
    cover, (b) be deterministic — independent of worker count and
    backend — and (c) still include self-labels.
    """

    def _backends(self):
        from repro.query import fork_available

        return ("thread", "process") if fork_available() else ("thread",)

    def test_parallel_cover_is_correct(self):
        for seed in (3, 17, 41):
            g = random_digraph(40, 0.08, seed=seed)
            assert_labeling_correct(g, build_two_hop(g, workers=2))

    def test_parallel_cover_correct_on_dags_and_trees(self):
        assert_labeling_correct(
            random_dag(30, 0.15, seed=5), build_two_hop(random_dag(30, 0.15, seed=5), workers=3)
        )
        t = random_tree(30, seed=6)
        assert_labeling_correct(t, build_two_hop(t, workers=2))

    def test_deterministic_across_workers_and_backends(self):
        g = random_digraph(35, 0.1, seed=9)
        reference = build_two_hop(g, workers=2, backend="thread")
        for backend in self._backends():
            for workers in (2, 3):
                other = build_two_hop(g, workers=workers, backend=backend)
                assert other.in_codes == reference.in_codes, (backend, workers)
                assert other.out_codes == reference.out_codes, (backend, workers)

    def test_workers_one_is_exactly_sequential(self):
        g = random_digraph(25, 0.12, seed=10)
        sequential = build_two_hop(g)
        assert build_two_hop(g, workers=1).in_codes == sequential.in_codes

    def test_parallel_cover_overhead_is_bounded(self):
        """Snapshot pruning may inflate the cover, but not pathologically."""
        g = random_digraph(40, 0.08, seed=12)
        seq = build_two_hop(g).cover_size()
        par = build_two_hop(g, workers=4).cover_size()
        assert par <= 2 * seq

    def test_unknown_backend_rejected(self):
        import pytest

        g = random_digraph(5, 0.2, seed=1)
        with pytest.raises(ValueError):
            build_two_hop(g, workers=2, backend="mpi")
