"""Documentation truthfulness: every tutorial code block must execute.

Docs that drift from the code are worse than no docs; this test runs all
``python`` blocks of docs/TUTORIAL.md in order, in one namespace, exactly
as a reader following along would.
"""

import contextlib
import io
import re
from pathlib import Path

DOCS = Path(__file__).resolve().parent.parent / "docs"


def test_tutorial_blocks_execute_in_order():
    text = (DOCS / "TUTORIAL.md").read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, re.S)
    assert len(blocks) >= 8, "tutorial lost its code blocks?"
    namespace: dict = {}
    for index, block in enumerate(blocks):
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            exec(compile(block, f"<tutorial block {index}>", "exec"), namespace)


def test_readme_mentions_every_benchmark_file():
    readme = (Path(__file__).resolve().parent.parent / "README.md").read_text()
    bench_dir = Path(__file__).resolve().parent.parent / "benchmarks"
    for bench in bench_dir.glob("bench_*.py"):
        assert bench.name in readme, f"README does not mention {bench.name}"


def test_api_reference_symbols_importable():
    """Every backticked dotted symbol mentioned in docs/API.md must exist."""
    import importlib

    text = (DOCS / "API.md").read_text()
    modules = set(re.findall(r"`(repro(?:\.\w+)*)`", text))
    for module_name in sorted(modules):
        importlib.import_module(module_name)
