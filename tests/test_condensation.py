"""Tests for SCC detection and DAG condensation."""

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.graph.condensation import condense, strongly_connected_components
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_digraph
from repro.graph.traversal import is_dag, is_reachable


def _to_networkx(graph: DiGraph) -> nx.DiGraph:
    nxg = nx.DiGraph()
    nxg.add_nodes_from(graph.nodes())
    nxg.add_edges_from(graph.edges())
    return nxg


class TestSCC:
    def test_cycle_is_one_component(self, cyclic_graph):
        components = strongly_connected_components(cyclic_graph)
        as_sets = [frozenset(c) for c in components]
        assert frozenset({0, 1, 2}) in as_sets
        assert frozenset({3}) in as_sets

    def test_dag_has_singleton_components(self, small_dag):
        components = strongly_connected_components(small_dag)
        assert all(len(c) == 1 for c in components)
        assert len(components) == small_dag.node_count

    def test_matches_networkx_on_random_graphs(self):
        for seed in range(5):
            g = random_digraph(30, 0.1, seed=seed)
            ours = {frozenset(c) for c in strongly_connected_components(g)}
            theirs = {
                frozenset(c)
                for c in nx.strongly_connected_components(_to_networkx(g))
            }
            assert ours == theirs

    def test_long_cycle_no_recursion_error(self):
        n = 5000
        g = DiGraph()
        g.add_nodes(["A"] * n)
        g.add_edges([(i, (i + 1) % n) for i in range(n)])
        components = strongly_connected_components(g)
        assert len(components) == 1
        assert len(components[0]) == n


class TestCondensation:
    def test_result_is_dag(self, cyclic_graph):
        cond = condense(cyclic_graph)
        assert is_dag(cond.dag)

    def test_scc_numbering_is_topological(self):
        for seed in range(5):
            g = random_digraph(25, 0.12, seed=seed)
            cond = condense(g)
            for u, v in cond.dag.edges():
                assert u < v  # topological numbering

    def test_members_partition_nodes(self, cyclic_graph):
        cond = condense(cyclic_graph)
        seen = sorted(node for members in cond.members for node in members)
        assert seen == list(cyclic_graph.nodes())
        for scc, members in enumerate(cond.members):
            assert all(cond.scc_of[v] == scc for v in members)

    def test_representative_is_min_member(self, cyclic_graph):
        cond = condense(cyclic_graph)
        for scc in range(cond.dag.node_count):
            assert cond.representative(scc) == min(cond.members[scc])

    def test_no_duplicate_dag_edges(self):
        g = DiGraph()
        g.add_nodes(["A"] * 4)
        # two SCCs {0,1} and {2,3} with two cross edges
        g.add_edges([(0, 1), (1, 0), (2, 3), (3, 2), (0, 2), (1, 3)])
        cond = condense(g)
        assert cond.dag.edge_count == 1


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=20),
    density=st.floats(min_value=0.0, max_value=0.4),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_condensation_preserves_reachability(n, density, seed):
    """u ~> v in G  iff  scc(u) ~> scc(v) in the condensation DAG."""
    g = random_digraph(n, density, seed=seed)
    cond = condense(g)
    for u in g.nodes():
        for v in g.nodes():
            expected = is_reachable(g, u, v)
            got = is_reachable(cond.dag, cond.scc_of[u], cond.scc_of[v])
            assert expected == got
